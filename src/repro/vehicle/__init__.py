"""EV powertrain modelling (ADVISOR substitute).

The paper estimates the EV electrical power request with ADVISOR; here a
backward-facing longitudinal-dynamics model plays that role (see DESIGN.md,
substitution table).  Given a drive cycle, :class:`Powertrain` produces the
battery-bus electrical power request trace ``P_e(t)`` that the thermal/energy
managers consume.

Public API
----------
``VehicleParams`` / ``MODEL_S_LIKE``
    Vehicle physical parameters and the default Tesla-Model-S-class preset.
``Glider``
    Road-load forces (rolling, aerodynamic, grade, inertia).
``MotorDrive``
    Motor + inverter efficiency map and regenerative-braking limits.
``Powertrain``
    End-to-end cycle -> electrical power request.
``CabinParams`` / ``hvac_load_profile``
    Climate-control load model (companion work, paper reference [2]).
"""

from repro.vehicle.params import MODEL_S_LIKE, VehicleParams
from repro.vehicle.glider import Glider
from repro.vehicle.motor import MotorDrive
from repro.vehicle.powertrain import Powertrain, PowerRequest
from repro.vehicle.hvac import CabinParams, hvac_load_profile

__all__ = [
    "MODEL_S_LIKE",
    "VehicleParams",
    "Glider",
    "MotorDrive",
    "Powertrain",
    "PowerRequest",
    "CabinParams",
    "hvac_load_profile",
]
