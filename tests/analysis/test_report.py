"""Report-rendering tests (pure formatting; no simulation)."""

import numpy as np
import pytest

from repro.analysis.figures import Fig1Data, MethodologyComparison
from repro.analysis.report import render_fig1, render_fig8, render_fig9, render_table1
from repro.analysis.tables import Table1Data, Table1Row


@pytest.fixture()
def fig1():
    return Fig1Data(
        sizes_f=(5_000, 25_000),
        time_s=np.arange(3, dtype=float),
        temps_k=(np.array([298.0, 310.0, 318.0]), np.array([298.0, 305.0, 308.0])),
        safe_limit_k=313.15,
        violation_s=(120.0, 0.0),
    )


@pytest.fixture()
def comparison():
    return MethodologyComparison(
        cycles=("us06",),
        methodologies=("parallel", "cooling", "dual", "otem"),
        qloss_percent={"us06": {"parallel": 0.2, "cooling": 0.12, "dual": 0.17, "otem": 0.08}},
        avg_power_w={"us06": {"parallel": 18_000.0, "cooling": 24_000.0, "dual": 20_000.0, "otem": 21_000.0}},
        qloss_ratio_vs_parallel={"us06": {"parallel": 1.0, "cooling": 0.6, "dual": 0.85, "otem": 0.4}},
    )


@pytest.fixture()
def table1():
    row = Table1Row(
        size_f=25_000.0,
        avg_power_w={"parallel": 18_000.0, "dual": 20_000.0, "otem": 21_000.0},
        capacity_loss_pct={"parallel": 100.0, "dual": 85.0, "otem": 45.0},
    )
    return Table1Data(cycle="us06", repeat=2, rows=(row,))


class TestRenderFig1:
    def test_contains_sizes_and_violations(self, fig1):
        text = render_fig1(fig1)
        assert "5000" in text
        assert "25000" in text
        assert "120" in text

    def test_reports_limit_in_celsius(self, fig1):
        assert "40.0 C" in render_fig1(fig1)


class TestRenderFig8:
    def test_contains_ratios(self, comparison):
        text = render_fig8(comparison)
        assert "100.0" in text
        assert "40.0" in text

    def test_mentions_paper_reference(self, comparison):
        assert "paper" in render_fig8(comparison)

    def test_mean_reduction(self, comparison):
        assert comparison.mean_qloss_reduction_vs_parallel("otem") == pytest.approx(60.0)


class TestRenderFig9:
    def test_contains_power_rows(self, comparison):
        text = render_fig9(comparison)
        assert "18000" in text
        assert "24000" in text

    def test_mean_power_reduction(self, comparison):
        assert comparison.mean_power_reduction_vs("otem", "cooling") == pytest.approx(
            12.5
        )


class TestRenderTable1:
    def test_layout(self, table1):
        text = render_table1(table1)
        assert "Table I" in text
        assert "US06" in text
        assert "85.00" in text

    def test_all_methods_in_header(self, table1):
        text = render_table1(table1)
        for m in ("parallel", "dual", "otem"):
            assert m in text
