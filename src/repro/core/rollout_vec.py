"""Vectorized batched prediction model for the OTEM MPC.

:class:`BatchPredictionModel` evaluates M candidate decision vectors for
the *same* initial state in one NumPy pass: command arrays of shape
``(M, N)`` go in, costs of shape ``(M,)`` come out.  The per-step physics
is identical to :class:`repro.core.rollout.PredictionModel._rollout` -
every clamp, guard branch and hinge is reproduced with masked array
arithmetic - so the batched costs match the scalar reference within
floating-point noise (``tests/core/test_rollout_vec.py`` asserts 1e-9).

The kernel also runs in *stacked* mode
(:meth:`BatchPredictionModel.rollout_costs_stacked`): each row carries
its own initial state, its own preview window, and optionally its own
ultracapacitor bank energy (``ecap``), so S scenarios x K candidates
evaluate as one ``(S*K, 2N)`` batch.  Every per-row quantity enters the
same elementwise expressions the shared-state path uses, which keeps the
per-element arithmetic - and therefore the equivalence bound - unchanged
regardless of how rows are stacked.

This is the solver hot path: a batched finite-difference gradient costs
one kernel invocation instead of ``2N+1`` serial Python rollouts, and the
multi-start candidates of :meth:`repro.core.mpc.MPCPlanner._solve_penalty`
race as rows of a single batch.  The scalar model stays the semantic
reference; this module only exists to make it fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.rollout import TEMP_MAX_K, PredictionModel
from repro.utils.units import GAS_CONSTANT


@dataclass(frozen=True)
class BatchRolloutResult:
    """Detailed outcome of M predicted trajectories (array analogue of
    :class:`repro.core.rollout.RolloutResult`).

    Attributes
    ----------
    cost / objective / penalty / terminal:
        Per-candidate totals, shape ``(M,)``.
    temps_k / coolant_k / socs / soes:
        Predicted state trajectories, shape ``(M, N+1)`` (including the
        initial state).
    cooling_j / qloss_percent / hees_j:
        Per-candidate horizon totals of the three Eq. 19 ingredients,
        shape ``(M,)``.
    """

    cost: np.ndarray
    objective: np.ndarray
    penalty: np.ndarray
    terminal: np.ndarray
    temps_k: np.ndarray
    coolant_k: np.ndarray
    socs: np.ndarray
    soes: np.ndarray
    cooling_j: np.ndarray
    qloss_percent: np.ndarray
    hees_j: np.ndarray


class BatchPredictionModel(PredictionModel):
    """Batched (vectorized-over-candidates) variant of the scalar model.

    Construct it with the same arguments as
    :class:`~repro.core.rollout.PredictionModel`, or wrap an existing
    scalar model with :meth:`from_scalar` (shares the pre-extracted
    parameter constants, allocates nothing new).
    """

    @classmethod
    def from_scalar(cls, model: PredictionModel) -> "BatchPredictionModel":
        """Batched view over an existing scalar model's constants."""
        if isinstance(model, cls):
            return model
        vec = cls.__new__(cls)
        vec.__dict__.update(model.__dict__)
        return vec

    # ------------------------------------------------------------------ #
    # vectorized model pieces (same formulas as the scalar methods)

    def _voc_vec(self, soc: np.ndarray) -> np.ndarray:
        # Horner form of the scalar _voc polynomial (ulp-identical terms)
        poly = ((self.voc_p4 * soc + self.voc_p3) * soc + self.voc_p2) * soc
        return (
            self.voc_a * np.exp(self.voc_b * soc)
            + (poly + self.voc_p1) * soc
            + self.voc_p0
        )

    # ------------------------------------------------------------------ #

    def rollout_costs(
        self,
        state: tuple,
        cap_bus: np.ndarray,
        inlet: np.ndarray,
        preview_w: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        """Objectives of M trajectories from one initial state.

        Parameters
        ----------
        state:
            (T_b, T_c, SoC, SoE) at the start of the horizon (shared by
            every candidate).
        cap_bus:
            Ultracap bus-power commands [W], shape ``(M, N)``.
        inlet:
            Coolant inlet commands [K], shape ``(M, N)``.
        preview_w:
            Predicted EV power per step [W], length N (shared).
        dt:
            Horizon step duration [s].

        Returns
        -------
        numpy.ndarray
            Total cost (Eq. 19 + penalties + terminal) per candidate,
            shape ``(M,)``.
        """
        return self._rollout_batch(state, cap_bus, inlet, preview_w, dt, False)

    def rollout_batch(
        self,
        state: tuple,
        cap_bus: np.ndarray,
        inlet: np.ndarray,
        preview_w: np.ndarray,
        dt: float,
    ) -> BatchRolloutResult:
        """Detailed batched trajectories (equivalence tests, diagnostics)."""
        return self._rollout_batch(state, cap_bus, inlet, preview_w, dt, True)

    def rollout_costs_stacked(
        self,
        states: np.ndarray,
        cap_bus: np.ndarray,
        inlet: np.ndarray,
        previews: np.ndarray,
        dt: float,
        ecap: np.ndarray | None = None,
    ) -> np.ndarray:
        """Objectives of M trajectories with *per-row* initial conditions.

        The stacked form of :meth:`rollout_costs`: row ``i`` starts from
        ``states[i]``, consumes ``previews[i]`` and (optionally) uses its
        own bank energy ``ecap[i]``, so candidates belonging to different
        scenarios evaluate in one kernel pass.

        Parameters
        ----------
        states:
            ``(M, 4)`` rows of (T_b, T_c, SoC, SoE).
        cap_bus / inlet:
            Commands, shape ``(M, N)`` each.
        previews:
            Predicted EV power per step [W], shape ``(M, N)``.
        dt:
            Horizon step duration [s].
        ecap:
            Optional per-row ultracap bank energy [J], shape ``(M,)``.
            Defaults to the model's own ``ecap`` for every row.

        Returns
        -------
        numpy.ndarray
            Total cost per row, shape ``(M,)``.
        """
        return self._rollout_batch(states, cap_bus, inlet, previews, dt, False, ecap)

    def _rollout_batch(self, state, cap_bus, inlet, preview_w, dt, detailed, ecap=None):
        w = self.w
        gas = GAS_CONSTANT
        cap_bus = np.atleast_2d(np.asarray(cap_bus, dtype=float))
        inlet = np.atleast_2d(np.asarray(inlet, dtype=float))
        if cap_bus.shape != inlet.shape:
            raise ValueError(
                f"cap_bus {cap_bus.shape} and inlet {inlet.shape} must match"
            )
        m, n = cap_bus.shape
        preview = np.asarray(preview_w, dtype=float)
        if preview.ndim == 1:
            if preview.size < n:
                raise ValueError(f"preview has {preview.size} steps, horizon needs {n}")
            # shared window: preview[k] is a scalar broadcast over all rows
            preview_rows = preview
        else:
            if preview.shape != (m, n):
                raise ValueError(
                    f"stacked previews must be {(m, n)}, got {preview.shape}"
                )
            # per-row windows, step-major: preview_rows[k] is the (m,) slice
            preview_rows = np.ascontiguousarray(preview.T)
        # step-major contiguous views: the k-loop reads one row at a time
        cap_t = np.ascontiguousarray(cap_bus.T)
        inlet_t = np.ascontiguousarray(inlet.T)

        state_arr = np.asarray(state, dtype=float)
        if state_arr.ndim == 1:
            tb = np.full(m, float(state_arr[0]))
            tc = np.full(m, float(state_arr[1]))
            soc = np.full(m, float(state_arr[2]))
            soe = np.full(m, float(state_arr[3]))
        else:
            if state_arr.shape != (m, 4):
                raise ValueError(f"stacked states must be {(m, 4)}, got {state_arr.shape}")
            tb = state_arr[:, 0].copy()
            tc = state_arr[:, 1].copy()
            soc = state_arr[:, 2].copy()
            soe = state_arr[:, 3].copy()
        objective = np.zeros(m)
        penalty = np.zeros(m)
        if detailed:
            cooling_j = np.zeros(m)
            qloss = np.zeros(m)
            hees_j = np.zeros(m)
            temps = np.empty((n + 1, m))
            coolants = np.empty((n + 1, m))
            socs = np.empty((n + 1, m))
            soes = np.empty((n + 1, m))
            temps[0], coolants[0], socs[0], soes[0] = tb, tc, soc, soe

        # hoisted scalar constants; every fold below is algebraically
        # identical to the scalar rollout (float-ulp differences only, the
        # equivalence suite bounds them at 1e-9)
        cold_drop = self.eta_cool * self.pc_max / self.wc
        cool_gain = self.wc / self.eta_cool  # p_cool = gain * (tc - ti)
        cap_pmax = self.cap_pmax
        vr_sqrt = self.vr * 0.1  # vr*sqrt(soe/100) = vr/10*sqrt(soe)
        inv_cc_vref = 1.0 / self.cc_vref
        inv_bc_vref = 1.0 / self.bc_vref
        # ecap may be a (M,) per-row bank energy in stacked mode; the
        # expressions are elementwise either way, so the per-element
        # arithmetic (and results) are unchanged from the scalar fold
        ecap_v = self.ecap if ecap is None else np.asarray(ecap, dtype=float)
        j_to_soe = 100.0 / ecap_v
        soe_out_gain = 0.01 * ecap_v / dt  # max_out per (soe - 1)
        i_max = self.i_max_cell
        n_cells = self.n_cells
        inv_n_cells = 1.0 / n_cells
        # res(T) factor: exp(tk*(1/T - 1/Tref)) = exp(tk/T) * exp(-tk/Tref)
        res_tref_factor = math.exp(-self.res_tk / self.res_tref)
        neg_l2_gas = -self.aging_l2 / gas  # exp(-l2/(gas*T)) = exp(neg_l2_gas/T)
        aging_dt = self.aging_l1 * dt
        soc_per_a = 100.0 * dt / self.capacity_c
        de_bat_gain = n_cells * dt
        h, cbh, cch, wc2 = self.h, self.cb, self.cc_heat, self.wc
        h2 = h / 2.0
        cb_dt = cbh / dt
        a11 = cb_dt + h2
        a12 = -h2
        a21 = -h2
        a22 = cch / dt + h2 + wc2 / 2.0
        inv_det = 1.0 / (a11 * a22 - a12 * a21)
        tb_b1, tb_b2 = a22 * inv_det, -a12 * inv_det
        tc_b1, tc_b2 = -a21 * inv_det, a11 * inv_det
        cc_dt_tc = cch / dt - wc2 / 2.0  # b2's tc coefficient, folded
        # hinge weights as one matvec: over_t, under_soc, under_soe,
        # over_soe, over_p rows of the scratch buffer below
        hinge_w = np.array(
            [w.hinge_temp, w.hinge_soc, w.hinge_soe, w.hinge_soe, w.hinge_power]
        )
        hinge_buf = np.empty((5, m))

        for k in range(n):
            # --- cooling command (C2/C3 clamps, Eq. 16) ---
            coldest = np.maximum(tc - cold_drop, self.min_inlet)
            ti = np.minimum(np.maximum(inlet_t[k], coldest), tc)
            p_cool = cool_gain * (tc - ti)
            total = (preview_rows[k] + self.pump) + p_cool

            # --- ultracapacitor branch ---
            pcb = np.minimum(np.maximum(cap_t[k], -cap_pmax), cap_pmax)
            soe_before = soe
            vcap = vr_sqrt * np.sqrt(np.maximum(soe, 1.0))
            sag_c = 1.0 - vcap * inv_cc_vref
            # the upper clamp is a no-op (eta_max - droop*sag^2 <= eta_max)
            eta_c = np.maximum(
                self.cc_eta_max - self.cc_droop * (sag_c * sag_c), self.cc_eta_min
            )
            cap_port = np.where(pcb >= 0.0, pcb / eta_c, pcb * eta_c)
            # hard guard: never predict below 1% stored energy
            max_out = (soe - 1.0) * soe_out_gain
            over_out = cap_port > max_out
            if over_out.any():
                cap_port = np.where(over_out, np.maximum(0.0, max_out), cap_port)
                pcb = np.where(over_out, cap_port * eta_c, pcb)
            de_cap = cap_port * dt
            soe = soe - j_to_soe * de_cap

            # --- battery branch ---
            voc = self._voc_vec(soc)
            res_soc = self.res_a * np.exp(self.res_b * soc) + self.res_c
            res = res_soc * (res_tref_factor * np.exp(self.res_tk / tb))
            sag_b = 1.0 - (voc * self.pack_series) * inv_bc_vref
            eta_b = np.maximum(
                self.bc_eta_max - self.bc_droop * (sag_b * sag_b), self.bc_eta_min
            )
            # C6 deliverable limit at the cell current rating (shared by the
            # charge-headroom guard and the power hinge below)
            bat_max_port = i_max * (voc - i_max * res) * n_cells
            # mirror the plant's guard: charging the bank may not displace
            # load delivery (battery bus power is capped at its C6 limit)
            charging = pcb < 0.0
            if charging.any():
                headroom = np.maximum(
                    bat_max_port * eta_b - np.maximum(total, 0.0), 0.0
                )
                exceed = charging & (-pcb > headroom)
                if exceed.any():
                    pcb = np.where(exceed, -headroom, pcb)
                    cap_port = np.where(exceed, pcb * eta_c, cap_port)
                    # redo the bank bookkeeping with the reduced charge
                    soe = np.where(
                        exceed, soe_before - j_to_soe * (cap_port * dt), soe
                    )
                    de_cap = np.where(exceed, cap_port * dt, de_cap)
            bat_bus = total - pcb
            bat_port = np.where(bat_bus >= 0.0, bat_bus / eta_b, bat_bus * eta_b)
            two_res = 2.0 * res
            disc = voc * voc - (4.0 * inv_n_cells) * (res * bat_port)
            # at disc < 0 the clamped sqrt term vanishes, leaving exactly
            # the scalar branch's voc / (2 res) - no where() needed
            current = (voc - np.sqrt(np.maximum(disc, 0.0))) / two_res
            current = np.minimum(np.maximum(current, -i_max), i_max)
            heat_cell = (current * current) * res + (self.entropy * current) * tb
            heat = n_cells * np.maximum(heat_cell, 0.0)
            arrhenius = np.exp(neg_l2_gas / tb)
            q_inc = aging_dt * arrhenius * np.abs(current) ** self.aging_l3
            de_bat = de_bat_gain * (voc * current)
            soc = soc - soc_per_a * current

            # --- thermal update (trapezoidal Eq. 17, same as CoolingLoop) ---
            h2_tb_tc = h2 * (tb - tc)
            b1 = cb_dt * tb - h2_tb_tc + heat
            b2 = cc_dt_tc * tc + h2_tb_tc + wc2 * ti
            tb = tb_b1 * b1 + tb_b2 * b2
            tc = tc_b1 * b1 + tc_b2 * b2

            # --- accumulate objective (Eq. 19) ---
            p_cool_j = p_cool * dt
            de_hees = de_bat + de_cap
            objective += w.w1 * p_cool_j + w.w2 * q_inc + w.w3 * de_hees

            # --- constraint hinges (C1, C4, C5, C6) ---
            np.subtract(tb, TEMP_MAX_K, out=hinge_buf[0])
            np.subtract(20.0, soc, out=hinge_buf[1])
            np.subtract(self.soe_min, soe, out=hinge_buf[2])
            np.subtract(soe, self.soe_max, out=hinge_buf[3])
            np.subtract(bat_port, bat_max_port, out=hinge_buf[4])
            np.maximum(hinge_buf, 0.0, out=hinge_buf)
            np.multiply(hinge_buf, hinge_buf, out=hinge_buf)
            penalty += hinge_w @ hinge_buf

            if detailed:
                cooling_j += p_cool_j
                qloss += q_inc
                hees_j += de_hees
                temps[k + 1], coolants[k + 1] = tb, tc
                socs[k + 1], soes[k + 1] = soc, soe

        # --- terminal restoration costs ---
        terminal = np.zeros(m)
        soe_deficit = w.terminal_soe_ref - soe
        depleted = soe_deficit > 0.0
        if depleted.any():
            arrhenius = np.exp(neg_l2_gas / tb)
            deficit_j = soe_deficit * (0.01 * ecap_v)
            refill_i = (w.terminal_refill_power_w * inv_n_cells) / self._voc_vec(soc)
            refill_time = deficit_j / w.terminal_refill_power_w
            refill_qloss = (
                self.aging_l1 * arrhenius * np.abs(refill_i) ** self.aging_l3
            ) * refill_time
            terminal += np.where(
                depleted,
                (w.w3 * w.terminal_energy_gain) * deficit_j + w.w2 * refill_qloss,
                0.0,
            )
        temp_excess = tb - w.terminal_temp_ref
        hot = temp_excess > 0.0
        if hot.any():
            i_typ = w.terminal_typical_current_a**self.aging_l3
            rate_hot = (self.aging_l1 * i_typ) * np.exp(neg_l2_gas / tb)
            rate_ref = (
                self.aging_l1
                * math.exp(-self.aging_l2 / (gas * w.terminal_temp_ref))
                * i_typ
            )
            thermal_gain = (
                w.w1 * w.terminal_thermal_gain * self.cb / self.eta_cool
            )
            terminal += np.where(
                hot,
                thermal_gain * temp_excess
                + (w.w2 * w.terminal_future_s) * (rate_hot - rate_ref),
                0.0,
            )

        cost = objective + penalty + terminal
        if not detailed:
            return cost
        return BatchRolloutResult(
            cost=cost,
            objective=objective,
            penalty=penalty,
            terminal=terminal,
            temps_k=temps.T.copy(),
            coolant_k=coolants.T.copy(),
            socs=socs.T.copy(),
            soes=soes.T.copy(),
            cooling_j=cooling_j,
            qloss_percent=qloss,
            hees_j=hees_j,
        )
