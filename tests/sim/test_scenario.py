"""Scenario wrapper tests."""

import pytest

from repro.controllers.base import Architecture
from repro.core.otem import OTEMController
from repro.sim.scenario import METHODOLOGIES, Scenario, build_controller, run_scenario


class TestScenario:
    def test_default_is_otem_us06(self):
        s = Scenario()
        assert s.methodology == "otem"
        assert s.cycle == "us06"

    def test_rejects_unknown_methodology(self):
        with pytest.raises(ValueError, match="unknown methodology"):
            Scenario(methodology="magic")

    def test_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            Scenario(repeat=0)

    def test_with_methodology(self):
        s = Scenario().with_methodology("dual")
        assert s.methodology == "dual"
        assert s.cycle == "us06"

    def test_with_ucap(self):
        s = Scenario().with_ucap(5_000.0)
        assert s.ucap_farads == 5_000.0

    def test_cap_params_resistance_scaled(self):
        small = Scenario(ucap_farads=5_000.0).cap_params()
        large = Scenario(ucap_farads=25_000.0).cap_params()
        assert small.internal_resistance_ohm > large.internal_resistance_ohm


class TestBuildController:
    @pytest.mark.parametrize(
        "name,arch",
        [
            ("parallel", Architecture.PARALLEL),
            ("cooling", Architecture.BATTERY_ONLY),
            ("dual", Architecture.DUAL),
            ("otem", Architecture.HYBRID),
            ("heuristic", Architecture.HYBRID),
        ],
    )
    def test_architecture_mapping(self, name, arch):
        controller = build_controller(Scenario(methodology=name))
        assert controller.architecture is arch

    def test_all_methodologies_buildable(self):
        for name in METHODOLOGIES:
            assert build_controller(Scenario(methodology=name)) is not None

    def test_otem_gets_scenario_bank(self):
        controller = build_controller(Scenario(methodology="otem", ucap_farads=5_000))
        assert isinstance(controller, OTEMController)
        assert controller._cap_params.capacitance_f == 5_000


class TestRunScenario:
    @pytest.mark.parametrize("name", ["parallel", "cooling", "dual", "heuristic"])
    def test_baselines_run(self, name):
        result = run_scenario(Scenario(methodology=name, cycle="nycc"))
        assert result.qloss_percent > 0
        assert result.metrics.duration_s > 500

    def test_otem_runs(self):
        result = run_scenario(
            Scenario(methodology="otem", cycle="nycc", mpc_max_evals=40)
        )
        assert result.controller_name == "OTEM"
        assert result.metrics.unmet_energy_j < 1e5
