"""Ablation - cost weights w1/w2/w3 (Eq. 19).

DESIGN.md design choice: w2 prices battery life against energy.  Sweeping
w2 traces the aging-vs-energy Pareto front the paper's weighted sum
navigates.

Expected shape: raising w2 monotonically shifts the operating point toward
lower capacity loss (and never lowers energy consumption).
"""

from repro.core.cost import CostWeights
from repro.sim.scenario import Scenario, run_scenario

W2_SWEEP = (1e9, 2e10, 2e11)


def run_weight(w2):
    return run_scenario(
        Scenario(
            methodology="otem",
            cycle="us06",
            repeat=1,
            weights=CostWeights(w2=w2),
        )
    )


def test_ablation_aging_weight(benchmark):
    results = benchmark.pedantic(
        lambda: {w2: run_weight(w2) for w2 in W2_SWEEP}, rounds=1, iterations=1
    )

    print()
    print("Ablation - aging weight w2 (US06 x1)")
    print(f"{'w2':>9} {'qloss [%]':>10} {'avg P [kW]':>11} {'cool E [kWh]':>13}")
    for w2 in W2_SWEEP:
        m = results[w2].metrics
        print(
            f"{w2:>9.0e} {m.qloss_percent:>10.4f} "
            f"{m.average_power_w / 1000:>11.2f} {m.cooling_energy_j / 3.6e6:>13.2f}"
        )

    # the heaviest aging weight must produce the least capacity loss
    qlosses = [results[w2].qloss_percent for w2 in W2_SWEEP]
    assert qlosses[-1] == min(qlosses)
    # and it buys that with at least as much cooling
    cooling = [results[w2].metrics.cooling_energy_j for w2 in W2_SWEEP]
    assert cooling[-1] >= cooling[0]
