"""Prediction-model tests.

The critical property: the rollout must match the real plant (HybridHEES +
CoolingLoop) step-for-step, because the MPC's quality is bounded by its
model fidelity.
"""

import pytest

from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop
from repro.core.cost import CostWeights
from repro.core.rollout import TEMP_MAX_K, PredictionModel
from repro.hees.hybrid import (
    HybridHEES,
    default_battery_converter,
    default_cap_converter,
)
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


@pytest.fixture()
def model():
    pack = BatteryPack(DEFAULT_PACK)
    bank = UltracapBank(UltracapParams())
    return PredictionModel(
        DEFAULT_PACK,
        UltracapParams(),
        DEFAULT_COOLANT,
        default_battery_converter(pack),
        default_cap_converter(bank),
        CostWeights(),
    )


class TestScalarPiecesMatchVectorModels:
    def test_voc(self, model):
        pack = BatteryPack()
        for soc in [5.0, 30.0, 60.0, 95.0]:
            assert model._voc(soc) == pytest.approx(
                float(pack.electrical.open_circuit_voltage(soc)), rel=1e-12
            )

    def test_resistance(self, model):
        pack = BatteryPack()
        for soc, temp in [(20.0, 280.0), (50.0, 298.15), (90.0, 315.0)]:
            assert model._res(soc, temp) == pytest.approx(
                float(pack.electrical.internal_resistance(soc, temp)), rel=1e-12
            )

    def test_cap_converter_efficiency(self, model):
        bank = UltracapBank(UltracapParams())
        conv = default_cap_converter(bank)
        for v in [8.0, 12.0, 16.2]:
            assert model._cap_eta(v) == pytest.approx(float(conv.efficiency(v)), rel=1e-12)

    def test_bat_converter_efficiency(self, model):
        pack = BatteryPack()
        conv = default_battery_converter(pack)
        for v in [300.0, 345.6, 400.0]:
            assert model._bat_eta(v) == pytest.approx(float(conv.efficiency(v)), rel=1e-12)


class TestRolloutMatchesPlant:
    @pytest.mark.parametrize(
        "cap_cmd,inlet_cmd",
        [(0.0, 320.0), (15_000.0, 320.0), (0.0, 288.15), (-8_000.0, 295.0)],
    )
    def test_state_trajectories(self, model, cap_cmd, inlet_cmd):
        """Roll 8 steps and compare (T_b, T_c, SoC, SoE) to the plant."""
        dt = 5.0
        n = 8
        preview = [20_000.0] * n

        pack = BatteryPack(initial_soc_percent=90.0, initial_temp_k=305.0)
        bank = UltracapBank(UltracapParams(), initial_soe_percent=80.0)
        plant = HybridHEES(pack, bank)
        loop = CoolingLoop(DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k)

        state0 = (305.0, 305.0, 90.0, 80.0)
        pred = model.rollout(state0, [cap_cmd] * n, [inlet_cmd] * n, preview, dt)

        tc = 305.0
        pump = DEFAULT_COOLANT.pump_power_w
        for k in range(n):
            inlet = loop.clamp_inlet(inlet_cmd, tc)
            p_cool = loop.cooler_power_w(inlet, tc) + pump
            step = plant.step(preview[k] + p_cool, cap_cmd, dt)
            thermal = loop.step(pack.temp_k, tc, inlet, step.battery_heat_w, dt)
            pack.set_temperature(thermal.battery_temp_k)
            tc = thermal.coolant_temp_k

            assert pred.temps_k[k + 1] == pytest.approx(pack.temp_k, abs=0.05)
            assert pred.coolant_k[k + 1] == pytest.approx(tc, abs=0.05)
            assert pred.socs[k + 1] == pytest.approx(pack.soc_percent, abs=0.05)
            assert pred.soes[k + 1] == pytest.approx(bank.soe_percent, abs=0.5)


class TestCostStructure:
    def test_fast_path_equals_detailed_cost(self, model):
        state = (305.0, 303.0, 80.0, 70.0)
        cap = [5_000.0] * 6
        inlet = [295.0] * 6
        preview = [15_000.0] * 6
        fast = model.rollout_cost(state, cap, inlet, preview, 5.0)
        detailed = model.rollout(state, cap, inlet, preview, 5.0)
        assert fast == pytest.approx(detailed.cost, rel=1e-12)

    def test_cost_components_sum(self, model):
        r = model.rollout((310.0, 308.0, 60.0, 40.0), [0.0] * 6, [320.0] * 6,
                          [25_000.0] * 6, 5.0)
        assert r.cost == pytest.approx(r.objective + r.penalty + r.terminal)

    def test_hot_trajectory_penalized(self, model):
        hot = model.rollout((TEMP_MAX_K + 2.0, TEMP_MAX_K + 2.0, 80.0, 80.0),
                            [0.0] * 4, [330.0] * 4, [30_000.0] * 4, 5.0)
        assert hot.penalty > 0

    def test_cool_trajectory_unpenalized(self, model):
        cool = model.rollout((298.0, 298.0, 80.0, 80.0),
                             [0.0] * 4, [320.0] * 4, [10_000.0] * 4, 5.0)
        assert cool.penalty == 0.0

    def test_low_soe_terminal_prices_refill(self, model):
        full = model.rollout((298.0, 298.0, 80.0, 100.0),
                             [0.0] * 4, [320.0] * 4, [0.0] * 4, 5.0)
        empty = model.rollout((298.0, 298.0, 80.0, 25.0),
                              [0.0] * 4, [320.0] * 4, [0.0] * 4, 5.0)
        assert empty.terminal > full.terminal

    def test_hot_terminal_prices_future_aging(self, model):
        cool = model.rollout((298.0, 298.0, 80.0, 100.0),
                             [0.0] * 4, [320.0] * 4, [0.0] * 4, 5.0)
        hot = model.rollout((312.0, 312.0, 80.0, 100.0),
                            [0.0] * 4, [330.0] * 4, [0.0] * 4, 5.0)
        assert hot.terminal > cool.terminal

    def test_cooling_counts_in_objective(self, model):
        state = (310.0, 310.0, 80.0, 100.0)
        none = model.rollout(state, [0.0] * 4, [330.0] * 4, [10_000.0] * 4, 5.0)
        cold = model.rollout(state, [0.0] * 4, [288.15] * 4, [10_000.0] * 4, 5.0)
        assert cold.cooling_j > none.cooling_j

    def test_cap_discharge_reduces_battery_aging_in_horizon(self, model):
        state = (308.0, 308.0, 80.0, 100.0)
        none = model.rollout(state, [0.0] * 4, [330.0] * 4, [30_000.0] * 4, 5.0)
        cap = model.rollout(state, [30_000.0] * 4, [330.0] * 4, [30_000.0] * 4, 5.0)
        assert cap.qloss_percent < none.qloss_percent

    def test_charging_cap_cannot_starve_load(self, model):
        """Mirror of the plant's load-priority guard."""
        state = (298.0, 298.0, 90.0, 50.0)
        heavy = model.pack_pmax * 0.95
        r = model.rollout(state, [-60_000.0] * 3, [320.0] * 3, [heavy] * 3, 5.0)
        # the guard reduces the charge command instead of overdrawing the
        # battery: SoE must not rise much under a near-limit load
        assert r.soes[-1] < 55.0
