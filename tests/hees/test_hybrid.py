"""Hybrid (converter-decoupled) architecture tests."""

import pytest

from repro.battery.pack import BatteryPack
from repro.hees.hybrid import HybridHEES
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


@pytest.fixture()
def plant():
    return HybridHEES(BatteryPack(), UltracapBank(UltracapParams()))


class TestSplit:
    def test_zero_cap_command_battery_carries_all(self, plant):
        result = plant.step(30_000.0, 0.0, 1.0)
        assert result.ultracap_power_w == 0.0
        assert result.delivered_power_w == pytest.approx(30_000.0, rel=0.01)

    def test_cap_command_offloads_battery(self, plant):
        with_cap = plant.step(30_000.0, 20_000.0, 1.0)
        assert with_cap.notes["cap_bus_w"] == pytest.approx(20_000.0, rel=0.01)
        assert with_cap.notes["battery_bus_w"] == pytest.approx(10_000.0, rel=0.01)

    def test_full_cap_command(self, plant):
        result = plant.step(30_000.0, 30_000.0, 1.0)
        assert abs(result.battery_power_w) < 1_000.0

    def test_cap_charging_adds_battery_load(self, plant):
        plant.bank.reset(50.0)
        result = plant.step(10_000.0, -5_000.0, 1.0)
        assert result.notes["battery_bus_w"] == pytest.approx(15_000.0, rel=0.01)
        assert result.ultracap_power_w < 0

    def test_converter_losses_tracked(self, plant):
        result = plant.step(30_000.0, 20_000.0, 1.0)
        assert result.converter_loss_j > 0

    def test_command_clipped_to_bank_limits(self, plant):
        result = plant.step(10_000.0, 1e6, 1.0)
        lo, hi = plant.cap_bus_limits(1.0)
        # small slack: the limit is evaluated at pre-step voltage, the
        # realized bus power at the (slightly sagged) in-step voltage
        assert result.notes["cap_bus_w"] <= hi + 100.0


class TestLoadPriority:
    def test_charge_command_never_starves_load(self, plant):
        # ask for a huge charge while the load is near the battery limit
        heavy_load = 0.9 * plant.pack.max_discharge_power_w()
        result = plant.step(heavy_load, -60_000.0, 1.0)
        assert result.unmet_power_w < 100.0

    def test_charge_allowed_when_headroom_exists(self, plant):
        plant.bank.reset(50.0)
        result = plant.step(5_000.0, -10_000.0, 1.0)
        assert result.ultracap_power_w < -8_000.0


class TestEmergencyReserve:
    def test_reserve_covers_peak_with_empty_bank(self):
        plant = HybridHEES(
            BatteryPack(),
            UltracapBank(UltracapParams(), initial_soe_percent=20.0),
        )
        peak = plant.pack.max_discharge_power_w() * 0.97 + 20_000.0
        result = plant.step(peak, 0.0, 1.0)
        assert result.unmet_power_w < 500.0
        assert plant.bank.soe_percent < 20.0

    def test_reserve_not_tapped_when_battery_suffices(self, plant):
        plant.bank.reset(20.0)
        plant.step(10_000.0, 0.0, 1.0)
        assert plant.bank.soe_percent == pytest.approx(20.0)


class TestRegen:
    def test_regen_to_battery_by_default(self, plant):
        plant.pack.state.soc_percent = 80.0
        result = plant.step(-20_000.0, 0.0, 1.0)
        assert result.battery_power_w < 0

    def test_regen_routed_to_cap_on_command(self, plant):
        plant.bank.reset(50.0)
        result = plant.step(-20_000.0, -20_000.0, 1.0)
        assert result.ultracap_power_w < 0
        assert abs(result.battery_power_w) < 1_500.0


class TestCapBusLimits:
    def test_limits_shapes(self, plant):
        lo, hi = plant.cap_bus_limits(1.0)
        assert lo <= 0 <= hi

    def test_full_bank_cannot_charge(self, plant):
        lo, _ = plant.cap_bus_limits(1.0)
        assert lo == pytest.approx(0.0)

    def test_empty_bank_cannot_discharge(self):
        plant = HybridHEES(
            BatteryPack(),
            UltracapBank(UltracapParams(), initial_soe_percent=20.0),
        )
        _, hi = plant.cap_bus_limits(1.0)
        assert hi == pytest.approx(0.0)

    def test_rejects_nonpositive_dt(self, plant):
        with pytest.raises(ValueError):
            plant.step(1_000.0, 0.0, 0.0)
