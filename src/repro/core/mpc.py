"""The OTEM MPC optimizer (paper Eq. 18-19, Algorithm 1 line 14).

Single-shooting formulation: the decision vector is the horizon's
ultracapacitor bus-power commands and coolant inlet temperatures
(2N variables, normalized to [0, 1] for conditioning); states are
eliminated by :class:`repro.core.rollout.PredictionModel`.  Input bounds
realize constraints C2/C3/C7; the rollout's hinge penalties realize
C1/C4/C5/C6.  ``scipy.optimize.minimize(L-BFGS-B)`` solves the NLP,
warm-started from the previous plan shifted by one step.

Two rollout backends drive the penalty solver:

* ``"scalar"`` (default) - the reference pure-Python rollout; scipy
  differentiates it with serial forward differences (2N+1 rollouts per
  gradient).
* ``"vectorized"`` - :class:`repro.core.rollout_vec.BatchPredictionModel`
  evaluates every multi-start candidate's central-difference stencil as
  one batched kernel call per L-BFGS-B ``fun+jac`` round, and the
  multi-start race is a single joint solve over the stacked candidates
  (the objective is block-separable, so minimizing the sum solves each
  start).  Several times faster per solve at the same budget; the scalar
  model stays the semantic reference (see benchmarks/bench_mpc_solver.py).

:class:`MPCPlannerVec` extends the vectorized backend *across scenarios*:
S independent planners replan in lockstep, their multi-start stencils
stacked into one kernel call per L-BFGS-B round via the reverse-
communication driver in :mod:`repro.core.lbfgsb_lockstep`.  Each
scenario's iterate sequence is exactly what its own
``MPCPlanner(rollout_backend="vectorized")`` would produce (same starts,
same budgets, same solver protocol) - the batching changes when
evaluations happen, not what they compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.core.lbfgsb_lockstep import minimize_lockstep
from repro.core.rollout import PredictionModel, RolloutResult
from repro.core.rollout_vec import BatchPredictionModel


@dataclass(frozen=True)
class SolverStats:
    """Accumulated optimizer effort over one route (diagnostics).

    Attributes
    ----------
    solves:
        Number of horizon problems solved (one per replan).
    total_iterations:
        Sum of :attr:`MPCPlan.solver_iterations` over all solves.
    last_cost:
        Objective value achieved by the most recent solve (NaN before the
        first solve; serialize via :attr:`last_cost_or_none`).
    backend:
        Rollout backend the planner used (``"scalar"`` or ``"vectorized"``).
    wins_warm / wins_neutral / wins_full_cool:
        How many solves each multi-start candidate won: the shifted
        previous plan (``warm``), the do-nothing plan (``neutral``), or
        the full-cool diversifier (``full_cool``).  Observability for the
        multi-start race: a route where ``wins_warm`` dominates is one
        where warm starts actually pay.
    """

    solves: int
    total_iterations: int
    last_cost: float
    backend: str = "scalar"
    wins_warm: int = 0
    wins_neutral: int = 0
    wins_full_cool: int = 0

    @property
    def mean_iterations(self) -> float:
        """Average iterations per solve (0 when nothing was solved)."""
        return self.total_iterations / self.solves if self.solves else 0.0

    @property
    def last_cost_or_none(self) -> float | None:
        """``last_cost`` with the before-first-solve NaN mapped to ``None``
        (JSON consumers must see ``null``, not the invalid token ``NaN``)."""
        return None if math.isnan(self.last_cost) else self.last_cost


@dataclass(frozen=True)
class MPCPlan:
    """One solved horizon.

    Attributes
    ----------
    cap_bus_w:
        Planned ultracap bus power per horizon step [W].
    inlet_temp_k:
        Planned coolant inlet temperature per horizon step [K].
    predicted:
        Detailed rollout of the optimal plan.
    solver_iterations:
        L-BFGS-B iteration count (diagnostics / ablation benches).
    solver_cost:
        Achieved objective value.
    """

    cap_bus_w: np.ndarray
    inlet_temp_k: np.ndarray
    predicted: RolloutResult
    solver_iterations: int
    solver_cost: float

    @property
    def horizon(self) -> int:
        """Number of steps in the plan."""
        return self.cap_bus_w.size


class MPCPlanner:
    """Solves the OTEM horizon problem.

    Parameters
    ----------
    model:
        The prediction model (physics + objective).
    horizon:
        Control-window length N (steps).
    step_s:
        Horizon step duration [s] (the paper's sampling period, Eq. 17).
    cap_power_bound_w:
        Symmetric bound on the ultracap bus command [W]; defaults to the
        bank/converter rating from the model.
    inlet_span_k:
        (min, max) commanded inlet temperature [K]; the rollout further
        clamps by the dynamic C2/C3 limits.
    max_function_evals:
        Budget per solve (speed/quality knob, used by the ablation bench).
    method:
        ``"penalty"`` (default): multi-start L-BFGS-B with the state
        constraints as quadratic hinges inside the objective - fast and
        robust.  ``"slsqp"``: SLSQP with C1/C4/C5 as *explicit* inequality
        constraints, the literal form of the paper's Eq. 18 - slower, and
        useful for validating the penalty formulation against it
        (benchmarks/bench_ablation_solver.py).
    rollout_backend:
        ``"scalar"`` (default) keeps the reference pure-Python rollout;
        ``"vectorized"`` switches the penalty solver onto the batched
        NumPy kernel with a batched central-difference gradient (see
        module docstring).  The SLSQP method always uses the scalar model.
    """

    #: Supported solver formulations.
    METHODS = ("penalty", "slsqp")

    #: Supported rollout backends.
    BACKENDS = ("scalar", "vectorized")

    #: Finite-difference step of the batched central-difference gradient
    #: (normalized coordinates; matches the scalar path's L-BFGS-B eps).
    FD_EPS = 3e-3

    def __init__(
        self,
        model: PredictionModel,
        horizon: int = 12,
        step_s: float = 5.0,
        cap_power_bound_w: float | None = None,
        inlet_span_k: tuple = (288.15, 312.0),
        max_function_evals: int = 150,
        method: str = "penalty",
        rollout_backend: str = "scalar",
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}, got {method!r}")
        if rollout_backend not in self.BACKENDS:
            raise ValueError(
                f"rollout_backend must be one of {self.BACKENDS}, "
                f"got {rollout_backend!r}"
            )
        self._method = method
        self._backend = rollout_backend
        self._model = model
        self._vec_model = (
            BatchPredictionModel.from_scalar(model)
            if rollout_backend == "vectorized"
            else None
        )
        self._n = horizon
        self._dt = step_s
        bound = cap_power_bound_w if cap_power_bound_w is not None else model.cap_pmax
        self._cap_lo, self._cap_hi = -bound, bound
        self._inlet_lo, self._inlet_hi = inlet_span_k
        if self._inlet_lo >= self._inlet_hi:
            raise ValueError("inlet_span_k must be increasing")
        # denormalization scale factors, hoisted out of the solve closures
        self._cap_scale = self._cap_hi - self._cap_lo
        self._inlet_scale = self._inlet_hi - self._inlet_lo
        self._maxfun = max_function_evals
        self._last_z: np.ndarray | None = None
        self._solves = 0
        self._total_iterations = 0
        self._last_cost = float("nan")
        self._wins = {"warm": 0, "neutral": 0, "full_cool": 0}

    @property
    def horizon(self) -> int:
        """Control-window length N."""
        return self._n

    @property
    def step_s(self) -> float:
        """Horizon step duration [s]."""
        return self._dt

    @property
    def rollout_backend(self) -> str:
        """The configured rollout backend (``"scalar"``/``"vectorized"``)."""
        return self._backend

    @property
    def stats(self) -> SolverStats:
        """Optimizer effort accumulated since the last :meth:`reset`."""
        return SolverStats(
            solves=self._solves,
            total_iterations=self._total_iterations,
            last_cost=self._last_cost,
            backend=self._backend,
            wins_warm=self._wins["warm"],
            wins_neutral=self._wins["neutral"],
            wins_full_cool=self._wins["full_cool"],
        )

    # ------------------------------------------------------------------ #

    def _denormalize(self, z: np.ndarray) -> tuple:
        n = self._n
        cap = self._cap_lo + z[:n] * self._cap_scale
        inlet = self._inlet_lo + z[n:] * self._inlet_scale
        return cap, inlet

    def _initial_guess(self, coolant_temp_k: float) -> np.ndarray:
        """Neutral plan: no ultracap use, no cooling (inlet at T_c)."""
        n = self._n
        z = np.empty(2 * n)
        z[:n] = (0.0 - self._cap_lo) / (self._cap_hi - self._cap_lo)
        inlet_neutral = min(max(coolant_temp_k, self._inlet_lo), self._inlet_hi)
        z[n:] = (inlet_neutral - self._inlet_lo) / (self._inlet_hi - self._inlet_lo)
        return z

    def _full_cool_guess(self) -> np.ndarray:
        """Aggressive plan: no ultracap use, coldest inlet every step."""
        n = self._n
        z = np.empty(2 * n)
        z[:n] = (0.0 - self._cap_lo) / (self._cap_hi - self._cap_lo)
        z[n:] = 0.0
        return z

    def _warm_start(self, coolant_temp_k: float) -> np.ndarray:
        if self._last_z is None:
            return self._initial_guess(coolant_temp_k)
        n = self._n
        z = self._last_z.copy()
        # shift both input blocks one step left, repeating the tail
        z[: n - 1] = z[1:n]
        z[n : 2 * n - 1] = z[n + 1 :]
        return np.clip(z, 0.0, 1.0)

    def reset(self):
        """Forget the warm start and the effort counters (fresh route)."""
        self._last_z = None
        self._solves = 0
        self._total_iterations = 0
        self._last_cost = float("nan")
        self._wins = {"warm": 0, "neutral": 0, "full_cool": 0}

    def _starts(self, coolant_temp_k: float) -> list:
        """Multi-start candidate plans for the penalty solver.

        The clamp/hinge kinks can stall a single L-BFGS-B run, so every
        solve races two structured plans (see
        tests/core/test_mpc.py::test_multistart_escapes_stall).  A cold
        solve races the neutral plan against the full-cool plan; a warm
        solve races the shifted previous plan against the neutral plan -
        the previous plan already carries the cooling schedule the
        full-cool seed exists to provide.  Warm solves used to race all
        three at full budget, which made them ~1.4x *slower* than cold
        ones (the warm/cold anomaly BENCH_mpc.json once recorded).
        """
        if self._last_z is None:
            return [self._initial_guess(coolant_temp_k), self._full_cool_guess()]
        return [
            self._warm_start(coolant_temp_k),
            self._initial_guess(coolant_temp_k),
        ]

    def _start_labels(self) -> tuple:
        """Attribution labels for the current :meth:`_starts` candidates."""
        if self._last_z is None:
            return ("neutral", "full_cool")
        return ("warm", "neutral")

    def _budgets(self, n_starts: int) -> list:
        """Per-start function-evaluation budgets (scalar-path parity).

        Cold solves give both structured seeds the full budget; on warm
        solves the diversifier seed (the neutral plan) races at half
        budget - it only has to beat the warm start's basin, not polish
        within its own.  Together with the two-candidate warm race in
        _starts this removes the warm/cold anomaly BENCH_mpc.json used
        to record (warm solves 1.4x slower than cold ones).
        """
        budgets = [self._maxfun] * n_starts
        if self._last_z is not None:
            budgets[1:] = [self._maxfun // 2] * (n_starts - 1)
        return budgets

    # ------------------------------------------------------------------ #
    # solver backends

    def _solve_penalty(self, objective, state, n):
        """Multi-start L-BFGS-B on the hinge-penalty objective (scalar)."""
        starts = self._starts(state[1])
        labels = self._start_labels()
        budgets = self._budgets(len(starts))
        best = None
        best_label = labels[0]
        iterations = 0
        for z0, budget, label in zip(starts, budgets, labels):
            result = optimize.minimize(
                objective,
                z0,
                method="L-BFGS-B",
                bounds=[(0.0, 1.0)] * (2 * n),
                options={
                    "maxfun": budget,
                    "maxiter": 60,
                    "eps": 3e-3,
                    "ftol": 1e-12,
                },
            )
            iterations += int(result.nit)
            if best is None or result.fun < best.fun:
                best = result
                best_label = label
        best.nit = iterations
        self._wins[best_label] += 1
        return best

    def _solve_penalty_batched(self, state, preview, step):
        """One joint L-BFGS-B race over the stacked multi-start candidates.

        The hinge-penalty objective is evaluated by the batched kernel: a
        ``fun+jac`` round costs a *single* rollout-kernel invocation over
        the stacked central-difference stencil of every candidate
        (``S * (4N+1)`` rows), instead of ``2N+1`` serial Python rollouts
        per candidate.  The stacked objective is the sum of the per-block
        costs; blocks share no variables, so minimizing the sum optimizes
        each start, and the best block wins the race.
        """
        n = self._n
        dim = 2 * n
        eps = self.FD_EPS
        vec = self._vec_model
        starts = self._starts(state[1])
        labels = self._start_labels()
        s = len(starts)
        z0 = np.concatenate(starts)
        rows = 2 * dim + 1  # base + forward + backward stencil per block
        offsets = np.zeros((rows, dim))
        idx = np.arange(dim)
        offsets[1 + idx, idx] = eps
        offsets[1 + dim + idx, idx] = -eps

        def block_costs(blocks: np.ndarray) -> np.ndarray:
            cap = self._cap_lo + blocks[:, :n] * self._cap_scale
            inlet = self._inlet_lo + blocks[:, n:] * self._inlet_scale
            return vec.rollout_costs(state, cap, inlet, preview, step)

        seen = {"first": None, "z": None, "base": None}

        def fun_and_grad(z: np.ndarray) -> tuple:
            stencil = z.reshape(s, 1, dim) + offsets
            costs = block_costs(stencil.reshape(s * rows, dim)).reshape(s, rows)
            base = costs[:, 0].copy()
            if seen["first"] is None:
                seen["first"] = base  # the start points' own costs (x0 round)
            seen["z"], seen["base"] = z.copy(), base
            grad = (costs[:, 1 : 1 + dim] - costs[:, 1 + dim :]) / (2.0 * eps)
            return float(base.sum()), grad.reshape(s * dim)

        # budget parity with the scalar path: there one scipy fun
        # evaluation is one rollout and a gradient burns 2N+1 of the
        # maxfun budget, so a start with budget b gets b/(2N+1) fun+jac
        # rounds.  The joint solve advances every start per round, so the
        # round count is the scalar *total* spread over the s stacked
        # blocks: sum(budgets)/(s*(2N+1)).  A cold solve (both seeds at
        # full budget) gets maxfun/(2N+1) rounds; a warm solve (the
        # diversifier at half budget) gets ~3/4 of that - warm replans
        # are cheaper than cold ones, matching the scalar backend instead
        # of the flat 2/s*maxfun/(2N+1) both used to get (the vectorized
        # warm==cold anomaly BENCH_mpc.json once recorded)
        rounds = max(
            4, int(math.ceil(sum(self._budgets(s)) / (s * (dim + 1))))
        )
        result = optimize.minimize(
            fun_and_grad,
            z0,
            method="L-BFGS-B",
            jac=True,
            bounds=[(0.0, 1.0)] * (s * dim),
            options={"maxfun": rounds, "maxiter": 60, "ftol": 1e-12},
        )
        blocks = np.clip(result.x.reshape(s, dim), 0.0, 1.0)
        # L-BFGS-B guarantees descent of the *sum*, not of every block -
        # race the solved blocks against their own starting points.  Both
        # cost vectors usually come from cached fun rounds (the x0 round
        # evaluated the starts; the final round usually evaluated result.x).
        if seen["z"] is not None and np.array_equal(seen["z"], result.x):
            final_costs = seen["base"]
        else:
            final_costs = block_costs(blocks)
        candidates = np.concatenate([blocks, np.asarray(starts)])
        costs = np.concatenate([final_costs, seen["first"]])
        winner = int(np.argmin(costs))
        # winner < s is a solved block, winner >= s its unsolved start;
        # either way the originating candidate is winner % s
        self._wins[labels[winner % s]] += 1
        result.x = candidates[winner]
        result.fun = float(costs[winner])
        return result

    def _solve_slsqp(self, state, preview, step):
        """SLSQP with C1/C4/C5 as explicit inequality constraints (Eq. 18).

        Objective and constraints share one cached rollout per decision
        vector (SLSQP evaluates them separately, the rollout dominates).
        """
        from repro.core.rollout import TEMP_MAX_K

        model = self._model
        n = self._n
        cache = {"key": None, "value": None}

        def evaluate(z):
            key = z.tobytes()
            if cache["key"] != key:
                cap, inlet = self._denormalize(z)
                cache["value"] = model.rollout(state, cap, inlet, preview, step)
                cache["key"] = key
            return cache["value"]

        def objective(z):
            r = evaluate(z)
            return r.objective + r.terminal

        def constraints(z):
            r = evaluate(z)
            temps = np.asarray(r.temps_k[1:])
            socs = np.asarray(r.socs[1:])
            soes = np.asarray(r.soes[1:])
            return np.concatenate(
                [
                    TEMP_MAX_K - temps,          # C1
                    socs - 20.0,                 # C4
                    soes - model.soe_min,        # C5 lower
                    model.soe_max - soes,        # C5 upper
                ]
            )

        result = optimize.minimize(
            objective,
            self._warm_start(state[1]),
            method="SLSQP",
            bounds=[(0.0, 1.0)] * (2 * n),
            constraints=[{"type": "ineq", "fun": constraints}],
            options={"maxiter": max(20, self._maxfun // 10), "ftol": 1e-9},
        )
        # single-start solver: the (possibly warm) seed wins by default
        self._wins["warm" if self._last_z is not None else "neutral"] += 1
        return result

    def plan(self, state: tuple, preview_w: np.ndarray, dt: float | None = None) -> MPCPlan:
        """Solve one horizon.

        Parameters
        ----------
        state:
            (T_b, T_c, SoC, SoE) at the start of the horizon.
        preview_w:
            Predicted EV power per horizon step [W], length >= N (extra
            entries are ignored).
        dt:
            Optional override of the horizon step duration [s].
        """
        n = self._n
        step = self._dt if dt is None else dt
        # pad the preview once, as an ndarray - the rollouts index it
        # directly, no per-evaluation list copies
        src = np.asarray(preview_w, dtype=float)[:n]
        if src.size < n:
            preview = np.zeros(n)
            preview[: src.size] = src
        else:
            preview = src

        model = self._model

        if self._method == "slsqp":
            result = self._solve_slsqp(state, preview, step)
        elif self._backend == "vectorized":
            result = self._solve_penalty_batched(state, preview, step)
        else:

            def objective(z: np.ndarray) -> float:
                cap, inlet = self._denormalize(z)
                return model.rollout_cost(state, cap, inlet, preview, step)

            result = self._solve_penalty(objective, state, n)
        z_opt = np.clip(result.x, 0.0, 1.0)
        self._last_z = z_opt
        self._solves += 1
        self._total_iterations += int(result.nit)
        self._last_cost = float(result.fun)
        cap, inlet = self._denormalize(z_opt)
        predicted = model.rollout(state, cap, inlet, preview, step)
        return MPCPlan(
            cap_bus_w=cap,
            inlet_temp_k=inlet,
            predicted=predicted,
            solver_iterations=int(result.nit),
            solver_cost=float(result.fun),
        )


class MPCPlannerVec:
    """Solves S scenarios' OTEM horizon problems in lockstep.

    One planner per scenario would issue S independent
    ``optimize.minimize`` calls per replan wave; this twin drives all S
    solves simultaneously through the reverse-communication L-BFGS-B
    driver (:mod:`repro.core.lbfgsb_lockstep`), stacking every pending
    scenario's multi-start central-difference stencil into a *single*
    kernel call per round via
    :meth:`repro.core.rollout_vec.BatchPredictionModel.rollout_costs_stacked`.

    Equivalence contract: scenario ``j``'s plans are identical to what a
    private ``MPCPlanner(models[j], ..., rollout_backend="vectorized")``
    would produce for the same replan sequence - same starts, same
    warm/cold budgets, same L-BFGS-B iterate trajectory (the driver is
    probe-verified bitwise against ``optimize.minimize``), same winner
    race.  ``tests/core/test_mpc_vec.py`` enforces this to 1e-9 on plan
    actions and cost (observed agreement: exact).

    Parameters
    ----------
    models:
        One :class:`~repro.core.rollout.PredictionModel` per scenario.
        All models must share every constant except the ultracapacitor
        bank energy ``ecap`` (within a lockstep MPC group only the bank
        size varies; anything else means the group was mis-keyed).
    horizon / step_s / cap_power_bound_w / inlet_span_k / max_function_evals:
        Shared solver shape, as for :class:`MPCPlanner`.
    """

    #: Model constants allowed to vary across the group.
    VARYING_CONSTANTS = frozenset({"ecap"})

    def __init__(
        self,
        models: Sequence[PredictionModel],
        horizon: int = 12,
        step_s: float = 5.0,
        cap_power_bound_w: float | None = None,
        inlet_span_k: tuple = (288.15, 312.0),
        max_function_evals: int = 150,
    ):
        if not models:
            raise ValueError("MPCPlannerVec needs at least one model")
        ref = models[0].__dict__
        for j, mdl in enumerate(models[1:], start=1):
            for key, val in mdl.__dict__.items():
                if key in self.VARYING_CONSTANTS:
                    continue
                if not np.all(ref[key] == val):
                    raise ValueError(
                        f"model {j} differs from model 0 in {key!r}; a "
                        "lockstep MPC group may only vary "
                        f"{sorted(self.VARYING_CONSTANTS)}"
                    )
        # one scalar planner per scenario carries that scenario's warm
        # start, counters, and win attribution; plan_batch() drives their
        # solves jointly and writes the bookkeeping back through them
        self._planners = [
            MPCPlanner(
                mdl,
                horizon=horizon,
                step_s=step_s,
                cap_power_bound_w=cap_power_bound_w,
                inlet_span_k=inlet_span_k,
                max_function_evals=max_function_evals,
                method="penalty",
                rollout_backend="vectorized",
            )
            for mdl in models
        ]
        self._vec = BatchPredictionModel.from_scalar(models[0])
        self._ecap = np.array([mdl.ecap for mdl in models])
        self._n = horizon
        self._dt = step_s

    @property
    def horizon(self) -> int:
        """Control-window length N (shared by the group)."""
        return self._n

    @property
    def step_s(self) -> float:
        """Horizon step duration [s] (shared by the group)."""
        return self._dt

    @property
    def scenarios(self) -> int:
        """Number of scenarios solved per wave."""
        return len(self._planners)

    @property
    def stats(self) -> tuple:
        """Per-scenario :class:`SolverStats` accumulated so far."""
        return tuple(p.stats for p in self._planners)

    def reset(self):
        """Forget every scenario's warm start and counters."""
        for p in self._planners:
            p.reset()

    def plan_batch(
        self,
        states: np.ndarray,
        previews: np.ndarray,
        dt: float | None = None,
        indices: np.ndarray | None = None,
    ) -> list:
        """Solve one horizon per (selected) scenario, all in lockstep.

        Parameters
        ----------
        states:
            ``(S, 4)`` rows of (T_b, T_c, SoC, SoE) per solved scenario.
        previews:
            ``(S, >=N)`` predicted EV power per horizon step [W] (extra
            columns ignored, short rows zero-padded - same as
            :meth:`MPCPlanner.plan`).
        dt:
            Optional override of the horizon step duration [s].
        indices:
            Optional scenario indices to solve (default: all).  Rows of
            ``states``/``previews`` align with this selection.  Scenarios
            left out keep their warm starts and counters untouched -
            ragged routes replan only while still on route.

        Returns
        -------
        list[MPCPlan]
            One plan per solved scenario, in selection order.
        """
        if indices is None:
            planners = self._planners
            ecap = self._ecap
        else:
            sel = [int(j) for j in np.asarray(indices).ravel()]
            planners = [self._planners[j] for j in sel]
            ecap = self._ecap[sel]
        m = len(planners)
        n = self._n
        dim = 2 * n
        eps = MPCPlanner.FD_EPS
        step = self._dt if dt is None else dt
        states = np.asarray(states, dtype=float)
        if states.shape != (m, 4):
            raise ValueError(f"states must be {(m, 4)}, got {states.shape}")
        src = np.atleast_2d(np.asarray(previews, dtype=float))[:, :n]
        if src.shape[0] != m:
            raise ValueError(f"previews must have {m} rows, got {src.shape[0]}")
        if src.shape[1] < n:
            previews_p = np.zeros((m, n))
            previews_p[:, : src.shape[1]] = src
        else:
            previews_p = src

        # per-scenario starts / budgets (warm status may differ per row)
        all_starts = []
        all_labels = []
        rounds = []
        for j, p in enumerate(planners):
            starts = p._starts(states[j, 1])
            all_starts.append(starts)
            all_labels.append(p._start_labels())
            s = len(starts)
            rounds.append(
                max(4, int(math.ceil(sum(p._budgets(s)) / (s * (dim + 1)))))
            )
        s = len(all_starts[0])  # always 2 (warm or cold race)
        rows = 2 * dim + 1
        offsets = np.zeros((rows, dim))
        idx_d = np.arange(dim)
        offsets[1 + idx_d, idx_d] = eps
        offsets[1 + dim + idx_d, idx_d] = -eps
        x0s = np.stack([np.concatenate(st) for st in all_starts])

        p0 = planners[0]
        cap_lo, cap_scale = p0._cap_lo, p0._cap_scale
        inlet_lo, inlet_scale = p0._inlet_lo, p0._inlet_scale
        vec = self._vec

        def kernel(blocks: np.ndarray, scen_idx: np.ndarray) -> np.ndarray:
            """Stacked costs for candidate rows tagged with scenario ids."""
            cap = cap_lo + blocks[:, :n] * cap_scale
            inlet = inlet_lo + blocks[:, n:] * inlet_scale
            return vec.rollout_costs_stacked(
                states[scen_idx],
                cap,
                inlet,
                previews_p[scen_idx],
                step,
                ecap=ecap[scen_idx],
            )

        seen_first: list = [None] * m
        seen_z: list = [None] * m
        seen_base: list = [None] * m

        def evaluate(batch: np.ndarray, idx: np.ndarray) -> tuple:
            b = batch.shape[0]
            stencil = batch.reshape(b, s, 1, dim) + offsets
            scen_idx = np.repeat(idx, s * rows)
            costs = kernel(stencil.reshape(b * s * rows, dim), scen_idx)
            costs = costs.reshape(b, s, rows)
            f = np.empty(b)
            grads = np.empty((b, s * dim))
            for r in range(b):
                j = int(idx[r])
                base = costs[r, :, 0].copy()
                if seen_first[j] is None:
                    seen_first[j] = base  # the start points' own costs
                seen_z[j], seen_base[j] = batch[r].copy(), base
                grad = (costs[r, :, 1 : 1 + dim] - costs[r, :, 1 + dim :]) / (
                    2.0 * eps
                )
                f[r] = float(base.sum())
                grads[r] = grad.reshape(s * dim)
            return f, grads

        results = minimize_lockstep(
            evaluate,
            x0s,
            np.zeros(s * dim),
            np.ones(s * dim),
            maxfun=rounds,
            maxiter=60,
            ftol=1e-12,
        )

        plans = []
        for j, (p, res) in enumerate(zip(planners, results)):
            blocks = np.clip(res.x.reshape(s, dim), 0.0, 1.0)
            if seen_z[j] is not None and np.array_equal(seen_z[j], res.x):
                final_costs = seen_base[j]
            else:
                final_costs = kernel(blocks, np.full(s, j))
            candidates = np.concatenate([blocks, np.asarray(all_starts[j])])
            costs = np.concatenate([final_costs, seen_first[j]])
            winner = int(np.argmin(costs))
            p._wins[all_labels[j][winner % s]] += 1
            z_opt = np.clip(candidates[winner], 0.0, 1.0)
            nit = int(res.nit)
            cost = float(costs[winner])
            p._last_z = z_opt
            p._solves += 1
            p._total_iterations += nit
            p._last_cost = cost
            cap, inlet = p._denormalize(z_opt)
            predicted = p._model.rollout(
                tuple(states[j]), cap, inlet, previews_p[j], step
            )
            plans.append(
                MPCPlan(
                    cap_bus_w=cap,
                    inlet_temp_k=inlet,
                    predicted=predicted,
                    solver_iterations=nit,
                    solver_cost=cost,
                )
            )
        return plans
