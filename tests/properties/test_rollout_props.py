"""Property-based prediction-vs-plant fidelity.

The MPC can only be as good as its model; this property drives both the
scalar rollout and the real plant with random command/demand sequences and
requires the state trajectories to agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop
from repro.core.cost import CostWeights
from repro.core.rollout import PredictionModel
from repro.hees.hybrid import (
    HybridHEES,
    default_battery_converter,
    default_cap_converter,
)
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams

MODEL = PredictionModel(
    DEFAULT_PACK,
    UltracapParams(),
    DEFAULT_COOLANT,
    default_battery_converter(BatteryPack(DEFAULT_PACK)),
    default_cap_converter(UltracapBank(UltracapParams())),
    CostWeights(),
)

N = 5
commands = st.tuples(
    st.lists(
        st.floats(min_value=-20_000.0, max_value=30_000.0), min_size=N, max_size=N
    ),
    st.lists(
        st.floats(min_value=288.15, max_value=315.0), min_size=N, max_size=N
    ),
    st.lists(
        st.floats(min_value=-10_000.0, max_value=60_000.0), min_size=N, max_size=N
    ),
)
initial = st.tuples(
    st.floats(min_value=290.0, max_value=312.0),   # T_b
    st.floats(min_value=40.0, max_value=95.0),     # SoC
    st.floats(min_value=30.0, max_value=95.0),     # SoE
)


@given(initial, commands)
@settings(max_examples=25)
def test_prediction_tracks_plant(init, cmds):
    tb0, soc0, soe0 = init
    cap_cmds, inlet_cmds, preview = cmds
    dt = 5.0

    pack = BatteryPack(
        DEFAULT_PACK, initial_soc_percent=soc0, initial_temp_k=tb0
    )
    bank = UltracapBank(UltracapParams(), initial_soe_percent=soe0)
    plant = HybridHEES(pack, bank)
    loop = CoolingLoop(DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k)

    pred = MODEL.rollout((tb0, tb0, soc0, soe0), cap_cmds, inlet_cmds, preview, dt)

    tc = tb0
    for k in range(N):
        inlet = loop.clamp_inlet(inlet_cmds[k], tc)
        p_cool = loop.cooler_power_w(inlet, tc) + DEFAULT_COOLANT.pump_power_w
        step = plant.step(preview[k] + p_cool, cap_cmds[k], dt)
        thermal = loop.step(pack.temp_k, tc, inlet, step.battery_heat_w, dt)
        pack.set_temperature(thermal.battery_temp_k)
        tc = thermal.coolant_temp_k

    # compare end-of-horizon states; small divergence is acceptable at the
    # clipping boundaries (the plant resolves them mid-step, the model
    # per-step) but no drift beyond fractions of the state scale
    assert pred.temps_k[-1] == pytest.approx(pack.temp_k, abs=0.25)
    assert pred.coolant_k[-1] == pytest.approx(tc, abs=0.25)
    assert pred.socs[-1] == pytest.approx(pack.soc_percent, abs=0.3)
    assert pred.soes[-1] == pytest.approx(bank.soe_percent, abs=2.5)
