"""Property-based tests for the cooling loop (Eq. 14-17)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.battery.pack import DEFAULT_PACK
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop

temps = st.floats(min_value=268.15, max_value=333.15)
heat = st.floats(min_value=0.0, max_value=10_000.0)
dt = st.floats(min_value=0.1, max_value=20.0)

LOOP = CoolingLoop(DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k)


class TestClampInvariants:
    @given(temps, temps)
    def test_clamped_inlet_never_heats(self, cmd, tc):
        assert LOOP.clamp_inlet(cmd, tc) <= tc + 1e-12  # constraint C2

    @given(temps, temps)
    def test_clamped_inlet_respects_power_ceiling(self, cmd, tc):
        inlet = LOOP.clamp_inlet(cmd, tc)
        assert (
            LOOP.cooler_power_w(inlet, tc)
            <= DEFAULT_COOLANT.max_cooler_power_w * (1 + 1e-9)
        )  # constraint C3


class TestStepInvariants:
    @given(temps, temps, temps, heat, dt)
    def test_temperatures_stay_finite_and_physical(self, tb, tc, inlet, q, step):
        r = LOOP.step(tb, tc, inlet, q, step, cooling_active=True)
        assert 200.0 < r.battery_temp_k < 400.0
        assert 200.0 < r.coolant_temp_k < 400.0

    @given(temps, heat, dt)
    def test_adiabatic_first_law(self, t0, q, step):
        """Sealed loop: stored energy change equals heat input exactly."""
        r = LOOP.step(t0, t0, t0, q, step, cooling_active=False)
        stored = (
            DEFAULT_PACK.heat_capacity_j_per_k * (r.battery_temp_k - t0)
            + DEFAULT_COOLANT.coolant_heat_capacity_j_per_k * (r.coolant_temp_k - t0)
        )
        assert stored == pytest.approx(q * step, rel=1e-9, abs=1e-6)

    @given(temps, temps, dt)
    def test_no_heat_no_cooling_drifts_to_common_temp(self, tb, tc, step):
        cur_b, cur_c = tb, tc
        for _ in range(2_000):
            r = LOOP.step(cur_b, cur_c, cur_c, 0.0, 10.0, cooling_active=False)
            cur_b, cur_c = r.battery_temp_k, r.coolant_temp_k
        assert cur_b == pytest.approx(cur_c, abs=0.01)

    @given(temps, heat, dt)
    def test_cooler_power_never_negative(self, t0, q, step):
        r = LOOP.step(t0 + 10.0, t0 + 10.0, t0, q, step, cooling_active=True)
        assert r.cooler_power_w >= 0.0

    @given(temps, heat)
    def test_colder_inlet_cools_more(self, t0, q):
        hot = max(t0, 300.0)
        mild = LOOP.step(hot, hot, hot - 2.0, q, 10.0, cooling_active=True)
        cold = LOOP.step(hot, hot, hot - 8.0, q, 10.0, cooling_active=True)
        assert cold.battery_temp_k <= mild.battery_temp_k + 1e-9
