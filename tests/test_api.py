"""Public-API surface tests: the names README/examples rely on must exist."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_names(self):
        # the exact imports the README shows
        from repro import Scenario, run_scenario  # noqa: F401


SUBPACKAGES = [
    "repro.core",
    "repro.battery",
    "repro.ultracap",
    "repro.hees",
    "repro.cooling",
    "repro.vehicle",
    "repro.drivecycle",
    "repro.controllers",
    "repro.sim",
    "repro.analysis",
    "repro.utils",
]


@pytest.mark.parametrize("module", SUBPACKAGES)
class TestSubpackages:
    def test_imports(self, module):
        importlib.import_module(module)

    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestDocstrings:
    @pytest.mark.parametrize("module", SUBPACKAGES + ["repro"])
    def test_package_docstring(self, module):
        assert importlib.import_module(module).__doc__

    def test_public_classes_documented(self):
        from repro.battery.pack import BatteryPack
        from repro.core.otem import OTEMController
        from repro.sim.engine import Simulator

        for cls in (BatteryPack, OTEMController, Simulator):
            assert cls.__doc__
            for name, member in vars(cls).items():
                if callable(member) and not name.startswith("_"):
                    assert member.__doc__, f"{cls.__name__}.{name} undocumented"
