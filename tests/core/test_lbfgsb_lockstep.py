"""The lockstep L-BFGS-B driver: bitwise parity with scipy's wrapper.

``minimize_lockstep`` replays scipy's own reverse-communication loop
around ``_lbfgsb.setulb`` for S problems at once, so each problem's
iterate sequence - and therefore its solution, cost, iteration count, and
evaluation count - must be *bitwise* what ``scipy.optimize.minimize``
produces for that problem alone.  Anything less would make the batched
MPC planner a different solver rather than a faster one.
"""

import numpy as np
import pytest
from scipy import optimize

from repro.core.lbfgsb_lockstep import (
    DriverResult,
    lockstep_available,
    minimize_lockstep,
)

NVAR = 6


def _objective(j):
    """Problem j: a shifted convex quartic with per-problem curvature."""

    center = 0.15 + 0.1 * j

    def f_and_g(x):
        d = x - center
        f = float(np.sum(d**4 + (0.5 + 0.1 * j) * d**2))
        g = 4.0 * d**3 + 2.0 * (0.5 + 0.1 * j) * d
        return f, g

    return f_and_g


def _batch_evaluate(X, idx):
    f = np.empty(X.shape[0])
    G = np.empty_like(X)
    for r in range(X.shape[0]):
        f[r], G[r] = _objective(int(idx[r]))(X[r])
    return f, G


def _reference(j, x0, maxfun):
    return optimize.minimize(
        _objective(j),
        x0,
        jac=True,
        method="L-BFGS-B",
        bounds=[(0.0, 1.0)] * NVAR,
        options={"maxfun": maxfun, "maxiter": 60, "ftol": 1e-12, "gtol": 1e-5},
    )


class TestBitwiseParity:
    def test_driver_is_available(self):
        """The probe must accept this scipy's setulb signature - otherwise
        every "lockstep" solve silently runs serial."""
        assert lockstep_available()

    def test_heterogeneous_problems_match_scipy(self):
        """7 problems, different objectives and starts, one shared loop."""
        rng = np.random.default_rng(7)
        x0s = rng.uniform(0.0, 1.0, size=(7, NVAR))
        results = minimize_lockstep(
            _batch_evaluate,
            x0s,
            np.zeros(NVAR),
            np.ones(NVAR),
            maxfun=120,
        )
        assert len(results) == 7
        for j, res in enumerate(results):
            ref = _reference(j, x0s[j], 120)
            assert isinstance(res, DriverResult)
            np.testing.assert_array_equal(res.x, np.asarray(ref.x))
            assert res.fun == float(ref.fun)
            assert res.nit == int(ref.nit)
            assert res.nfev == int(ref.nfev)
            assert res.converged == (ref.status == 0)

    def test_ragged_budgets(self):
        """Per-problem maxfun - the warm/cold race gives racers different
        budgets, and a starved problem must stop exactly where scipy's
        would."""
        rng = np.random.default_rng(3)
        x0s = rng.uniform(0.0, 1.0, size=(4, NVAR))
        budgets = [3, 10, 60, 120]
        results = minimize_lockstep(
            _batch_evaluate,
            x0s,
            np.zeros(NVAR),
            np.ones(NVAR),
            maxfun=budgets,
        )
        for j, (res, budget) in enumerate(zip(results, budgets)):
            ref = _reference(j, x0s[j], budget)
            np.testing.assert_array_equal(res.x, np.asarray(ref.x))
            assert res.fun == float(ref.fun)
            assert res.nfev == int(ref.nfev)
        # the starved problems genuinely hit their budget, not convergence
        assert not results[0].converged

    def test_out_of_bounds_start_clipped_like_scipy(self):
        x0 = np.array([[-0.5, 1.5, 0.3, 0.3, 0.3, 0.3]])
        (res,) = minimize_lockstep(
            _batch_evaluate,
            x0,
            np.zeros(NVAR),
            np.ones(NVAR),
            maxfun=80,
        )
        ref = _reference(0, x0[0], 80)
        np.testing.assert_array_equal(res.x, np.asarray(ref.x))
        assert res.fun == float(ref.fun)

    def test_budget_mismatch_rejected(self):
        with pytest.raises(ValueError, match="maxfun"):
            minimize_lockstep(
                _batch_evaluate,
                np.full((2, NVAR), 0.5),
                np.zeros(NVAR),
                np.ones(NVAR),
                maxfun=[10],
            )

    def test_1d_x0_rejected(self):
        with pytest.raises(ValueError, match="x0s"):
            minimize_lockstep(
                _batch_evaluate,
                np.full(NVAR, 0.5),
                np.zeros(NVAR),
                np.ones(NVAR),
                maxfun=10,
            )


class TestSerialFallback:
    def test_broken_driver_falls_back_and_still_matches(self, monkeypatch):
        """A setulb signature drift must degrade to per-problem scipy calls,
        not crash or change answers."""
        import repro.core.lbfgsb_lockstep as mod

        monkeypatch.setattr(mod, "_driver_ok", False)
        rng = np.random.default_rng(11)
        x0s = rng.uniform(0.0, 1.0, size=(3, NVAR))
        results = mod.minimize_lockstep(
            _batch_evaluate,
            x0s,
            np.zeros(NVAR),
            np.ones(NVAR),
            maxfun=100,
        )
        for j, res in enumerate(results):
            ref = _reference(j, x0s[j], 100)
            np.testing.assert_array_equal(res.x, np.asarray(ref.x))
            assert res.fun == float(ref.fun)
            assert res.nfev == int(ref.nfev)
