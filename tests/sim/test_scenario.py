"""Scenario wrapper tests."""

import pytest

from repro.controllers.base import Architecture
from repro.core.otem import OTEMController
from repro.sim.scenario import METHODOLOGIES, Scenario, build_controller, run_scenario


class TestScenario:
    def test_default_is_otem_us06(self):
        s = Scenario()
        assert s.methodology == "otem"
        assert s.cycle == "us06"

    def test_rejects_unknown_methodology(self):
        with pytest.raises(ValueError, match="unknown methodology"):
            Scenario(methodology="magic")

    def test_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            Scenario(repeat=0)

    def test_with_methodology(self):
        s = Scenario().with_methodology("dual")
        assert s.methodology == "dual"
        assert s.cycle == "us06"

    def test_with_ucap(self):
        s = Scenario().with_ucap(5_000.0)
        assert s.ucap_farads == 5_000.0

    def test_cap_params_resistance_scaled(self):
        small = Scenario(ucap_farads=5_000.0).cap_params()
        large = Scenario(ucap_farads=25_000.0).cap_params()
        assert small.internal_resistance_ohm > large.internal_resistance_ohm


class TestBuildController:
    @pytest.mark.parametrize(
        "name,arch",
        [
            ("parallel", Architecture.PARALLEL),
            ("cooling", Architecture.BATTERY_ONLY),
            ("dual", Architecture.DUAL),
            ("otem", Architecture.HYBRID),
            ("heuristic", Architecture.HYBRID),
        ],
    )
    def test_architecture_mapping(self, name, arch):
        controller = build_controller(Scenario(methodology=name))
        assert controller.architecture is arch

    def test_all_methodologies_buildable(self):
        for name in METHODOLOGIES:
            assert build_controller(Scenario(methodology=name)) is not None

    def test_otem_gets_scenario_bank(self):
        controller = build_controller(Scenario(methodology="otem", ucap_farads=5_000))
        assert isinstance(controller, OTEMController)
        assert controller._cap_params.capacitance_f == 5_000


class TestRunScenario:
    @pytest.mark.parametrize("name", ["parallel", "cooling", "dual", "heuristic"])
    def test_baselines_run(self, name):
        result = run_scenario(Scenario(methodology=name, cycle="nycc"))
        assert result.qloss_percent > 0
        assert result.metrics.duration_s > 500

    def test_otem_runs(self):
        result = run_scenario(
            Scenario(methodology="otem", cycle="nycc", mpc_max_evals=40)
        )
        assert result.controller_name == "OTEM"
        assert result.metrics.unmet_energy_j < 1e5


class TestJsonRoundTrip:
    def test_default_scenario_roundtrips(self):
        s = Scenario()
        assert Scenario.from_json(s.to_json()) == s

    def test_drive_cycle_refs_and_seeds_roundtrip(self):
        s = Scenario(
            methodology="dual",
            cycle="nycc",
            repeat=3,
            ucap_farads=5_000.0,
            initial_temp_k=305.0,
            rollout_backend="vectorized",
            perturb_seed=17,
        )
        back = Scenario.from_json(s.to_json())
        assert back == s
        assert back.cycle == "nycc" and back.perturb_seed == 17

    def test_nested_configs_roundtrip(self):
        import dataclasses as dc
        import json

        s = Scenario()
        doc = json.loads(s.to_json())
        # nested dataclasses serialize as plain objects...
        assert doc["pack"]["series"] == s.pack.series
        assert doc["weights"]["w1"] == s.weights.w1
        # ...and rebuild into the same frozen values
        back = Scenario.from_json(s.to_json())
        assert back.pack == s.pack and dc.asdict(back) == dc.asdict(s)

    def test_partial_dicts_keep_defaults(self):
        s = Scenario.from_dict({"cycle": "nycc", "pack": {"series": 48}})
        assert s.cycle == "nycc"
        assert s.pack.series == 48
        assert s.pack.parallel == Scenario().pack.parallel
        assert s.methodology == Scenario().methodology

    def test_unknown_fields_rejected_with_path(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            Scenario.from_dict({"warp": 9})
        with pytest.raises(ValueError, match="scenario.weights"):
            Scenario.from_dict({"weights": {"nope": 1.0}})
        with pytest.raises(ValueError, match="scenario.pack.cell"):
            Scenario.from_dict({"pack": {"cell": {"nope": 1.0}}})

    def test_nested_values_must_be_objects(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            Scenario.from_dict({"pack": "big"})

    def test_canonical_json_is_sorted_and_stable(self):
        import json

        a, b = Scenario().to_json(), Scenario().to_json()
        assert a == b
        assert list(json.loads(a)) == sorted(json.loads(a))

    def test_validation_still_applies(self):
        with pytest.raises(ValueError, match="unknown methodology"):
            Scenario.from_dict({"methodology": "magic"})
