#!/usr/bin/env python
"""Driving-range study: what each methodology costs in kilometres.

The paper's introduction motivates OTEM with driving range: wasted energy
(cooling overhead, conversion losses, resistive losses in a cold or hot
battery) is range the driver loses.  This example converts each
methodology's energy consumption into achievable range on a full charge.

Usage::

    python examples/range_study.py [cycle] [repeat]
"""

import sys

from repro import Scenario, run_scenario
from repro.analysis.figures import METHOD_LABELS
from repro.battery.pack import DEFAULT_PACK
from repro.drivecycle.library import get_cycle


def main():
    cycle_name = sys.argv[1] if len(sys.argv) > 1 else "us06"
    repeat = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    cycle = get_cycle(cycle_name, repeat=repeat)
    distance_km = cycle.distance_m() / 1000.0
    usable_kwh = 0.8 * DEFAULT_PACK.energy_kwh  # SoC window 20-100% (C4)

    print(
        f"Route: {cycle.name}, {distance_km:.1f} km; "
        f"usable battery energy {usable_kwh:.1f} kWh"
    )
    print(
        f"{'methodology':>14} {'kWh/100km':>10} {'range [km]':>11} "
        f"{'vs parallel':>12}"
    )

    ranges = {}
    for m in ("parallel", "cooling", "dual", "otem"):
        result = run_scenario(
            Scenario(methodology=m, cycle=cycle_name, repeat=repeat)
        )
        consumption = result.metrics.hees_energy_j / 3.6e6 / distance_km * 100.0
        ranges[m] = usable_kwh / consumption * 100.0
        delta = "" if m == "parallel" else (
            f"{ranges[m] - ranges['parallel']:+.1f} km"
        )
        print(
            f"{METHOD_LABELS[m]:>14} {consumption:>10.2f} "
            f"{ranges[m]:>11.1f} {delta:>12}"
        )

    print()
    print(
        "Managed methodologies trade range for battery lifetime; OTEM's "
        "optimization keeps that trade smaller than brute-force cooling "
        "(compare with examples/methodology_shootout.py for the lifetime side)."
    )


if __name__ == "__main__":
    main()
