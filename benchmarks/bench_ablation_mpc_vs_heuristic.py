"""Ablation - is the MPC actually needed?

Runs OTEM against :class:`HybridHeuristicController` - a sensible
peak-shaving + thermostat policy on *exactly the same plant* (hybrid HEES
+ active cooling).  Whatever OTEM wins here is attributable to the
optimization (preview, cost coupling, constraint handling), not to the
hardware.

Expected shape: OTEM ages the battery less than the heuristic at
comparable (or lower) energy cost.
"""

from benchmarks.conftest import REPEAT_THERMAL, run_once
from repro.controllers.heuristic import HybridHeuristicController
from repro.drivecycle.library import get_cycle
from repro.sim.engine import Simulator
from repro.sim.scenario import Scenario, run_scenario
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import Powertrain


def run_pair():
    request = Powertrain().power_request(get_cycle("us06", repeat=REPEAT_THERMAL))
    heuristic = Simulator(
        HybridHeuristicController(), cap_params=UltracapParams()
    ).run(request)
    otem = run_scenario(
        Scenario(methodology="otem", cycle="us06", repeat=REPEAT_THERMAL)
    )
    return {"heuristic": heuristic, "otem": otem}


def test_ablation_mpc_vs_heuristic(benchmark):
    results = run_once(benchmark, run_pair)

    print()
    print("Ablation - MPC vs heuristic on the same plant (US06 x%d)" % REPEAT_THERMAL)
    print(f"{'policy':>18} {'qloss [%]':>10} {'avg P [kW]':>11} "
          f"{'cool E [kWh]':>13} {'unsafe [s]':>11}")
    for name, result in results.items():
        m = result.metrics
        print(
            f"{name:>18} {m.qloss_percent:>10.4f} "
            f"{m.average_power_w / 1000:>11.2f} "
            f"{m.cooling_energy_j / 3.6e6:>13.2f} {m.time_above_safe_s:>11.0f}"
        )

    otem = results["otem"].metrics
    heuristic = results["heuristic"].metrics
    # the optimization must pay for itself on aging...
    assert otem.qloss_percent < heuristic.qloss_percent
    # ...without blowing the energy budget (within 10% of the heuristic)
    assert otem.average_power_w < heuristic.average_power_w * 1.10
