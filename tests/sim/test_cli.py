"""CLI tests (fast paths only; heavy commands run on the shortest cycle)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_methodology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-m", "magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.methodology == "otem"
        assert args.cycle == "us06"
        assert args.repeat == 1


class TestCycles:
    def test_lists_all_cycles(self):
        code, text = run_cli(["cycles"])
        assert code == 0
        for name in ("us06", "udds", "hwfet", "nycc", "la92"):
            assert name in text

    def test_has_stats_columns(self):
        _, text = run_cli(["cycles"])
        assert "dist [km]" in text
        assert "stops" in text


class TestRun:
    def test_run_baseline_on_short_cycle(self):
        code, text = run_cli(["run", "-m", "dual", "-c", "nycc"])
        assert code == 0
        assert "capacity loss" in text
        assert "Dual [16]" in text

    def test_run_reports_blt(self):
        _, text = run_cli(["run", "-m", "parallel", "-c", "nycc"])
        assert "routes to end-of-life" in text

    def test_initial_temperature_flag(self):
        code, text = run_cli(
            ["run", "-m", "parallel", "-c", "nycc", "--initial-temp-c", "35"]
        )
        assert code == 0
        assert "peak temp" in text


class TestBatch:
    def _argv(self, tmp_path):
        return [
            "batch",
            "-m",
            "parallel",
            "-m",
            "dual",
            "-c",
            "nycc",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]

    def test_batch_grid_runs(self, tmp_path):
        json_path = tmp_path / "batch.json"
        code, text = run_cli(self._argv(tmp_path) + ["--json", str(json_path)])
        assert code == 0
        assert "2 cells" in text
        assert "0 failure(s)" in text
        assert json_path.exists()

    def test_batch_rerun_hits_cache(self, tmp_path):
        run_cli(self._argv(tmp_path))
        code, text = run_cli(self._argv(tmp_path))
        assert code == 0
        assert "2 cache hit(s)" in text
        assert "cached" in text

    def test_batch_failure_sets_exit_code(self, tmp_path):
        code, text = run_cli(
            ["batch", "-m", "parallel", "-c", "no-such-cycle", "--no-cache"]
        )
        assert code == 1
        assert "FAILED" in text


class TestExport:
    def test_export_writes_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        code, text = run_cli(["export", "-m", "parallel", "-c", "nycc", str(path)])
        assert code == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert "battery_temp_k" in header
        assert "wrote" in text


class TestServiceCommands:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import SweepServer

        srv = SweepServer(tmp_path / "store", port=0, worker_threads=1).start()
        yield srv
        srv.shutdown()

    def test_parser_accepts_service_commands(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--quiet"])
        assert args.command == "serve" and args.port == 0
        args = parser.parse_args(["submit", "-m", "dual", "--wait", "--tag", "x"])
        assert args.command == "submit" and args.wait and args.tag == "x"
        args = parser.parse_args(
            ["query", "abc", "--rows", "--filter", "methodology=dual", "--json"]
        )
        assert args.filters == ["methodology=dual"] and args.as_json

    def test_submit_wait_and_query_roundtrip(self, server):
        argv = ["-m", "parallel", "-m", "dual", "-c", "nycc", "--url", server.url]
        code, text = run_cli(["submit"] + argv + ["--wait", "--tag", "smoke"])
        assert code == 0
        assert "submitted" in text
        assert "done: 2 row(s), 0 failed cell(s)" in text

        code, text = run_cli(["query", "--url", server.url])
        assert code == 0 and "smoke" in text and "done" in text
        sweep_id = text.splitlines()[1].split()[0]

        code, text = run_cli(["query", sweep_id, "--url", server.url])
        assert code == 0 and '"status": "done"' in text

        code, text = run_cli(
            ["query", sweep_id, "--rows", "--url", server.url,
             "--filter", "methodology=dual"]
        )
        assert code == 0
        assert "dual" in text and "parallel" not in text

    def test_submit_from_spec_file(self, server, tmp_path):
        from repro.service import SweepSpec
        from repro.sim.scenario import Scenario

        spec = SweepSpec(
            base=Scenario(cycle="nycc"), axes={"methodology": ["parallel"]}
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code, text = run_cli(
            ["submit", "--spec", str(path), "--url", server.url, "--wait"]
        )
        assert code == 0 and "1 cells" in text

    def test_bad_filter_is_usage_error(self, server):
        code, text = run_cli(
            ["query", "abc", "--rows", "--url", server.url, "--filter", "nope"]
        )
        assert code == 2 and "bad filter" in text

    def test_unreachable_service_fails_cleanly(self):
        code, text = run_cli(
            ["submit", "-m", "parallel", "-c", "nycc",
             "--url", "http://127.0.0.1:1"]
        )
        assert code == 1 and "submit failed" in text
