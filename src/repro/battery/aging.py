"""Battery capacity-loss (aging) model: paper Eq. 5.

    dQ_loss = l1 * exp(-l2 / (R_gas * T)) * |I|^l3   [% capacity / s]

Loss grows with temperature (Arrhenius) and super-linearly with current,
which is exactly the coupling OTEM exploits: shaving current peaks with the
ultracapacitor *and* keeping the cell cool both reduce Q_loss.

Battery-LifeTime (BLT) convention follows the paper's introduction: the pack
is end-of-life at 20% capacity loss, so BLT scales as ``20% / loss-rate``.
"""

from __future__ import annotations

import numpy as np

from repro.battery.params import CellParams, NCR18650A
from repro.utils.units import GAS_CONSTANT

#: Capacity-loss fraction at which the paper declares the battery useless.
END_OF_LIFE_LOSS_PERCENT = 20.0


class AgingModel:
    """Accumulates capacity loss per Eq. 5.

    The model is stateless apart from the accumulated loss; rates can also be
    evaluated standalone (the MPC cost term uses :meth:`loss_rate`).
    """

    def __init__(self, params: CellParams = NCR18650A):
        self._p = params
        self._loss_percent = 0.0

    @property
    def params(self) -> CellParams:
        """Cell parameters in use."""
        return self._p

    @property
    def loss_percent(self) -> float:
        """Accumulated capacity loss [% of rated capacity]."""
        return self._loss_percent

    def loss_rate(self, current_a, temp_k):
        """Instantaneous capacity-loss rate [%/s] (Eq. 5), vectorized.

        ``current_a`` is the per-cell current; magnitude is used since both
        charge and discharge throughput age the cell.
        """
        p = self._p
        current = np.abs(np.asarray(current_a, dtype=float))
        temp = np.asarray(temp_k, dtype=float)
        arrhenius = np.exp(-p.aging_activation_j_per_mol / (GAS_CONSTANT * temp))
        return p.aging_prefactor * arrhenius * current**p.aging_current_exp

    def step(self, current_a: float, temp_k: float, dt: float) -> float:
        """Accumulate one step of loss; returns the increment [%]."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        increment = float(self.loss_rate(current_a, temp_k)) * dt
        self._loss_percent += increment
        return increment

    def reset(self):
        """Zero the accumulated loss."""
        self._loss_percent = 0.0

    def lifetime_scale(self, reference_loss_percent: float) -> float:
        """BLT improvement factor vs a reference loss over the same usage.

        A methodology that accumulates half the loss of the reference over
        the same route doubles the battery lifetime, so the factor is
        ``reference / own``.
        """
        if reference_loss_percent <= 0:
            raise ValueError("reference loss must be positive")
        if self._loss_percent <= 0:
            return float("inf")
        return reference_loss_percent / self._loss_percent


def blt_equivalent_routes(loss_percent_per_route: float) -> float:
    """Number of identical routes until end-of-life (20% loss)."""
    if loss_percent_per_route <= 0:
        return float("inf")
    return END_OF_LIFE_LOSS_PERCENT / loss_percent_per_route
