"""Fig. 9 - average power-consumption comparison.

Paper: methodologies with active cooling consume more than the passive
ones, but OTEM consumes 12.1% less on average than the pure active-cooling
methodology because the HEES contributes.

Expected shape: parallel cheapest, cooling-only most expensive, OTEM in
between and strictly cheaper than cooling-only on the aggressive cycles.
"""

from benchmarks.conftest import REPEAT_SWEEP, run_once
from repro.analysis.figures import ALL_CYCLES, fig9_data
from repro.analysis.report import render_fig9


def test_fig9_power_comparison(benchmark):
    data = run_once(benchmark, fig9_data, cycles=ALL_CYCLES, repeat=REPEAT_SWEEP)
    print()
    print(render_fig9(data))

    for cycle in data.cycles:
        power = data.avg_power_w[cycle]
        # passive parallel is always the cheapest
        assert power["parallel"] == min(power.values()), f"parallel not cheapest on {cycle}"

    # on the thermally demanding cycles the brute-force cooler is the most
    # expensive methodology and OTEM undercuts it (the paper's 12.1% claim
    # lives here; on mild short routes the thermostat barely engages, so
    # the cooling baseline has no overhead for OTEM to save - documented
    # in EXPERIMENTS.md)
    for cycle in ("us06", "la92"):
        power = data.avg_power_w[cycle]
        assert power["cooling"] == max(power.values()), f"cooling not priciest on {cycle}"
        assert power["otem"] < power["cooling"], f"OTEM not cheaper than cooling on {cycle}"

    # paper-magnitude saving on the aggressive cycle (paper average: 12.1%)
    us06 = data.avg_power_w["us06"]
    assert us06["otem"] < 0.97 * us06["cooling"]
