"""Vehicle physical parameters.

The default preset targets a Tesla-Model-S-class sedan, the vehicle the paper
references for its battery pack (Section II-A).  Only aggregate longitudinal
parameters are needed by the backward model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class VehicleParams:
    """Aggregate longitudinal-dynamics parameters of the EV.

    Attributes
    ----------
    mass_kg:
        Curb mass plus payload [kg].
    drag_coefficient:
        Aerodynamic drag coefficient Cd [-].
    frontal_area_m2:
        Projected frontal area [m^2].
    rolling_coefficient:
        Rolling-resistance coefficient Crr [-].
    wheel_inertia_factor:
        Rotating-mass factor multiplying the inertial force (>= 1).
    air_density_kgm3:
        Ambient air density [kg/m^3].
    auxiliary_power_w:
        Constant hotel load drawn from the bus (electronics, 12 V systems,
        cabin baseline) [W].
    max_motor_power_w:
        Motor electrical power ceiling [W].
    max_regen_power_w:
        Regenerative braking power ceiling at the bus [W] (positive number).
    regen_fraction:
        Fraction of braking energy that is recoverable before the motor map
        (friction brakes take the rest) [-], in [0, 1].
    """

    mass_kg: float = 2100.0
    drag_coefficient: float = 0.24
    frontal_area_m2: float = 2.34
    rolling_coefficient: float = 0.009
    wheel_inertia_factor: float = 1.05
    air_density_kgm3: float = 1.2
    auxiliary_power_w: float = 500.0
    max_motor_power_w: float = 160_000.0
    max_regen_power_w: float = 60_000.0
    regen_fraction: float = 0.6

    def __post_init__(self):
        check_positive(self.mass_kg, "mass_kg")
        check_positive(self.drag_coefficient, "drag_coefficient")
        check_positive(self.frontal_area_m2, "frontal_area_m2")
        check_positive(self.rolling_coefficient, "rolling_coefficient")
        check_in_range(self.wheel_inertia_factor, 1.0, 2.0, "wheel_inertia_factor")
        check_positive(self.air_density_kgm3, "air_density_kgm3")
        check_in_range(self.auxiliary_power_w, 0.0, 20_000.0, "auxiliary_power_w")
        check_positive(self.max_motor_power_w, "max_motor_power_w")
        check_positive(self.max_regen_power_w, "max_regen_power_w")
        check_in_range(self.regen_fraction, 0.0, 1.0, "regen_fraction")

    def with_mass(self, mass_kg: float) -> "VehicleParams":
        """Return a copy with a different total mass (payload studies)."""
        return replace(self, mass_kg=mass_kg)


#: Default preset: Tesla-Model-S-class sedan (mass, Cd, frontal area per the
#: public spec sheet the paper cites [26]).
MODEL_S_LIKE = VehicleParams()
