"""MPC-ensemble throughput: lockstep OTEM batches vs serial scalar runs.

The tentpole measurement of the lockstep-MPC PR: a 32-scenario nycc
Monte-Carlo ensemble (traffic-perturbed routes, seeds 0..30 plus the
nominal cycle), all OTEM with the vectorized rollout backend, run

* as **one lockstep group** - every replan wave solves all still-active
  columns' horizon problems in a single batched L-BFGS-B driver
  (:class:`repro.core.mpc.MPCPlannerVec`), and
* as **serial scalar-engine runs** - the per-scenario reference the
  lockstep columns are equivalence-tested against.

Timing the full serial side at ensemble scale would dominate the CI
budget, so the serial cost is measured on a sample of the ensemble and
extrapolated linearly (per-scenario runs are independent; wall time is
additive).  Results land in ``BENCH_mpc_ensemble.json``; the acceptance
target is a >= 3x ensemble speedup, asserted strictly where CI controls
the machine (``REPRO_REQUIRE_SPEEDUP``).
"""

from __future__ import annotations

import dataclasses
import os
import time

from benchmarks.conftest import run_once
from repro.sim.engine_vec import run_lockstep_group
from repro.sim.scenario import Scenario, run_scenario

#: Ensemble size (the acceptance floor is 32 scenarios).
ENSEMBLE = 32

#: Serial reference sample (extrapolated to ENSEMBLE; runs are independent).
SERIAL_SAMPLE = 4

#: Solver shape: moderate horizon/budget so the bench stays in CI scale
#: while every scenario still replans ~20 times over the nycc route.
KNOBS = dict(
    methodology="otem",
    cycle="nycc",
    rollout_backend="vectorized",
    mpc_horizon=6,
    mpc_step_s=30.0,
    mpc_max_evals=40,
)


def _ensemble() -> list:
    """Seeds 0..30 plus the nominal route: one lockstep group of 32."""
    base = Scenario(**KNOBS)
    return [base] + [
        dataclasses.replace(base, perturb_seed=seed)
        for seed in range(ENSEMBLE - 1)
    ]


def test_mpc_ensemble_lockstep_speedup(benchmark):
    scenarios = _ensemble()

    # serial scalar-engine reference on a sample, extrapolated
    sample = scenarios[:SERIAL_SAMPLE]
    start = time.perf_counter()
    serial_results = [run_scenario(s) for s in sample]
    serial_sample_s = time.perf_counter() - start
    serial_per_scenario_s = serial_sample_s / SERIAL_SAMPLE
    serial_extrapolated_s = serial_per_scenario_s * ENSEMBLE

    start = time.perf_counter()
    lockstep_results = run_once(benchmark, run_lockstep_group, scenarios)
    lockstep_s = time.perf_counter() - start

    # the speedup is only meaningful if the columns are the same numbers:
    # sampled columns must match their serial references (identical solver
    # stats; metrics to the documented ulp budget)
    for lock, ref in zip(lockstep_results, serial_results):
        assert lock.solver == ref.solver
        assert abs(lock.metrics.qloss_percent - ref.metrics.qloss_percent) <= (
            1e-9 * abs(ref.metrics.qloss_percent)
        )

    speedup = serial_extrapolated_s / lockstep_s

    from repro.utils.perf import record_bench

    path = record_bench(
        "mpc_ensemble",
        {
            "ensemble": ENSEMBLE,
            "cycle": KNOBS["cycle"],
            "solver": {
                "horizon": KNOBS["mpc_horizon"],
                "step_s": KNOBS["mpc_step_s"],
                "max_function_evals": KNOBS["mpc_max_evals"],
                "rollout_backend": KNOBS["rollout_backend"],
            },
            "serial_sample": SERIAL_SAMPLE,
            "serial_sample_s": serial_sample_s,
            "serial_per_scenario_s": serial_per_scenario_s,
            "serial_extrapolated_s": serial_extrapolated_s,
            "lockstep_s": lockstep_s,
            "lockstep_per_scenario_s": lockstep_s / ENSEMBLE,
            "speedup": speedup,
            "cpu_count": os.cpu_count(),
            "solves_per_scenario": [
                r.solver.solves for r in lockstep_results[:SERIAL_SAMPLE]
            ],
        },
    )

    print()
    print(
        f"otem ensemble ({ENSEMBLE} x {KNOBS['cycle']}): "
        f"serial {serial_extrapolated_s:.1f} s (extrapolated from "
        f"{SERIAL_SAMPLE}), lockstep {lockstep_s:.1f} s "
        f"-> {speedup:.2f}x -> {path}"
    )

    # acceptance: >= 3x; the unconditional floor leaves margin for noisy
    # shared runners, the strict gate runs where CI controls the machine
    assert speedup >= 2.0
    if os.environ.get("REPRO_REQUIRE_SPEEDUP"):
        assert speedup >= 3.0
