"""Per-step time-series recording.

The recorder accumulates python floats during the run (cheap appends) and
freezes into a :class:`Trace` of read-only numpy arrays afterwards, which is
what the figure generators and tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

#: Names of the recorded channels, in recording order.
CHANNELS = (
    "time_s",
    "request_w",
    "delivered_w",
    "battery_power_w",
    "cap_power_w",
    "cooling_power_w",
    "battery_soc_percent",
    "cap_soe_percent",
    "battery_temp_k",
    "coolant_temp_k",
    "inlet_temp_k",
    "heat_w",
    "cell_current_a",
    "chem_energy_j",
    "cap_energy_j",
    "converter_loss_j",
    "loss_increment_percent",
    "unmet_w",
)


@dataclass(frozen=True)
class Trace:
    """Frozen per-step time series of one simulation run.

    Every attribute is a read-only 1-D numpy array of equal length; energies
    and loss increments are per-step amounts, powers are step averages, and
    states are the values at the *end* of the step.
    """

    time_s: np.ndarray
    request_w: np.ndarray
    delivered_w: np.ndarray
    battery_power_w: np.ndarray
    cap_power_w: np.ndarray
    cooling_power_w: np.ndarray
    battery_soc_percent: np.ndarray
    cap_soe_percent: np.ndarray
    battery_temp_k: np.ndarray
    coolant_temp_k: np.ndarray
    inlet_temp_k: np.ndarray
    heat_w: np.ndarray
    cell_current_a: np.ndarray
    chem_energy_j: np.ndarray
    cap_energy_j: np.ndarray
    converter_loss_j: np.ndarray
    loss_increment_percent: np.ndarray
    unmet_w: np.ndarray

    def __post_init__(self):
        n = self.time_s.size
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.size != n:
                raise ValueError(f"channel {f.name} has {arr.size} samples, expected {n}")
            arr.setflags(write=False)

    def __len__(self) -> int:
        return self.time_s.size

    @property
    def dt(self) -> float:
        """Sample period [s] (uniform)."""
        if len(self) < 2:
            return 1.0
        return float(self.time_s[1] - self.time_s[0])

    def channel(self, name: str) -> np.ndarray:
        """Look a channel up by name."""
        if name not in CHANNELS:
            raise KeyError(f"unknown channel {name!r}; available: {', '.join(CHANNELS)}")
        return getattr(self, name)


class TraceRecorder:
    """Append-per-step accumulator that freezes into a :class:`Trace`."""

    def __init__(self):
        self._data = {name: [] for name in CHANNELS}

    def record(self, **values: float):
        """Append one step; every channel must be present exactly once."""
        if set(values) != set(CHANNELS):
            missing = set(CHANNELS) - set(values)
            extra = set(values) - set(CHANNELS)
            raise ValueError(f"bad record: missing={sorted(missing)} extra={sorted(extra)}")
        for name, value in values.items():
            self._data[name].append(float(value))

    def __len__(self) -> int:
        return len(self._data["time_s"])

    def freeze(self) -> Trace:
        """Convert the accumulated lists into a frozen :class:`Trace`."""
        return Trace(**{name: np.asarray(vals, dtype=float) for name, vals in self._data.items()})
