"""Text rendering of the regenerated tables and figures.

The benchmarks print these so a run of ``pytest benchmarks/`` leaves the
same rows/series the paper reports in the captured output.
"""

from __future__ import annotations

from repro.analysis.figures import (
    Fig1Data,
    MethodologyComparison,
    METHOD_LABELS,
)
from repro.analysis.tables import Table1Data
from repro.utils.units import kelvin_to_celsius


def render_fig1(data: Fig1Data) -> str:
    """Fig. 1 as a text summary: peak temperature and violation per size."""
    lines = [
        "Fig. 1 - Battery temperature, dual architecture (thermal case study)",
        f"safe limit: {kelvin_to_celsius(data.safe_limit_k):.1f} C",
        f"{'size [F]':>10} {'peak T [C]':>12} {'time above limit [s]':>22}",
    ]
    for size, temps, violation in zip(data.sizes_f, data.temps_k, data.violation_s):
        lines.append(
            f"{size:>10.0f} {float(kelvin_to_celsius(temps.max())):>12.1f} {violation:>22.0f}"
        )
    return "\n".join(lines)


def render_fig8(data: MethodologyComparison) -> str:
    """Fig. 8 as a text table: capacity-loss ratio vs parallel, per cycle."""
    methods = data.methodologies
    header = f"{'cycle':>8} " + " ".join(f"{METHOD_LABELS[m]:>14}" for m in methods)
    lines = [
        "Fig. 8 - Battery capacity loss relative to the parallel baseline [%]",
        header,
    ]
    for cycle in data.cycles:
        row = data.qloss_ratio_vs_parallel[cycle]
        lines.append(
            f"{cycle:>8} " + " ".join(f"{100.0 * row[m]:>14.1f}" for m in methods)
        )
    if "otem" in methods:
        lines.append(
            f"OTEM mean capacity-loss reduction vs parallel: "
            f"{data.mean_qloss_reduction_vs_parallel('otem'):.1f}% "
            f"(paper: 16.38% across cycles, 57% on US06/Table I)"
        )
    return "\n".join(lines)


def render_fig9(data: MethodologyComparison) -> str:
    """Fig. 9 as a text table: average power per cycle and methodology."""
    methods = data.methodologies
    header = f"{'cycle':>8} " + " ".join(f"{METHOD_LABELS[m]:>14}" for m in methods)
    lines = ["Fig. 9 - Average power consumption [W]", header]
    for cycle in data.cycles:
        row = data.avg_power_w[cycle]
        lines.append(
            f"{cycle:>8} " + " ".join(f"{row[m]:>14.0f}" for m in methods)
        )
    if "otem" in methods and "cooling" in methods:
        lines.append(
            f"OTEM mean power reduction vs cooling-only: "
            f"{data.mean_power_reduction_vs('otem', 'cooling'):.1f}% (paper: 12.1%)"
        )
    return "\n".join(lines)


def render_table1(data: Table1Data) -> str:
    """Table I in the paper's layout."""
    methods = ("parallel", "dual", "otem")
    lines = [
        f"Table I - Ultracapacitor size analysis ({data.cycle.upper()} x{data.repeat})",
        f"{'size [F]':>10} | "
        + " ".join(f"P({m})[W]".rjust(13) for m in methods)
        + " | "
        + " ".join(f"Q({m})[%]".rjust(13) for m in methods),
    ]
    for row in data.rows:
        lines.append(
            f"{row.size_f:>10.0f} | "
            + " ".join(f"{row.avg_power_w[m]:>13.0f}" for m in methods)
            + " | "
            + " ".join(f"{row.capacity_loss_pct[m]:>13.2f}" for m in methods)
        )
    return "\n".join(lines)
