"""Shared fixtures for the test suite.

Simulation fixtures use deliberately short workloads (one cycle or a
truncated trace) so the whole suite stays fast; the paper-shape regression
tests in ``tests/integration`` use the smallest repeats that still exhibit
the orderings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.battery.pack import BatteryPack, PackConfig
from repro.drivecycle.library import get_cycle
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import Powertrain, PowerRequest

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    derandomize=True,  # CI determinism: same examples every run
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def us06():
    """The US06 drive cycle (session-cached)."""
    return get_cycle("us06")


@pytest.fixture(scope="session")
def us06_request(us06):
    """Power request for one US06 (session-cached)."""
    return Powertrain().power_request(us06)


@pytest.fixture(scope="session")
def short_request(us06_request):
    """A 120-second slice of the US06 power request (fast sims)."""
    return PowerRequest(
        cycle_name="us06-short",
        dt=us06_request.dt,
        power_w=us06_request.power_w[:121].copy(),
    )


@pytest.fixture()
def pack():
    """A fresh default battery pack."""
    return BatteryPack()


@pytest.fixture()
def small_pack():
    """A small pack for fast stress tests."""
    return BatteryPack(PackConfig(series=4, parallel=2))


@pytest.fixture()
def bank():
    """A fresh default (25,000 F) ultracapacitor bank."""
    return UltracapBank(UltracapParams())


@pytest.fixture()
def small_bank():
    """A 5,000 F bank (the paper's smallest size)."""
    from repro.ultracap.params import bank_of_farads

    return UltracapBank(bank_of_farads(5_000))


def assert_energy_close(a: float, b: float, rel: float = 1e-6, abs_tol: float = 1e-3):
    """Energy-bookkeeping assertion with sensible defaults."""
    assert a == pytest.approx(b, rel=rel, abs=abs_tol)


@pytest.fixture(scope="session")
def constant_request():
    """A flat 20 kW request for 60 s (analytic expectations)."""
    return PowerRequest(cycle_name="flat", dt=1.0, power_w=np.full(61, 20_000.0))
