"""Standard drive cycles for EV simulation.

The paper evaluates on official EPA drive cycles (US06, UDDS, HWFET, NYCC,
LA92) fed to ADVISOR.  This environment has no network access to the official
data files, so :mod:`repro.drivecycle.library` reconstructs each cycle as a
deterministic segment program whose duration, distance, speed envelope and
stop structure match the published statistics of the real cycle (see
DESIGN.md, substitution table).

Public API
----------
``DriveCycle``
    Immutable (time, speed) trace with resampling, statistics and repetition.
``get_cycle(name, repeat=1)``
    Look up a named cycle ("us06", "udds", ...).
``available_cycles()``
    Names of all built-in cycles.
``SegmentSpec`` / ``synthesize``
    The synthesis engine used by the library (also usable for custom cycles).
``perturbed`` / ``ensemble``
    Deterministic traffic-variation variants for robustness studies.
"""

from repro.drivecycle.cycle import CycleStats, DriveCycle
from repro.drivecycle.synth import SegmentSpec, synthesize
from repro.drivecycle.library import available_cycles, get_cycle
from repro.drivecycle.perturb import ensemble, perturbed

__all__ = [
    "CycleStats",
    "DriveCycle",
    "SegmentSpec",
    "synthesize",
    "available_cycles",
    "get_cycle",
    "ensemble",
    "perturbed",
]
