"""Batched-kernel equivalence: `BatchPredictionModel` vs the scalar rollout.

The vectorized kernel is a performance backend, not a second model: every
cost and every state trajectory it produces must match the scalar
reference `PredictionModel._rollout` to numerical round-off (the ISSUE
budget is 1e-9; the kernel actually agrees to ~1e-14 because both paths
evaluate the same arithmetic).  The hypothesis suite drives randomized
states, commands, horizons, and batch sizes; the directed tests pin the
guard branches (SoE floor, C6 charge headroom) that random draws may
visit only rarely.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.core.cost import CostWeights
from repro.core.rollout import PredictionModel
from repro.core.rollout_vec import BatchPredictionModel, BatchRolloutResult
from repro.hees.hybrid import default_battery_converter, default_cap_converter
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams

SCALAR = PredictionModel(
    DEFAULT_PACK,
    UltracapParams(),
    DEFAULT_COOLANT,
    default_battery_converter(BatteryPack(DEFAULT_PACK)),
    default_cap_converter(UltracapBank(UltracapParams())),
    CostWeights(),
)
BATCH = BatchPredictionModel.from_scalar(SCALAR)

REL_TOL = 1e-9  # the acceptance budget; observed agreement is ~1e-14


def _finite(lo, hi):
    return st.floats(min_value=lo, max_value=hi, allow_nan=False)


@st.composite
def rollout_case(draw):
    """A random (state, cap (M,N), inlet (M,N), preview (N,), dt) case.

    Spans both guard regimes: SoE down to 2 % (the floor clamps stored
    energy at 1 %) and previews up to ~95 % of the pack rating (where a
    charging cap command hits the C6 headroom guard).
    """
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=1, max_value=5))
    state = (
        draw(_finite(290.0, 313.0)),  # T_b
        draw(_finite(289.0, 313.0)),  # T_c
        draw(_finite(25.0, 95.0)),    # SoC
        draw(_finite(2.0, 100.0)),    # SoE
    )
    cap = draw(
        st.lists(
            st.lists(_finite(-60_000.0, 60_000.0), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    inlet = draw(
        st.lists(
            st.lists(_finite(288.15, 315.0), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    preview = draw(
        st.lists(_finite(-10_000.0, SCALAR.pack_pmax * 0.95), min_size=n, max_size=n)
    )
    dt = draw(_finite(1.0, 30.0))
    return state, np.array(cap), np.array(inlet), np.array(preview), dt


@given(rollout_case())
@settings(max_examples=40)
def test_costs_match_scalar(case):
    state, cap, inlet, preview, dt = case
    costs = BATCH.rollout_costs(state, cap, inlet, preview, dt)
    assert costs.shape == (cap.shape[0],)
    for i in range(cap.shape[0]):
        ref = SCALAR.rollout_cost(state, cap[i], inlet[i], preview, dt)
        assert math.isclose(costs[i], ref, rel_tol=REL_TOL, abs_tol=1e-6)


@given(rollout_case())
@settings(max_examples=25)
def test_trajectories_match_scalar(case):
    state, cap, inlet, preview, dt = case
    batch = BATCH.rollout_batch(state, cap, inlet, preview, dt)
    assert isinstance(batch, BatchRolloutResult)
    for i in range(cap.shape[0]):
        ref = SCALAR.rollout(state, cap[i], inlet[i], preview, dt)
        np.testing.assert_allclose(batch.temps_k[i], ref.temps_k, rtol=REL_TOL)
        np.testing.assert_allclose(batch.coolant_k[i], ref.coolant_k, rtol=REL_TOL)
        np.testing.assert_allclose(
            batch.socs[i], ref.socs, rtol=REL_TOL, atol=REL_TOL
        )
        np.testing.assert_allclose(
            batch.soes[i], ref.soes, rtol=REL_TOL, atol=REL_TOL
        )
        for name in ("cost", "objective", "penalty", "terminal",
                     "cooling_j", "qloss_percent", "hees_j"):
            got = float(getattr(batch, name)[i])
            want = float(getattr(ref, name))
            assert math.isclose(got, want, rel_tol=REL_TOL, abs_tol=1e-9), name


class TestGuardBranches:
    """Directed coverage of the clamped branches."""

    def test_soe_floor_guard(self):
        """Deep discharge from a nearly-empty bank hits the 1 % floor."""
        state = (300.0, 299.0, 80.0, 2.0)
        n = 6
        cap = np.full((1, n), 40_000.0)  # discharge far beyond what's stored
        inlet = np.full((1, n), 320.0)
        preview = np.full(n, 45_000.0)
        batch = BATCH.rollout_batch(state, cap, inlet, preview, 5.0)
        ref = SCALAR.rollout(state, cap[0], inlet[0], preview, 5.0)
        # the guard engaged: stored energy pinned at its floor, not negative
        assert min(ref.soes) >= 0.99
        np.testing.assert_allclose(batch.soes[0], ref.soes, rtol=REL_TOL)
        assert math.isclose(
            float(batch.cost[0]), ref.cost, rel_tol=REL_TOL
        )

    def test_c6_charge_headroom_guard(self):
        """Charging the cap under a near-limit load must not starve it."""
        state = (298.0, 298.0, 90.0, 50.0)
        n = 4
        heavy = SCALAR.pack_pmax * 0.95
        cap = np.full((1, n), -60_000.0)  # aggressive charge command
        inlet = np.full((1, n), 320.0)
        preview = np.full(n, heavy)
        batch = BATCH.rollout_batch(state, cap, inlet, preview, 5.0)
        ref = SCALAR.rollout(state, cap[0], inlet[0], preview, 5.0)
        # the guard curtailed the charge: SoE cannot rise much
        assert ref.soes[-1] < 55.0
        np.testing.assert_allclose(batch.soes[0], ref.soes, rtol=REL_TOL)
        assert math.isclose(
            float(batch.cost[0]), ref.cost, rel_tol=REL_TOL
        )

    def test_mixed_batch_spans_both_guards(self):
        """One kernel call whose rows exercise different branches."""
        state = (305.0, 304.0, 70.0, 3.0)
        n = 5
        cap = np.array(
            [
                [35_000.0] * n,   # deep discharge -> SoE floor
                [-50_000.0] * n,  # charge under load -> C6 headroom
                [0.0] * n,        # neutral
            ]
        )
        inlet = np.array([[320.0] * n, [295.0] * n, [288.15] * n])
        preview = np.full(n, SCALAR.pack_pmax * 0.9)
        costs = BATCH.rollout_costs(state, cap, inlet, preview, 5.0)
        for i in range(3):
            ref = SCALAR.rollout_cost(state, cap[i], inlet[i], preview, 5.0)
            assert math.isclose(costs[i], ref, rel_tol=REL_TOL)


class TestStackedKernel:
    """`rollout_costs_stacked`: per-row states/previews/bank energies.

    The stacked entry point exists so :class:`repro.core.mpc.MPCPlannerVec`
    can evaluate many scenarios' candidates in one kernel call.  Stacking
    must be free: every row's cost is *bitwise* the cost the per-scenario
    batched call produces (all operations are elementwise over rows), and
    therefore within the 1e-9 budget of the scalar reference.
    """

    N = 6
    DT = 5.0

    def _rows(self):
        states = np.array(
            [
                (300.0, 299.0, 80.0, 70.0),
                (308.0, 306.0, 60.0, 15.0),
                (294.0, 295.0, 90.0, 40.0),
            ]
        )
        previews = np.array(
            [
                [15_000.0] * self.N,
                [45_000.0] * self.N,
                [-5_000.0] * self.N,
            ]
        )
        cap = np.array(
            [[8_000.0] * self.N, [35_000.0] * self.N, [-20_000.0] * self.N]
        )
        inlet = np.array(
            [[292.0] * self.N, [315.0] * self.N, [288.15] * self.N]
        )
        return states, previews, cap, inlet

    def test_rows_match_per_scenario_batched_calls_bitwise(self):
        states, previews, cap, inlet = self._rows()
        stacked = BATCH.rollout_costs_stacked(
            states, cap, inlet, previews, self.DT
        )
        assert stacked.shape == (3,)
        for i in range(3):
            (ref,) = BATCH.rollout_costs(
                tuple(states[i]), cap[i : i + 1], inlet[i : i + 1],
                previews[i], self.DT,
            )
            assert stacked[i] == ref, i  # bitwise

    def test_rows_match_scalar_reference(self):
        states, previews, cap, inlet = self._rows()
        stacked = BATCH.rollout_costs_stacked(
            states, cap, inlet, previews, self.DT
        )
        for i in range(3):
            ref = SCALAR.rollout_cost(
                tuple(states[i]), cap[i], inlet[i], previews[i], self.DT
            )
            assert math.isclose(stacked[i], ref, rel_tol=REL_TOL), i

    def test_per_row_bank_energy(self):
        """Rows may come from scenarios with different ultracap sizes."""
        small = UltracapParams(capacitance_f=5_000.0)
        scalar_small = PredictionModel(
            DEFAULT_PACK,
            small,
            DEFAULT_COOLANT,
            default_battery_converter(BatteryPack(DEFAULT_PACK)),
            default_cap_converter(UltracapBank(small)),
            CostWeights(),
        )
        states, previews, cap, inlet = self._rows()
        ecap = np.array(
            [SCALAR.ecap, scalar_small.ecap, SCALAR.ecap]
        )
        stacked = BATCH.rollout_costs_stacked(
            states, cap, inlet, previews, self.DT, ecap=ecap
        )
        refs = [SCALAR, scalar_small, SCALAR]
        for i in range(3):
            ref = refs[i].rollout_cost(
                tuple(states[i]), cap[i], inlet[i], previews[i], self.DT
            )
            assert math.isclose(stacked[i], ref, rel_tol=REL_TOL), i
        # the bank size actually matters for the discharging rows
        uniform = BATCH.rollout_costs_stacked(
            states, cap, inlet, previews, self.DT
        )
        assert stacked[1] != uniform[1]


class TestBatchInterface:
    def test_from_scalar_shares_parameters(self):
        vec = BatchPredictionModel.from_scalar(SCALAR)
        assert vec.pack_pmax == SCALAR.pack_pmax
        assert vec.cap_pmax == SCALAR.cap_pmax

    def test_from_scalar_is_idempotent(self):
        assert BatchPredictionModel.from_scalar(BATCH) is BATCH

    def test_single_row_matches_fast_path(self):
        state = (305.0, 303.0, 80.0, 70.0)
        cap = [[5_000.0] * 6]
        inlet = [[295.0] * 6]
        preview = [15_000.0] * 6
        costs = BATCH.rollout_costs(state, cap, inlet, preview, 5.0)
        ref = SCALAR.rollout_cost(state, cap[0], inlet[0], preview, 5.0)
        assert costs.shape == (1,)
        assert costs[0] == pytest.approx(ref, rel=1e-12)

    def test_detailed_cost_equals_fast_cost(self):
        state = (308.0, 306.0, 75.0, 60.0)
        cap = np.array([[8_000.0] * 5, [-4_000.0] * 5])
        inlet = np.array([[292.0] * 5, [310.0] * 5])
        preview = np.full(5, 20_000.0)
        fast = BATCH.rollout_costs(state, cap, inlet, preview, 5.0)
        detailed = BATCH.rollout_batch(state, cap, inlet, preview, 5.0)
        np.testing.assert_allclose(fast, detailed.cost, rtol=1e-12)
