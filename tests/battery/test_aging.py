"""Capacity-loss model tests (Eq. 5)."""

import numpy as np
import pytest

from repro.battery.aging import (
    END_OF_LIFE_LOSS_PERCENT,
    AgingModel,
    blt_equivalent_routes,
)


@pytest.fixture()
def aging():
    return AgingModel()


class TestLossRate:
    def test_zero_current_zero_rate(self, aging):
        assert aging.loss_rate(0.0, 298.15) == pytest.approx(0.0)

    def test_positive_for_discharge(self, aging):
        assert aging.loss_rate(2.0, 298.15) > 0

    def test_charge_ages_too(self, aging):
        assert aging.loss_rate(-2.0, 298.15) == pytest.approx(
            float(aging.loss_rate(2.0, 298.15))
        )

    def test_arrhenius_temperature_sensitivity(self, aging):
        cold = float(aging.loss_rate(2.0, 298.15))
        hot = float(aging.loss_rate(2.0, 308.15))
        # Ea = 60 kJ/mol -> ~2.2x per 10 K at room temperature
        assert 1.8 <= hot / cold <= 2.6

    def test_superlinear_in_current(self, aging):
        r1 = float(aging.loss_rate(1.0, 298.15))
        r2 = float(aging.loss_rate(2.0, 298.15))
        assert r2 > 2.0 * r1

    def test_current_exponent(self, aging):
        r1 = float(aging.loss_rate(1.0, 298.15))
        r4 = float(aging.loss_rate(4.0, 298.15))
        assert r4 / r1 == pytest.approx(4.0 ** aging.params.aging_current_exp, rel=1e-9)

    def test_vectorized(self, aging):
        out = aging.loss_rate(np.array([1.0, 2.0]), np.array([298.15, 298.15]))
        assert out.shape == (2,)


class TestAccumulation:
    def test_step_accumulates(self, aging):
        inc = aging.step(2.0, 308.15, 10.0)
        assert inc > 0
        assert aging.loss_percent == pytest.approx(inc)

    def test_two_steps_add(self, aging):
        a = aging.step(2.0, 308.15, 10.0)
        b = aging.step(2.0, 308.15, 10.0)
        assert aging.loss_percent == pytest.approx(a + b)

    def test_reset(self, aging):
        aging.step(2.0, 308.15, 10.0)
        aging.reset()
        assert aging.loss_percent == 0.0

    def test_rejects_nonpositive_dt(self, aging):
        with pytest.raises(ValueError):
            aging.step(2.0, 308.15, 0.0)

    def test_step_scales_linearly_with_dt(self):
        a = AgingModel()
        b = AgingModel()
        a.step(2.0, 308.15, 10.0)
        for _ in range(10):
            b.step(2.0, 308.15, 1.0)
        assert a.loss_percent == pytest.approx(b.loss_percent)


class TestLifetime:
    def test_lifetime_scale(self, aging):
        aging.step(2.0, 308.15, 100.0)
        assert aging.lifetime_scale(2 * aging.loss_percent) == pytest.approx(2.0)

    def test_lifetime_scale_rejects_bad_reference(self, aging):
        with pytest.raises(ValueError):
            aging.lifetime_scale(0.0)

    def test_fresh_model_has_infinite_scale(self, aging):
        assert aging.lifetime_scale(1.0) == float("inf")

    def test_blt_routes(self):
        assert blt_equivalent_routes(0.1) == pytest.approx(
            END_OF_LIFE_LOSS_PERCENT / 0.1
        )

    def test_blt_routes_zero_loss(self):
        assert blt_equivalent_routes(0.0) == float("inf")
