"""The batch runner: parallel == serial, caching, crash isolation."""

import dataclasses
import pickle

import pytest

from repro.sim.batch import (
    BatchCell,
    CellPayload,
    ResultCache,
    run_batch,
    scenario_fingerprint,
    scenario_grid,
)
from repro.sim.scenario import Scenario

#: A small grid of fast (baseline-only) scenarios on the shortest cycle.
GRID = scenario_grid(
    Scenario(cycle="nycc"),
    methodology=("parallel", "dual"),
    ucap_farads=(5_000.0, 25_000.0),
)


class TestScenarioGrid:
    def test_cross_product_last_axis_fastest(self):
        combos = [(s.methodology, s.ucap_farads) for s in GRID]
        assert combos == [
            ("parallel", 5_000.0),
            ("parallel", 25_000.0),
            ("dual", 5_000.0),
            ("dual", 25_000.0),
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            scenario_grid(Scenario(), ucap_farads=())


class TestFingerprint:
    def test_stable_for_equal_scenarios(self):
        assert scenario_fingerprint(Scenario()) == scenario_fingerprint(Scenario())

    def test_sensitive_to_every_swept_knob(self):
        base = Scenario()
        for change in (
            {"methodology": "dual"},
            {"cycle": "nycc"},
            {"repeat": 2},
            {"ucap_farads": 5_000.0},
            {"initial_temp_k": 310.0},
            {"mpc_max_evals": 10},
            {"rollout_backend": "vectorized"},
            {"perturb_seed": 1},
        ):
            varied = dataclasses.replace(base, **change)
            assert scenario_fingerprint(varied) != scenario_fingerprint(base), change

    def test_sensitive_to_nested_params(self):
        from repro.core.cost import CostWeights

        varied = dataclasses.replace(Scenario(), weights=CostWeights(w1=123.0))
        assert scenario_fingerprint(varied) != scenario_fingerprint(Scenario())


class TestSerialRun:
    def test_matches_run_scenario(self):
        from repro.sim.scenario import run_scenario

        batch = run_batch(GRID[:1])
        assert batch.ok
        assert batch.cells[0].metrics == run_scenario(GRID[0]).metrics

    def test_deterministic_ordering_and_rows(self):
        batch = run_batch(GRID)
        assert [c.index for c in batch.cells] == [0, 1, 2, 3]
        assert [c.scenario for c in batch.cells] == GRID
        rows = batch.rows()
        assert [r["methodology"] for r in rows] == ["parallel"] * 2 + ["dual"] * 2
        assert all(r["qloss_percent"] > 0 for r in rows)

    def test_progress_callback(self):
        seen = []
        run_batch(GRID[:2], on_cell=seen.append)
        assert [c.index for c in seen] == [0, 1]
        assert all(isinstance(c, BatchCell) for c in seen)


class TestParallelRun:
    def test_parallel_equals_serial_bitwise(self):
        serial = run_batch(GRID, workers=0, execution="scalar")
        parallel = run_batch(GRID, workers=2, execution="scalar")
        # a single-CPU host degrades the pool to serial (same cell runner)
        assert parallel.ok
        assert parallel.methodology in ("process-pool", "serial-fallback")
        if parallel.methodology == "process-pool":
            assert parallel.workers == 2
        # SummaryMetrics is a frozen dataclass of floats: == is bitwise
        assert [c.metrics for c in parallel.cells] == [
            c.metrics for c in serial.cells
        ]
        assert [c.index for c in parallel.cells] == [c.index for c in serial.cells]

    def test_worker_crash_isolated_to_its_cell(self):
        bad = dataclasses.replace(GRID[1], cycle="no-such-cycle")
        batch = run_batch([GRID[0], bad, GRID[2]], workers=2)
        assert not batch.ok
        assert [c.ok for c in batch.cells] == [True, False, True]
        assert "no-such-cycle" in batch.cells[1].error
        assert batch.cells[1].metrics is None
        assert batch.failures == (batch.cells[1],)
        with pytest.raises(RuntimeError, match="1 of 3"):
            batch.raise_on_failure()

    def test_serial_path_isolates_crashes_too(self):
        bad = dataclasses.replace(GRID[0], cycle="no-such-cycle")
        batch = run_batch([bad, GRID[3]], workers=0)
        assert [c.ok for c in batch.cells] == [False, True]


class TestCache:
    def test_second_run_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_batch(GRID, cache=cache)
        assert first.cache_hits == 0 and first.cache_misses == len(GRID)
        second = run_batch(GRID, cache=cache)
        assert second.cache_hits == len(GRID) and second.cache_misses == 0
        assert all(c.cached for c in second.cells)
        assert [c.metrics for c in second.cells] == [c.metrics for c in first.cells]

    def test_parameter_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(GRID[:1], cache=cache)
        varied = [dataclasses.replace(GRID[0], initial_temp_k=305.0)]
        rerun = run_batch(varied, cache=cache)
        assert rerun.cache_hits == 0 and rerun.cache_misses == 1

    def test_cache_dir_shorthand(self, tmp_path):
        d = tmp_path / "store"
        run_batch(GRID[:1], cache_dir=d)
        assert list(d.glob("*.pkl"))
        hit = run_batch(GRID[:1], cache_dir=d)
        assert hit.cache_hits == 1

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = [dataclasses.replace(GRID[0], cycle="no-such-cycle")]
        run_batch(bad, cache=cache)
        rerun = run_batch(bad, cache=cache)
        assert rerun.cache_hits == 0
        assert not rerun.ok

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(GRID[:1], cache=cache)
        for f in tmp_path.glob("*.pkl"):
            f.write_bytes(b"not a pickle")
        rerun = run_batch(GRID[:1], cache=cache)
        assert rerun.ok and rerun.cache_hits == 0

    def test_payload_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        batch = run_batch(GRID[:1], cache=cache)
        key = scenario_fingerprint(GRID[0])
        payload = cache.get(key)
        assert isinstance(payload, CellPayload)
        assert payload.metrics == batch.cells[0].metrics
        assert pickle.loads(pickle.dumps(payload)) == payload


class TestSerialFallback:
    """Parallel requests degrade to in-process serial on single-CPU hosts
    (pool spawn overhead produced the sub-1.0 "parallel speedup" recorded
    in BENCH_batch.json)."""

    def test_single_cpu_degrades(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        batch = run_batch(GRID[:2], workers=4, execution="scalar")
        assert batch.ok
        assert batch.methodology == "serial-fallback"
        assert batch.workers == 1
        assert batch.bench_payload()["methodology"] == "serial-fallback"

    def test_unknown_cpu_count_degrades(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: None)
        batch = run_batch(GRID[:1], workers=2)
        assert batch.methodology == "serial-fallback"

    def test_multi_cpu_keeps_pool(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        batch = run_batch(GRID[:1], workers=2)
        assert batch.ok
        assert batch.methodology == "process-pool"
        assert batch.workers == 2

    def test_serial_request_stays_serial(self):
        batch = run_batch(GRID[:1], workers=0)
        assert batch.methodology == "serial"

    def test_fallback_matches_serial_bitwise(self, monkeypatch):
        serial = run_batch(GRID[:2], workers=0)
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        fallback = run_batch(GRID[:2], workers=4)
        assert [c.metrics for c in fallback.cells] == [
            c.metrics for c in serial.cells
        ]


class TestSolverStatsPlumbing:
    def test_otem_cell_carries_solver_stats(self):
        scenario = Scenario(
            methodology="otem",
            cycle="nycc",
            mpc_horizon=4,
            mpc_step_s=30.0,
            mpc_max_evals=10,
        )
        batch = run_batch([scenario])
        cell = batch.cells[0]
        assert cell.ok
        assert cell.solver is not None and cell.solver.solves > 0
        assert cell.solver.total_iterations >= cell.solver.solves
        row = batch.rows()[0]
        assert row["solver_solves"] == cell.solver.solves
        assert row["solver_backend"] == "scalar"
        assert isinstance(row["solver_last_cost"], float)

    def test_vectorized_cell_records_backend(self):
        scenario = Scenario(
            methodology="otem",
            cycle="nycc",
            mpc_horizon=4,
            mpc_step_s=30.0,
            mpc_max_evals=10,
            rollout_backend="vectorized",
        )
        batch = run_batch([scenario])
        assert batch.cells[0].ok
        row = batch.rows()[0]
        assert row["solver_backend"] == "vectorized"
        assert row["rollout_backend"] == "vectorized"

    def test_baseline_cell_has_no_solver_stats(self):
        batch = run_batch(GRID[:1])
        assert batch.cells[0].solver is None
        assert "solver_solves" not in batch.rows()[0]

    def test_nan_last_cost_serializes_as_null(self):
        """A controller that never replanned leaves last_cost at its NaN
        sentinel; the row must carry None (JSON null), never bare NaN."""
        import json
        import math

        from repro.core.mpc import SolverStats
        from repro.sim.batch import BatchResult

        stats = SolverStats(solves=0, total_iterations=0, last_cost=float("nan"))
        assert math.isnan(stats.last_cost)
        cell = BatchCell(index=0, scenario=GRID[0], solver=stats)
        result = BatchResult(cells=(cell,), wall_s=0.0, workers=0)
        row = result.rows()[0]
        assert row["solver_last_cost"] is None
        # strict consumers reject NaN tokens; the payload must survive
        json.dumps(result.bench_payload(), allow_nan=False)

    def test_pre_schema_2_stats_default_to_scalar_backend(self):
        """Old cache pickles predate SolverStats.backend."""
        from repro.core.mpc import SolverStats
        from repro.sim.batch import BatchResult

        stats = SolverStats(solves=1, total_iterations=3, last_cost=1.0)
        object.__delattr__(stats, "backend")
        cell = BatchCell(index=0, scenario=GRID[0], solver=stats)
        row = BatchResult(cells=(cell,), wall_s=0.0, workers=0).rows()[0]
        assert row["solver_backend"] == "scalar"


class TestLockstepRouting:
    """Engine selection: auto grouping, forced modes, and the fallback."""

    def test_auto_routes_architecture_groups_to_lockstep(self):
        batch = run_batch(GRID)  # parallel x2 + dual x2: two groups of two
        assert batch.ok
        assert batch.methodology == "lockstep"
        assert [c.engine_backend for c in batch.cells] == ["lockstep"] * 4

    def test_auto_keeps_singletons_scalar(self):
        grid = [GRID[0], GRID[1], Scenario(methodology="cooling", cycle="nycc")]
        batch = run_batch(grid)
        assert batch.ok
        assert batch.methodology == "lockstep+serial"
        assert [c.engine_backend for c in batch.cells] == [
            "lockstep",
            "lockstep",
            "scalar",
        ]

    def test_scalar_backend_mpc_cells_stay_scalar(self):
        """Routing a scalar-backend OTEM cell through lockstep would
        silently switch its solver backend, so even forced lockstep
        leaves it on the scalar engine."""
        otem = Scenario(
            methodology="otem",
            cycle="nycc",
            mpc_horizon=4,
            mpc_step_s=30.0,
            mpc_max_evals=10,
        )
        batch = run_batch([GRID[0], GRID[1], otem], execution="lockstep")
        assert batch.ok
        assert batch.methodology == "lockstep+serial"
        assert batch.cells[2].engine_backend == "scalar"
        assert batch.cells[2].solver is not None

    def test_forced_lockstep_takes_singletons_too(self):
        batch = run_batch([GRID[0]], execution="lockstep")
        assert batch.ok
        assert batch.methodology == "lockstep"
        assert batch.cells[0].engine_backend == "lockstep"

    def test_forced_scalar_is_legacy_behavior(self):
        batch = run_batch(GRID, execution="scalar")
        assert batch.ok
        assert batch.methodology == "serial"
        assert [c.engine_backend for c in batch.cells] == ["scalar"] * 4

    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError, match="execution mode"):
            run_batch(GRID[:1], execution="warp")

    def test_lockstep_matches_scalar_within_ulp_tolerance(self):
        """Cross-engine agreement at the documented 1e-9 relative bound
        (see tests/sim/test_engine_vec.py for the exact/ulp split)."""
        lockstep = run_batch(GRID, execution="lockstep")
        scalar = run_batch(GRID, execution="scalar")
        for a, b in zip(lockstep.cells, scalar.cells):
            for field in dataclasses.fields(a.metrics):
                x = getattr(a.metrics, field.name)
                y = getattr(b.metrics, field.name)
                assert x == pytest.approx(y, rel=1e-9, abs=1e-12), field.name

    def test_group_failure_reroutes_cells_to_scalar(self):
        """A broken cell poisons its whole lockstep group; every member is
        re-run on the crash-isolated scalar path instead."""
        bad = dataclasses.replace(GRID[1], cycle="no-such-cycle")
        batch = run_batch([GRID[0], bad])
        assert [c.ok for c in batch.cells] == [True, False]
        assert "no-such-cycle" in batch.cells[1].error
        assert batch.cells[0].engine_backend == "scalar"
        assert batch.methodology == "serial"  # nothing stayed on lockstep


#: A fast lockstep-eligible OTEM scenario (vectorized backend, tiny solver).
OTEM_VEC = Scenario(
    methodology="otem",
    cycle="nycc",
    rollout_backend="vectorized",
    mpc_horizon=4,
    mpc_step_s=30.0,
    mpc_max_evals=10,
)


class TestMPCLockstepRouting:
    """OTEM ensembles on the lockstep engine (vectorized backend only)."""

    def test_auto_routes_mpc_groups_to_lockstep(self):
        grid = [
            OTEM_VEC,
            dataclasses.replace(OTEM_VEC, ucap_farads=5_000.0),
        ]
        batch = run_batch(grid)  # execution="auto"
        assert batch.ok
        assert batch.methodology == "lockstep"
        assert [c.engine_backend for c in batch.cells] == ["lockstep"] * 2
        assert all(c.solver is not None and c.solver.solves > 0 for c in batch.cells)

    def test_auto_keeps_mpc_singletons_scalar(self):
        batch = run_batch([OTEM_VEC])
        assert batch.ok
        assert batch.cells[0].engine_backend == "scalar"

    def test_solver_shape_splits_groups(self):
        """Two OTEM cells with different horizons cannot share a replan
        wave; each becomes a singleton and stays scalar under auto."""
        grid = [OTEM_VEC, dataclasses.replace(OTEM_VEC, mpc_horizon=5)]
        batch = run_batch(grid)
        assert batch.ok
        assert [c.engine_backend for c in batch.cells] == ["scalar"] * 2

    def test_rows_surface_winner_attribution(self):
        grid = [OTEM_VEC, dataclasses.replace(OTEM_VEC, perturb_seed=1)]
        batch = run_batch(grid)
        for row, cell in zip(batch.rows(), batch.cells):
            assert row["solver_backend"] == "vectorized"
            wins = (
                row["solver_wins_warm"]
                + row["solver_wins_neutral"]
                + row["solver_wins_full_cool"]
            )
            assert wins == cell.solver.solves > 0

    def test_mpc_group_failure_reroutes_mixed_grid(self, monkeypatch):
        """A failing lockstep MPC group re-routes every member to the
        crash-isolated scalar path while baseline groups stay lockstep."""
        import repro.sim.batch as batch_mod

        real = batch_mod.run_lockstep

        def explode_on_otem(scenarios):
            if any(s.methodology == "otem" for s in scenarios):
                raise RuntimeError("solver wave diverged")
            return real(scenarios)

        monkeypatch.setattr(batch_mod, "run_lockstep", explode_on_otem)
        grid = [
            GRID[0],
            OTEM_VEC,
            GRID[1],
            dataclasses.replace(OTEM_VEC, ucap_farads=5_000.0),
        ]
        batch = run_batch(grid)
        assert batch.ok  # every cell recovered on the scalar path
        assert [c.engine_backend for c in batch.cells] == [
            "lockstep",
            "scalar",
            "lockstep",
            "scalar",
        ]
        assert batch.methodology == "lockstep+serial"
        assert all(
            c.solver is not None
            for c in batch.cells
            if c.scenario.methodology == "otem"
        )

    def test_old_solver_pickles_default_to_zero_wins(self):
        """Pre-schema-4 SolverStats lack the wins_* fields."""
        from repro.core.mpc import SolverStats
        from repro.sim.batch import BatchResult

        stats = SolverStats(solves=2, total_iterations=5, last_cost=1.0)
        for field in ("wins_warm", "wins_neutral", "wins_full_cool"):
            object.__delattr__(stats, field)
        cell = BatchCell(index=0, scenario=GRID[0], solver=stats)
        row = BatchResult(cells=(cell,), wall_s=0.0, workers=0).rows()[0]
        assert row["solver_wins_warm"] == 0
        assert row["solver_wins_neutral"] == 0
        assert row["solver_wins_full_cool"] == 0


class TestEngineBackendCache:
    """CACHE_SCHEMA 3: the engine backend is part of the cache key."""

    def test_fingerprint_separates_backends(self):
        s = GRID[0]
        assert scenario_fingerprint(s, engine_backend="scalar") != (
            scenario_fingerprint(s, engine_backend="lockstep")
        )
        # default is the scalar backend (pre-lockstep keys' semantics)
        assert scenario_fingerprint(s) == scenario_fingerprint(
            s, engine_backend="scalar"
        )

    def test_backend_switch_never_serves_stale_rows(self, tmp_path):
        """Same grid, different engine: a cache hit across backends would
        silently blur which engine produced a number."""
        cache = ResultCache(tmp_path)
        first = run_batch(GRID, cache=cache)  # auto: all lockstep
        assert first.cache_misses == len(GRID)
        rerun = run_batch(GRID, cache=cache)
        assert rerun.cache_hits == len(GRID)
        assert all(c.engine_backend == "lockstep" for c in rerun.cells)
        forced = run_batch(GRID, cache=cache, execution="scalar")
        assert forced.cache_hits == 0 and forced.cache_misses == len(GRID)
        assert all(c.engine_backend == "scalar" for c in forced.cells)

    def test_schema_bump_invalidates_old_entries(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_batch(GRID[:1], cache=cache)
        monkeypatch.setattr("repro.sim.batch.CACHE_SCHEMA", 2)
        stale = run_batch(GRID[:1], cache=cache)
        assert stale.cache_hits == 0 and stale.cache_misses == 1

    def test_rows_carry_engine_backend(self):
        rows = run_batch(GRID).rows()
        assert [r["engine_backend"] for r in rows] == ["lockstep"] * 4

    def test_pre_schema_3_payloads_default_to_scalar(self, tmp_path):
        """Old cache pickles predate CellPayload.engine_backend."""
        cache = ResultCache(tmp_path)
        run_batch(GRID[:1], cache=cache, execution="scalar")
        key = scenario_fingerprint(GRID[0])
        payload = cache.get(key)
        object.__delattr__(payload, "engine_backend")
        cache.put(key, payload)
        served = run_batch(GRID[:1], cache=cache, execution="scalar")
        assert served.cache_hits == 1
        assert served.cells[0].engine_backend == "scalar"

    def test_lockstep_cells_share_group_wall_time(self):
        batch = run_batch(GRID[:2])  # one lockstep group of two
        walls = [c.wall_s for c in batch.cells]
        assert walls[0] == walls[1] > 0.0


class TestBenchPayload:
    def test_shape(self):
        payload = run_batch(GRID[:2], workers=0, execution="scalar").bench_payload()
        assert payload["cells"] == 2
        assert payload["failures"] == 0
        assert payload["methodology"] == "serial"
        assert payload["cache"] == {"hits": 0, "misses": 0}
        assert len(payload["rows"]) == 2
        assert all(r["rollout_backend"] == "scalar" for r in payload["rows"])
        import json

        json.dumps(payload, allow_nan=False)  # strict-JSON-serializable as-is


class TestProgressCallback:
    def test_on_cell_done_fires_per_cell_on_scalar_path(self):
        seen = []
        run_batch(GRID, workers=0, execution="scalar", on_cell_done=seen.append)
        assert [c.index for c in seen] == [0, 1, 2, 3]
        assert all(isinstance(c, BatchCell) and c.ok for c in seen)

    def test_on_cell_done_fires_per_cell_on_lockstep_path(self):
        seen = []
        batch = run_batch(GRID, execution="lockstep", on_cell_done=seen.append)
        assert batch.methodology == "lockstep"
        assert sorted(c.index for c in seen) == [0, 1, 2, 3]
        assert all(c.engine_backend == "lockstep" for c in seen)

    def test_on_cell_done_fires_on_pool_path(self):
        seen = []
        batch = run_batch(GRID, workers=2, execution="scalar", on_cell_done=seen.append)
        assert batch.ok
        assert sorted(c.index for c in seen) == [0, 1, 2, 3]

    def test_on_cell_is_an_alias(self):
        via_alias, via_canonical = [], []
        run_batch(GRID[:2], on_cell=via_alias.append)
        run_batch(GRID[:2], on_cell_done=via_canonical.append)
        assert [c.index for c in via_alias] == [c.index for c in via_canonical]

    def test_alias_and_canonical_together_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            run_batch(GRID[:1], on_cell=print, on_cell_done=print)

    def test_failed_cells_still_reported(self):
        bad = dataclasses.replace(GRID[0], cycle="no-such-cycle")
        seen = []
        run_batch([bad, GRID[1]], workers=0, on_cell_done=seen.append)
        assert [c.ok for c in sorted(seen, key=lambda c: c.index)] == [False, True]


class TestCancellation:
    def test_cancel_before_start_skips_every_cell(self):
        batch = run_batch(GRID, execution="scalar", cancel=lambda: True)
        assert not batch.ok
        assert all("cancelled" in c.error for c in batch.cells)
        assert all(c.metrics is None for c in batch.cells)

    def test_cancel_mid_run_keeps_finished_cells_scalar(self):
        done = []

        def cancel_after_two():
            return len(done) >= 2

        batch = run_batch(
            GRID,
            workers=0,
            execution="scalar",
            on_cell_done=done.append,
            cancel=cancel_after_two,
        )
        oks = [c.ok for c in batch.cells]
        assert oks == [True, True, False, False]
        assert all("cancelled" in c.error for c in batch.cells[2:])

    def test_cancel_mid_run_keeps_finished_groups_lockstep(self):
        # GRID forms two lockstep groups of two (one per methodology);
        # cancelling after the first group leaves its cells intact
        done = []

        def cancel_after_first_group():
            return len(done) >= 2

        batch = run_batch(
            GRID,
            execution="lockstep",
            on_cell_done=done.append,
            cancel=cancel_after_first_group,
        )
        assert sum(c.ok for c in batch.cells) == 2
        skipped = [c for c in batch.cells if not c.ok]
        assert len(skipped) == 2
        assert all("cancelled" in c.error for c in skipped)

    def test_cancelled_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch(GRID, cache=cache, execution="scalar", cancel=lambda: True)
        rerun = run_batch(GRID, cache=cache, execution="scalar")
        assert rerun.cache_hits == 0 and rerun.ok
