"""Multi-node pack thermal model (the spatial detail of the paper's Fig. 5).

The paper lump-models the pack ("since the battery cells are small, we can
simplify the heat exchange model... without affecting the concept"), and so
does the simulation engine.  This module resolves the simplification: the
pack is split into ``nodes`` segments along the coolant path; the coolant
enters segment 1 at the commanded inlet temperature and reaches each later
segment pre-warmed by the ones before it, so downstream cells run hotter -
the hot-spot effect a lumped model cannot see.

Discretization mirrors :class:`repro.cooling.loop.CoolingLoop` (trapezoidal
per Eq. 17) applied per segment, with the flow term chaining segment
coolant temperatures.  With ``nodes=1`` the model reduces exactly to the
lumped loop (validated by tests/cooling/test_multinode.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MultiNodeState:
    """Temperatures of all segments after one step.

    Attributes
    ----------
    battery_temps_k:
        Cell-segment temperatures, upstream first [K].
    coolant_temps_k:
        In-segment coolant temperatures, upstream first [K].
    inlet_temp_k:
        Applied (clamped) inlet temperature [K].
    cooler_power_w / pump_power_w:
        Electrical cost of the step [W].
    """

    battery_temps_k: np.ndarray
    coolant_temps_k: np.ndarray
    inlet_temp_k: float
    cooler_power_w: float
    pump_power_w: float

    @property
    def mean_battery_temp_k(self) -> float:
        """Pack-average temperature (what the lumped model tracks) [K]."""
        return float(np.mean(self.battery_temps_k))

    @property
    def max_battery_temp_k(self) -> float:
        """Hot-spot temperature (the true safety quantity) [K]."""
        return float(np.max(self.battery_temps_k))

    @property
    def gradient_k(self) -> float:
        """Spread between the hottest and coolest segment [K]."""
        return float(np.max(self.battery_temps_k) - np.min(self.battery_temps_k))


class MultiNodeCoolingLoop:
    """Segmented battery/coolant thermal dynamics.

    Parameters
    ----------
    params:
        Loop physical parameters (shared with the lumped model).
    pack_heat_capacity_j_per_k:
        Total pack heat capacity; split evenly across segments.
    nodes:
        Number of segments along the coolant path (>= 1).
    """

    def __init__(
        self,
        params: CoolantParams = DEFAULT_COOLANT,
        pack_heat_capacity_j_per_k: float = 118_080.0,
        nodes: int = 4,
    ):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self._p = params
        self._cb_total = check_positive(
            pack_heat_capacity_j_per_k, "pack_heat_capacity_j_per_k"
        )
        self._m = nodes

    @property
    def nodes(self) -> int:
        """Number of segments."""
        return self._m

    @property
    def params(self) -> CoolantParams:
        """Loop parameters in use."""
        return self._p

    def initial_state(self, temp_k: float) -> MultiNodeState:
        """Uniform-temperature starting state."""
        return MultiNodeState(
            battery_temps_k=np.full(self._m, float(temp_k)),
            coolant_temps_k=np.full(self._m, float(temp_k)),
            inlet_temp_k=float(temp_k),
            cooler_power_w=0.0,
            pump_power_w=0.0,
        )

    def clamp_inlet(self, inlet_temp_k: float, outlet_temp_k: float) -> float:
        """Apply C2 (no heating) and C3 (cooler power ceiling)."""
        p = self._p
        coldest = max(
            p.min_inlet_temp_k, outlet_temp_k - p.max_inlet_drop_k(outlet_temp_k)
        )
        return min(max(inlet_temp_k, coldest), outlet_temp_k)

    def step(
        self,
        state: MultiNodeState,
        inlet_temp_k: float,
        pack_heat_w: float,
        dt: float,
        cooling_active: bool = True,
    ) -> MultiNodeState:
        """Advance all segments one step of ``dt`` seconds.

        Heat is distributed evenly across segments (uniform current in a
        series pack); the coolant chain is solved segment-by-segment in
        flow order, each segment's outlet becoming the next one's inlet.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self._p
        m = self._m
        h = p.h_battery_coolant_w_per_k / m
        cb = self._cb_total / m
        cc = p.coolant_heat_capacity_j_per_k / m
        q = pack_heat_w / m

        # the stream leaves the pack at (approximately) the last segment's
        # coolant temperature; the cooler prices against that outlet
        outlet = float(state.coolant_temps_k[-1])
        if cooling_active:
            inlet = self.clamp_inlet(inlet_temp_k, outlet)
            wc = p.flow_capacity_rate_w_per_k
            pump = p.pump_power_w
            cooler = wc * max(0.0, outlet - inlet) / p.cooler_efficiency
        else:
            inlet = outlet
            wc = 0.0
            pump = 0.0
            cooler = 0.0

        new_tb = np.empty(m)
        new_tc = np.empty(m)
        upstream = inlet
        for i in range(m):
            tb = float(state.battery_temps_k[i])
            tc = float(state.coolant_temps_k[i])
            # trapezoidal 2x2 solve, as in the lumped loop, with the flow
            # term fed by the upstream segment's (new) coolant temperature
            a11 = cb / dt + h / 2.0
            a12 = -h / 2.0
            b1 = cb / dt * tb - h / 2.0 * (tb - tc) + q
            a21 = -h / 2.0
            a22 = cc / dt + h / 2.0 + wc / 2.0
            b2 = cc / dt * tc + h / 2.0 * (tb - tc) + wc * upstream - wc / 2.0 * tc
            det = a11 * a22 - a12 * a21
            new_tb[i] = (b1 * a22 - a12 * b2) / det
            new_tc[i] = (a11 * b2 - a21 * b1) / det
            upstream = new_tc[i]

        return MultiNodeState(
            battery_temps_k=new_tb,
            coolant_temps_k=new_tc,
            inlet_temp_k=inlet,
            cooler_power_w=cooler,
            pump_power_w=pump,
        )
