"""Coolant-parameter tests."""

import pytest

from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams


class TestDefaults:
    def test_cooler_can_hold_steady_heat(self):
        # max extraction (eta * P_max) must exceed the pack's sustained
        # heat generation (~3 kW on aggressive cycles)
        p = DEFAULT_COOLANT
        assert p.cooler_efficiency * p.max_cooler_power_w > 3_000.0

    def test_min_inlet_is_cool(self):
        assert DEFAULT_COOLANT.min_inlet_temp_k < 290.0

    def test_pump_power_modest(self):
        assert DEFAULT_COOLANT.pump_power_w <= 200.0


class TestValidation:
    def test_rejects_zero_heat_transfer(self):
        with pytest.raises(ValueError):
            CoolantParams(h_battery_coolant_w_per_k=0.0)

    def test_rejects_zero_efficiency(self):
        with pytest.raises(ValueError):
            CoolantParams(cooler_efficiency=0.0)

    def test_rejects_negative_pump(self):
        with pytest.raises(ValueError):
            CoolantParams(pump_power_w=-1.0)

    def test_rejects_negative_passive_h(self):
        with pytest.raises(ValueError):
            CoolantParams(passive_h_w_per_k=-1.0)


class TestMaxInletDrop:
    def test_formula(self):
        p = DEFAULT_COOLANT
        expected = p.cooler_efficiency * p.max_cooler_power_w / p.flow_capacity_rate_w_per_k
        assert p.max_inlet_drop_k(310.0) == pytest.approx(expected)

    def test_independent_of_outlet_for_fixed_limits(self):
        p = DEFAULT_COOLANT
        assert p.max_inlet_drop_k(300.0) == p.max_inlet_drop_k(320.0)
