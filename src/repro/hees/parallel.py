"""Parallel HEES architecture (paper Eq. 10-13, baseline [15]).

Battery pack and ultracapacitor bank are hard-wired to the load bus; the
circuit alone decides the split:

    P_l = V_l I_l ,  I_l = I_b + I_c ,
    V_l = V_b - R_b I_b = V_c - R_c I_c .

Eliminating the currents gives a quadratic in the load voltage

    G V_l^2 - S V_l + P_l = 0,   G = 1/R_b + 1/R_c,  S = V_b/R_b + V_c/R_c,

whose larger root is the physical operating point (V_l -> weighted OCV as
P_l -> 0).

For a direct parallel connection the bank must live at pack voltage, so the
module-rated bank is re-arranged ("re-strung") into an energy-equivalent
high-voltage configuration: the rated voltage becomes the pack's full
open-circuit voltage and capacitance scales by the inverse voltage-ratio
squared (energy capacity is invariant).  The bank's SoE then tracks
``(V_c / V_r_eff)^2`` and naturally rides the battery voltage.
"""

from __future__ import annotations

import numpy as np

from repro.battery.pack import BatteryPack, BatteryPackVec
from repro.hees.state import HEESStepBatch, HEESStepResult
from repro.ultracap.bank import UltracapBank, UltracapBankVec
from repro.utils.validation import check_positive


def restrung_resistance_ohm(pack: BatteryPack, bank: UltracapBank) -> float:
    """Series resistance of the bank re-strung to pack voltage [Ohm].

    Re-arranging a module of capacitance C and resistance R to a voltage
    ``k`` times higher (same cells, same energy) scales the resistance by
    ``k^2``; at fixed module voltage, resistance scales inversely with
    capacitance (fewer parallel strings).  This is what makes small banks
    nearly useless as passive buffers (paper Table I, parallel column).
    """
    full_voc_cell = float(pack.electrical.open_circuit_voltage(100.0))
    vr_eff = pack.config.series * full_voc_cell
    k = vr_eff / bank.params.rated_voltage_v
    return bank.params.internal_resistance_ohm * k * k


class ParallelHEES:
    """Passive parallel battery + ultracapacitor storage.

    Parameters
    ----------
    pack:
        Battery pack.
    bank:
        Ultracapacitor bank (module-rated; re-strung internally).
    cap_resistance_ohm:
        Series resistance of the re-strung high-voltage bank [Ohm]; by
        default derived physically from the module rating via
        :func:`restrung_resistance_ohm`.  It sets how aggressively the
        capacitor takes load transients.
    """

    def __init__(
        self,
        pack: BatteryPack,
        bank: UltracapBank,
        cap_resistance_ohm: float | None = None,
    ):
        self._pack = pack
        self._bank = bank
        if cap_resistance_ohm is None:
            cap_resistance_ohm = restrung_resistance_ohm(pack, bank)
        self._rc = check_positive(cap_resistance_ohm, "cap_resistance_ohm")
        # re-strung rating: full-pack open-circuit voltage
        full_voc_cell = float(pack.electrical.open_circuit_voltage(100.0))
        self._vr_eff = pack.config.series * full_voc_cell
        self.sync_soe_to_battery()

    @property
    def pack(self) -> BatteryPack:
        """The battery pack."""
        return self._pack

    @property
    def bank(self) -> UltracapBank:
        """The ultracapacitor bank."""
        return self._bank

    @property
    def effective_rated_voltage_v(self) -> float:
        """Re-strung bank rated voltage [V] (= full pack OCV)."""
        return self._vr_eff

    def cap_voltage(self) -> float:
        """Bank voltage in the re-strung configuration [V]."""
        return self._vr_eff * float(np.sqrt(max(self._bank.soe_percent, 0.0) / 100.0))

    def sync_soe_to_battery(self):
        """Pre-charge the bank to the battery's open-circuit voltage.

        A parallel-connected capacitor settles at the battery OCV; start
        every route from that equilibrium.
        """
        voc = self._pack.open_circuit_voltage()
        soe = 100.0 * (voc / self._vr_eff) ** 2
        self._bank.reset(min(100.0, soe))

    def step(self, request_w: float, dt: float) -> HEESStepResult:
        """Advance one step: split ``request_w`` per the circuit equations."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank

        v_b = pack.open_circuit_voltage()
        r_b = pack.internal_resistance()
        v_c = self.cap_voltage()
        r_c = self._rc

        g = 1.0 / r_b + 1.0 / r_c
        s = v_b / r_b + v_c / r_c
        disc = s * s - 4.0 * g * request_w
        if disc < 0.0:
            # demand beyond the combined maximum power point: operate there
            v_l = s / (2.0 * g)
        else:
            v_l = (s + np.sqrt(disc)) / (2.0 * g)

        i_b = (v_b - v_l) / r_b
        i_c = (v_c - v_l) / r_c

        # battery step at its realized terminal power (the pack re-derives
        # the same current and enforces its own limits)
        bat = pack.apply_power(i_b * v_l, dt)

        # if the pack clipped, the capacitor covers the residual at the
        # (approximate) same load voltage
        if bat.clipped:
            residual = request_w - bat.terminal_power_w
            i_c = residual / v_l if v_l > 1e-6 else 0.0

        # energy leaves the capacitor store at OCV x current (Eq. 9);
        # the bank enforces C5/C7 and may clip, so re-derive the current
        # actually flowing in the re-strung (high-voltage) configuration
        cap = bank.apply_power(v_c * i_c, dt)
        i_c_real = cap.power_w / v_c if v_c > 1e-6 else 0.0
        realized_cap_bus = cap.power_w - (i_c_real**2) * r_c

        delivered = bat.terminal_power_w + realized_cap_bus
        unmet = max(0.0, request_w - delivered) if request_w > 0 else 0.0
        circuit_loss = (i_c_real**2) * r_c * dt

        return HEESStepResult(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap.power_w,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap.energy_j,
            converter_loss_j=circuit_loss,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
            notes={"load_voltage_v": float(v_l)},
        )


class ParallelHEESVec:
    """Lockstep struct-of-arrays twin of :class:`ParallelHEES`.

    Advances M parallel-architecture scenarios per step; the circuit split
    (Eq. 10-13), the pack-clip residual handoff, and the re-strung-bank
    bookkeeping mirror the scalar plant branch-for-branch (as masks), so
    every column matches a scalar run bitwise.  Bank sizes may differ per
    column; the pack layout is shared.
    """

    def __init__(self, pack: BatteryPackVec, bank: UltracapBankVec):
        self._pack = pack
        self._bank = bank
        full_voc_cell = float(pack.electrical.open_circuit_voltage(100.0))
        self._vr_eff = pack.config.series * full_voc_cell
        k = self._vr_eff / bank.rated_voltage_v
        self._rc = bank.internal_resistance_ohm * k * k
        self.sync_soe_to_battery()

    def cap_voltage(self) -> np.ndarray:
        """Per-column bank voltage in the re-strung configuration [V]."""
        return self._vr_eff * np.sqrt(
            np.maximum(self._bank.soe_percent, 0.0) / 100.0
        )

    def sync_soe_to_battery(self) -> None:
        """Pre-charge every bank to its battery's open-circuit voltage."""
        voc = self._pack.open_circuit_voltage()
        soe = 100.0 * (voc / self._vr_eff) ** 2
        self._bank.reset(np.minimum(100.0, soe))

    def step(self, request_w: np.ndarray, dt: float) -> HEESStepBatch:
        """Vectorized :meth:`ParallelHEES.step` over all columns."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank

        v_b = pack.open_circuit_voltage()
        r_b = pack.internal_resistance()
        v_c = self.cap_voltage()
        r_c = self._rc

        g = 1.0 / r_b + 1.0 / r_c
        s = v_b / r_b + v_c / r_c
        disc = s * s - 4.0 * g * request_w
        v_l = np.where(
            disc < 0.0,
            s / (2.0 * g),
            (s + np.sqrt(np.maximum(disc, 0.0))) / (2.0 * g),
        )

        i_b = (v_b - v_l) / r_b
        i_c = (v_c - v_l) / r_c

        bat = pack.apply_power(i_b * v_l, dt)

        residual_i = np.where(
            v_l > 1e-6,
            (request_w - bat.terminal_power_w) / np.where(v_l > 1e-6, v_l, 1.0),
            0.0,
        )
        i_c = np.where(bat.clipped, residual_i, i_c)

        cap = bank.apply_power(v_c * i_c, dt)
        i_c_real = np.where(
            v_c > 1e-6, cap.power_w / np.maximum(v_c, 1e-30), 0.0
        )
        realized_cap_bus = cap.power_w - (i_c_real**2) * r_c

        delivered = bat.terminal_power_w + realized_cap_bus
        unmet = np.where(
            request_w > 0, np.maximum(0.0, request_w - delivered), 0.0
        )
        circuit_loss = (i_c_real**2) * r_c * dt

        return HEESStepBatch(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap.power_w,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap.energy_j,
            converter_loss_j=circuit_loss,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
        )
