"""DC/DC converter tests (Section II-C.2)."""

import numpy as np
import pytest

from repro.hees.converter import ConverterParams, DCDCConverter


@pytest.fixture()
def conv():
    return DCDCConverter(ConverterParams())


class TestEfficiencyCurve:
    def test_peak_at_reference_voltage(self, conv):
        p = conv.params
        assert conv.efficiency(p.v_ref) == pytest.approx(p.eta_max)

    def test_sags_at_low_voltage(self, conv):
        p = conv.params
        assert conv.efficiency(0.5 * p.v_ref) < p.eta_max

    def test_floor(self, conv):
        assert conv.efficiency(0.0) == pytest.approx(conv.params.eta_min)

    def test_monotone_toward_reference(self, conv):
        p = conv.params
        vs = np.linspace(0.3 * p.v_ref, p.v_ref, 50)
        eta = conv.efficiency(vs)
        assert np.all(np.diff(eta) >= -1e-12)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ConverterParams(eta_max=1.2)
        with pytest.raises(ValueError):
            ConverterParams(eta_min=0.99, eta_max=0.95)
        with pytest.raises(ValueError):
            ConverterParams(v_ref=0.0)


class TestPowerTransfer:
    def test_discharge_port_exceeds_bus(self, conv):
        port = conv.port_power_for_bus(10_000.0, conv.params.v_ref)
        assert port > 10_000.0

    def test_charge_port_below_bus(self, conv):
        port = conv.port_power_for_bus(-10_000.0, conv.params.v_ref)
        assert -10_000.0 < port < 0.0

    def test_roundtrip_consistency_discharge(self, conv):
        v = conv.params.v_ref
        port = conv.port_power_for_bus(10_000.0, v)
        assert conv.bus_power_for_port(port, v) == pytest.approx(10_000.0)

    def test_roundtrip_consistency_charge(self, conv):
        v = 0.8 * conv.params.v_ref
        port = conv.port_power_for_bus(-10_000.0, v)
        assert conv.bus_power_for_port(port, v) == pytest.approx(-10_000.0)

    def test_port_power_clipped_at_rating(self, conv):
        port = conv.port_power_for_bus(1e9, conv.params.v_ref)
        assert port == conv.params.max_power_w

    def test_zero_power(self, conv):
        assert conv.port_power_for_bus(0.0, conv.params.v_ref) == 0.0
        assert conv.bus_power_for_port(0.0, conv.params.v_ref) == 0.0

    def test_low_voltage_transfer_is_more_expensive(self, conv):
        p_hi = conv.port_power_for_bus(10_000.0, conv.params.v_ref)
        p_lo = conv.port_power_for_bus(10_000.0, 0.5 * conv.params.v_ref)
        assert p_lo > p_hi

    def test_loss_positive(self, conv):
        assert conv.loss_w(10_000.0, conv.params.v_ref) > 0

    def test_loss_matches_efficiency(self, conv):
        v = conv.params.v_ref
        eta = float(conv.efficiency(v))
        assert conv.loss_w(10_000.0, v) == pytest.approx(10_000.0 * (1 - eta))
