"""Ultracapacitor bank parameters.

The paper quotes bank sizes as total farads (5,000-25,000 F) with a price
point matching Maxwell BC-series cells grouped into ~16 V modules
(6 x 2.7 V in series); at that rating a 25,000 F bank stores
1/2 * 25,000 * 16.2^2 = 3.3 MJ ~= 0.91 kWh, a realistic EV pulse buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class UltracapParams:
    """Parameters of an ultracapacitor bank (Eq. 6-9).

    Attributes
    ----------
    capacitance_f:
        Rated total capacitance C_cap [F] at the module voltage.
    rated_voltage_v:
        Rated (full) voltage V_r [V]; Vcap = V_r at SoE = 100%.
    internal_resistance_ohm:
        Series resistance [Ohm]; the paper notes it is negligible
        (~2.2 mOhm) and omits it from Eq. 6-9, but the parallel
        architecture's circuit split (Eq. 10-13) needs a finite value.
    max_power_w:
        Power ceiling of the bank / its converter port (constraint C7) [W].
    soe_min_percent / soe_max_percent:
        Constraint C5 bounds on the state of energy [%].  C5 is a
        *management* constraint; physically the bank works below it.
    soe_hard_min_percent:
        Physical floor [%] below which the converter cuts off (voltage too
        low); the band between hard floor and C5 floor is an emergency
        reserve the hybrid plant may tap to avoid starving the load.
    """

    capacitance_f: float = 25_000.0
    rated_voltage_v: float = 16.2
    internal_resistance_ohm: float = 2.2e-3
    max_power_w: float = 60_000.0
    soe_min_percent: float = 20.0
    soe_max_percent: float = 100.0
    soe_hard_min_percent: float = 5.0

    def __post_init__(self):
        check_positive(self.capacitance_f, "capacitance_f")
        check_positive(self.rated_voltage_v, "rated_voltage_v")
        check_positive(self.internal_resistance_ohm, "internal_resistance_ohm")
        check_positive(self.max_power_w, "max_power_w")
        check_in_range(self.soe_min_percent, 0.0, 100.0, "soe_min_percent")
        check_in_range(
            self.soe_max_percent, self.soe_min_percent, 100.0, "soe_max_percent"
        )
        check_in_range(
            self.soe_hard_min_percent, 0.0, self.soe_min_percent, "soe_hard_min_percent"
        )

    @property
    def energy_capacity_j(self) -> float:
        """E_cap = 1/2 C V_r^2 [J] (Eq. 6)."""
        return 0.5 * self.capacitance_f * self.rated_voltage_v**2

    @property
    def usable_energy_j(self) -> float:
        """Energy between the C5 bounds [J]."""
        span = (self.soe_max_percent - self.soe_min_percent) / 100.0
        return span * self.energy_capacity_j


#: Capacitance at which the default module resistance (2.2 mOhm) is quoted.
REFERENCE_CAPACITANCE_F = 25_000.0


def bank_of_farads(capacitance_f: float, **overrides) -> UltracapParams:
    """Build a bank parameter set for the paper's capacitance sweep.

    Resistance scales inversely with capacitance (a smaller bank has fewer
    parallel strings), unless overridden explicitly.

    Parameters
    ----------
    capacitance_f:
        Total capacitance [F] (the paper uses 5,000-25,000 F).
    overrides:
        Any other :class:`UltracapParams` field.
    """
    if "internal_resistance_ohm" not in overrides:
        overrides["internal_resistance_ohm"] = (
            2.2e-3 * REFERENCE_CAPACITANCE_F / capacitance_f
        )
    return UltracapParams(capacitance_f=capacitance_f, **overrides)
