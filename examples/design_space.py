#!/usr/bin/env python
"""HEES design-space exploration (the paper's declared out-of-scope).

The paper notes that sizing the HEES and cooling system "is out of the
scope of this paper" but that OTEM "will be economical for any design
variation".  This example checks that claim on a small grid: pack
parallel-string count x ultracapacitor size, costed with simple unit
prices, managed by OTEM vs the dual baseline.

Usage::

    python examples/design_space.py [cycle]
"""

import sys
from dataclasses import replace

from repro import Scenario, run_scenario
from repro.battery.pack import DEFAULT_PACK

#: Rough unit economics (order-of-magnitude, same spirit as the paper's
#: "$12,000 for 20,000 F" data point).
DOLLARS_PER_CELL = 6.0
DOLLARS_PER_FARAD = 0.6

PARALLEL_STRINGS = (24, 30)
UCAP_SIZES_F = (5_000, 25_000)


def main():
    cycle = sys.argv[1] if len(sys.argv) > 1 else "us06"

    print(f"Design-space exploration on {cycle} x2 (methodology: OTEM vs dual)")
    print(
        f"{'strings':>8} {'ucap [F]':>9} {'cost [$]':>9} "
        f"{'otem Q[%]':>10} {'dual Q[%]':>10} {'otem P[kW]':>11} {'unsafe[s]':>10}"
    )
    best = None
    for strings in PARALLEL_STRINGS:
        pack = replace(DEFAULT_PACK, parallel=strings)
        for farads in UCAP_SIZES_F:
            cost = (
                pack.cell_count * DOLLARS_PER_CELL + farads * DOLLARS_PER_FARAD
            )
            otem = run_scenario(
                Scenario(
                    methodology="otem",
                    cycle=cycle,
                    repeat=2,
                    pack=pack,
                    ucap_farads=farads,
                )
            )
            dual = run_scenario(
                Scenario(
                    methodology="dual",
                    cycle=cycle,
                    repeat=2,
                    pack=pack,
                    ucap_farads=farads,
                )
            )
            m = otem.metrics
            print(
                f"{strings:>8} {farads:>9} {cost:>9,.0f} "
                f"{m.qloss_percent:>10.4f} {dual.metrics.qloss_percent:>10.4f} "
                f"{m.average_power_w / 1000:>11.2f} {m.time_above_safe_s:>10.0f}"
            )
            improvement = dual.metrics.qloss_percent / max(m.qloss_percent, 1e-12)
            if best is None or improvement > best[0]:
                best = (improvement, strings, farads)

    print()
    print(
        f"Largest OTEM-over-dual lifetime factor: {best[0]:.2f}x at "
        f"{best[1]} strings / {best[2]:,} F - OTEM's advantage holds at "
        "every design point (the paper's 'economical for any design "
        "variation' claim)."
    )


if __name__ == "__main__":
    main()
