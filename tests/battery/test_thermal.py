"""Heat-generation tests (Eq. 4)."""

import numpy as np
import pytest

from repro.battery.electrical import BatteryElectrical
from repro.battery.params import NCR18650A
from repro.battery.thermal import heat_generation_w


class TestHeatGeneration:
    def test_zero_current_zero_heat(self):
        assert heat_generation_w(0.0, 50.0, 298.15) == pytest.approx(0.0)

    def test_discharge_generates_heat(self):
        assert heat_generation_w(3.0, 50.0, 298.15) > 0

    def test_charge_also_generates_heat(self):
        # Joule term is quadratic: charging heats too
        assert heat_generation_w(-3.0, 50.0, 298.15) > 0

    def test_quadratic_joule_dominates(self):
        q1 = heat_generation_w(2.0, 50.0, 298.15)
        q2 = heat_generation_w(4.0, 50.0, 298.15)
        assert q2 > 3.0 * q1  # superlinear growth

    def test_joule_term_matches_i2r(self):
        model = BatteryElectrical(NCR18650A)
        i = 5.0
        res = float(model.internal_resistance(50.0, 298.15))
        expected_joule = i * i * res
        entropic = i * 298.15 * NCR18650A.entropy_coeff_v_per_k
        q = heat_generation_w(i, 50.0, 298.15)
        assert q == pytest.approx(expected_joule + entropic)

    def test_entropic_sign_flips_with_current(self):
        # difference between +-I isolates the entropic (odd) term
        q_pos = float(heat_generation_w(1.0, 50.0, 298.15))
        q_neg = float(heat_generation_w(-1.0, 50.0, 298.15))
        odd = (q_pos - q_neg) / 2.0
        assert odd == pytest.approx(298.15 * NCR18650A.entropy_coeff_v_per_k, rel=1e-9)

    def test_hot_cell_generates_less_joule_heat(self):
        # R falls with temperature, so same current -> less heat
        cold = heat_generation_w(5.0, 50.0, 283.15)
        hot = heat_generation_w(5.0, 50.0, 313.15)
        assert hot < cold

    def test_vectorized(self):
        out = heat_generation_w(np.array([1.0, 2.0, 3.0]), 50.0, 298.15)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_shared_electrical_model(self):
        model = BatteryElectrical(NCR18650A)
        a = heat_generation_w(3.0, 50.0, 298.15, electrical=model)
        b = heat_generation_w(3.0, 50.0, 298.15)
        assert a == pytest.approx(float(b))
