#!/usr/bin/env python
"""Quickstart: run OTEM on one US06 cycle and print the headline metrics.

Usage::

    python examples/quickstart.py [cycle] [methodology]

with cycle in {us06, udds, hwfet, nycc, la92} (default us06) and
methodology in {otem, parallel, cooling, dual} (default otem).
"""

import sys

from repro import Scenario, run_scenario
from repro.utils.units import kelvin_to_celsius


def main():
    cycle = sys.argv[1] if len(sys.argv) > 1 else "us06"
    methodology = sys.argv[2] if len(sys.argv) > 2 else "otem"

    print(f"Running {methodology!r} on {cycle!r} ...")
    result = run_scenario(Scenario(methodology=methodology, cycle=cycle))
    m = result.metrics

    print()
    print(f"Controller:        {result.controller_name}")
    print(f"Route:             {result.cycle_name} ({m.duration_s:.0f} s)")
    print(f"Capacity loss:     {m.qloss_percent:.4f} % of rated capacity")
    print(f"  -> battery lasts {m.blt_routes:,.0f} such routes to end-of-life")
    print(f"HEES energy:       {m.hees_energy_j / 3.6e6:.2f} kWh")
    print(f"Average power:     {m.average_power_w / 1000:.2f} kW")
    print(f"Cooling energy:    {m.cooling_energy_j / 3.6e6:.2f} kWh")
    print(f"Peak battery temp: {kelvin_to_celsius(m.peak_temp_k):.1f} C "
          f"({m.time_above_safe_s:.0f} s above the 40 C safety limit)")
    print(f"Final SoC:         {m.min_soc_percent:.1f} %")
    print(f"Unmet demand:      {m.unmet_energy_j / 3.6e6:.4f} kWh")


if __name__ == "__main__":
    main()
