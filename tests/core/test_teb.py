"""TEB metric tests."""

import numpy as np
import pytest

from repro.core.teb import (
    TEBParams,
    teb_preparation_score,
    teb_trace,
    upcoming_demand_w,
)
from repro.sim.trace import CHANNELS, Trace


def make_trace(temps_k, soes, requests):
    n = len(temps_k)
    base = {name: np.zeros(n) for name in CHANNELS}
    base["time_s"] = np.arange(n, dtype=float)
    base["battery_temp_k"] = np.asarray(temps_k, dtype=float)
    base["cap_soe_percent"] = np.asarray(soes, dtype=float)
    base["request_w"] = np.asarray(requests, dtype=float)
    base["coolant_temp_k"] = np.asarray(temps_k, dtype=float)
    base["inlet_temp_k"] = np.asarray(temps_k, dtype=float)
    base["battery_soc_percent"] = np.full(n, 80.0)
    return Trace(**base)


class TestTEBParams:
    def test_rejects_inverted_temps(self):
        with pytest.raises(ValueError):
            TEBParams(temp_max_k=300.0, temp_ref_k=310.0)

    def test_rejects_inverted_soe(self):
        with pytest.raises(ValueError):
            TEBParams(soe_min_percent=90.0, soe_max_percent=50.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            TEBParams(alpha=1.5)


class TestTEBTrace:
    def test_full_budget(self):
        trace = make_trace([295.15, 295.15], [100.0, 100.0], [0.0, 0.0])
        assert np.allclose(teb_trace(trace), 1.0)

    def test_zero_budget(self):
        trace = make_trace([313.15, 313.15], [20.0, 20.0], [0.0, 0.0])
        assert np.allclose(teb_trace(trace), 0.0)

    def test_half_alpha_weighting(self):
        # full thermal budget, empty energy budget -> alpha
        trace = make_trace([295.15, 295.15], [20.0, 20.0], [0.0, 0.0])
        assert np.allclose(teb_trace(trace), 0.5)

    def test_clipped_outside_range(self):
        trace = make_trace([330.0, 280.0], [0.0, 110.0], [0.0, 0.0])
        teb = teb_trace(trace)
        assert np.all(teb >= 0.0)
        assert np.all(teb <= 1.0)

    def test_custom_alpha(self):
        trace = make_trace([295.15], [20.0], [0.0])
        teb = teb_trace(trace, TEBParams(alpha=0.8))
        assert teb[0] == pytest.approx(0.8)


class TestUpcomingDemand:
    def test_constant_demand(self):
        trace = make_trace([298.0] * 10, [100.0] * 10, [5_000.0] * 10)
        assert np.allclose(upcoming_demand_w(trace, 3), 5_000.0)

    def test_ignores_regen(self):
        trace = make_trace([298.0] * 4, [100.0] * 4, [-5_000.0] * 4)
        assert np.allclose(upcoming_demand_w(trace, 2), 0.0)

    def test_leads_a_step_pulse(self):
        requests = [0.0] * 5 + [10_000.0] * 5
        trace = make_trace([298.0] * 10, [100.0] * 10, requests)
        demand = upcoming_demand_w(trace, 5)
        assert demand[2] > 0.0  # sees the pulse before it arrives
        assert demand[0] == 0.0

    def test_rejects_zero_lookahead(self):
        trace = make_trace([298.0] * 4, [100.0] * 4, [0.0] * 4)
        with pytest.raises(ValueError):
            upcoming_demand_w(trace, 0)


class TestPreparationScore:
    def test_positive_when_budget_leads_demand(self):
        # budget raised just before the demand block and held through it
        n = 100
        requests = np.concatenate([np.zeros(50), np.full(50, 20_000.0)])
        soes = np.concatenate([np.full(30, 40.0), np.full(70, 100.0)])
        trace = make_trace([298.0] * n, soes, requests)
        assert teb_preparation_score(trace, 20) > 0.5

    def test_zero_for_constant_budget(self):
        trace = make_trace([298.0] * 20, [60.0] * 20, np.random.default_rng(0).uniform(0, 1e4, 20))
        assert teb_preparation_score(trace, 5) == 0.0

    def test_negative_for_depleting_budget(self):
        # budget is full only while idle and crashes as demand arrives: the
        # un-prepared pattern the baselines exhibit
        n = 100
        requests = np.concatenate([np.zeros(50), np.full(50, 20_000.0)])
        soes = np.concatenate([np.full(50, 100.0), np.linspace(100, 20, 50)])
        trace = make_trace([298.0] * n, soes, requests)
        assert teb_preparation_score(trace, 20) < -0.2
