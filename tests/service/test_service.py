"""The sweep service end to end: job manager semantics and the HTTP API."""

import json
import time

import pytest

from repro.service import JobManager, ServiceError, SweepClient, SweepServer, SweepSpec
from repro.store import ExperimentStore
from repro.sim.scenario import Scenario

#: A fast 4-cell spec (two lockstep groups on the shortest cycle).
SPEC = SweepSpec(
    base=Scenario(cycle="nycc"),
    axes={
        "methodology": ["parallel", "dual"],
        "ucap_farads": [5_000.0, 25_000.0],
    },
)


def wait_terminal(manager, sweep_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = manager.get(sweep_id)
        if record["status"] in ("done", "failed", "cancelled", "interrupted"):
            return record
        time.sleep(0.02)
    raise TimeoutError(f"sweep {sweep_id} not terminal after {timeout_s} s")


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(ExperimentStore(tmp_path), worker_threads=1)
    yield mgr
    mgr.shutdown()


class TestJobManager:
    def test_submit_runs_to_done(self, manager):
        sweep_id = manager.submit(SPEC)
        record = wait_terminal(manager, sweep_id)
        assert record["status"] == "done"
        assert record["done_cells"] == record["total"] == 4
        assert record["failed_cells"] == 0
        assert record["error"] is None
        assert record["engine_backends"] == {"lockstep": 4}
        payload = manager.rows(sweep_id)
        assert payload["complete"] and len(payload["rows"]) == 4
        assert [r["index"] for r in payload["rows"]] == [0, 1, 2, 3]

    def test_rows_filterable_by_field(self, manager):
        sweep_id = manager.submit(SPEC)
        wait_terminal(manager, sweep_id)
        rows = manager.rows(sweep_id, {"methodology": "dual"})["rows"]
        assert len(rows) == 2
        assert all(r["methodology"] == "dual" for r in rows)
        assert manager.rows(sweep_id, {"methodology": "nope"})["rows"] == []

    def test_rows_never_expose_cached_flag(self, manager):
        sweep_id = manager.submit(SPEC)
        wait_terminal(manager, sweep_id)
        assert all("cached" not in r for r in manager.rows(sweep_id)["rows"])

    def test_unknown_sweep_returns_none(self, manager):
        assert manager.get("nope") is None
        assert manager.rows("nope") is None
        assert manager.cancel("nope") is False

    def test_cancel_queued_job(self, manager):
        # the single worker is busy with the first sweep, so the second is
        # still queued when we cancel it
        busy = manager.submit(SPEC)
        victim = manager.submit(
            SweepSpec(base=Scenario(cycle="nycc"), axes={"repeat": [1, 2]})
        )
        assert manager.cancel(victim) is True
        record = wait_terminal(manager, victim)
        assert record["status"] == "cancelled"
        assert record["done_cells"] == 0
        assert wait_terminal(manager, busy)["status"] == "done"

    def test_cancel_finished_job_returns_false(self, manager):
        sweep_id = manager.submit(SPEC)
        wait_terminal(manager, sweep_id)
        assert manager.cancel(sweep_id) is False

    def test_timeout_fails_the_job(self, tmp_path):
        mgr = JobManager(ExperimentStore(tmp_path / "t"), worker_threads=1)
        try:
            spec = SweepSpec(
                base=Scenario(cycle="nycc"),
                axes={"methodology": ["parallel", "dual"]},
                timeout_s=1e-3,
            )
            record = wait_terminal(mgr, mgr.submit(spec))
            assert record["status"] == "failed"
            assert "timeout" in record["error"]
        finally:
            mgr.shutdown()

    def test_submit_after_shutdown_rejected(self, tmp_path):
        mgr = JobManager(ExperimentStore(tmp_path / "s"), worker_threads=1)
        mgr.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            mgr.submit(SPEC)

    def test_metrics_shape(self, manager):
        wait_terminal(manager, manager.submit(SPEC))
        metrics = manager.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["cells"]["done"] == 4
        assert metrics["engine_backends"] == {"lockstep": 4}
        assert metrics["store"]["cells"] == 4
        assert metrics["uptime_s"] > 0

    def test_restart_resumes_from_store(self, tmp_path):
        first = JobManager(ExperimentStore(tmp_path), worker_threads=1)
        sweep_id = first.submit(SPEC)
        wait_terminal(first, sweep_id)
        rows_before = first.rows(sweep_id)
        first.shutdown()

        second = JobManager(ExperimentStore(tmp_path), worker_threads=1)
        try:
            # the finished sweep survives the restart, rows intact
            assert second.get(sweep_id)["status"] == "done"
            assert second.rows(sweep_id)["rows"] == rows_before["rows"]
            # resubmitting the identical sweep is served from the store:
            # byte-identical rows, zero recomputed cells
            resubmit = second.submit(SPEC)
            wait_terminal(second, resubmit)
            assert json.dumps(second.rows(resubmit)["rows"]) == json.dumps(
                rows_before["rows"]
            )
            assert second.store.hits == 4 and second.store.misses == 0
        finally:
            second.shutdown()

    def test_restart_marks_abandoned_sweeps_interrupted(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put_sweep(
            "dead", {"sweep_id": "dead", "status": "running", "total": 4}
        )
        mgr = JobManager(store, worker_threads=1)
        try:
            record = mgr.get("dead")
            assert record["status"] == "interrupted"
            assert "stopped" in record["error"]
        finally:
            mgr.shutdown()

    def test_job_crash_fails_job_not_service(self, manager, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.service.jobs.run_batch", boom)
        record = wait_terminal(manager, manager.submit(SPEC))
        assert record["status"] == "failed"
        assert "kaboom" in record["error"]
        # the manager still runs jobs afterwards
        monkeypatch.undo()
        assert wait_terminal(manager, manager.submit(SPEC))["status"] == "done"


@pytest.fixture
def server(tmp_path):
    srv = SweepServer(tmp_path / "store", port=0, worker_threads=1).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return SweepClient(server.url, timeout_s=10.0)


class TestHTTP:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_submit_poll_rows_cycle(self, client):
        accepted = client.submit(SPEC.to_dict())
        assert accepted["status"] == "queued" and accepted["total"] == 4
        assert accepted["spec_hash"] == SPEC.spec_hash()
        record = client.wait(accepted["sweep_id"], timeout_s=60.0)
        assert record["status"] == "done"
        assert record["progress"] == 1.0
        payload = client.rows(accepted["sweep_id"])
        assert payload["complete"] and len(payload["rows"]) == 4
        filtered = client.rows(accepted["sweep_id"], methodology="dual")
        assert len(filtered["rows"]) == 2
        assert accepted["sweep_id"] in [s["sweep_id"] for s in client.list()]

    def test_resubmitted_sweep_is_byte_identical(self, client):
        first = client.submit(SPEC.to_dict())
        client.wait(first["sweep_id"], timeout_s=60.0)
        second = client.submit(SPEC.to_dict())
        client.wait(second["sweep_id"], timeout_s=60.0)
        rows_a = json.dumps(client.rows(first["sweep_id"])["rows"])
        rows_b = json.dumps(client.rows(second["sweep_id"])["rows"])
        assert rows_a.encode() == rows_b.encode()
        assert "repro_store_hits 4" in client.metrics_text()

    def test_metrics_exposition(self, client):
        accepted = client.submit(SPEC.to_dict())
        client.wait(accepted["sweep_id"], timeout_s=60.0)
        text = client.metrics_text()
        assert 'repro_jobs{state="done"} 1' in text
        assert "repro_cells_done 4" in text
        assert 'repro_engine_cells{backend="lockstep"} 4' in text
        assert "repro_store_cells 4" in text
        assert "repro_store_hit_rate" in text

    def test_bad_spec_is_a_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"axes": {"warp_factor": [9]}})
        assert err.value.status == 400
        assert "unknown axis" in str(err.value)

    def test_unknown_sweep_is_a_404(self, client):
        for call in (client.status, client.rows, client.cancel):
            with pytest.raises(ServiceError) as err:
                call("feedfacecafe")
            assert err.value.status == 404

    def test_unknown_route_is_a_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_cancel_finished_sweep_is_a_409(self, client):
        accepted = client.submit(SPEC.to_dict())
        client.wait(accepted["sweep_id"], timeout_s=60.0)
        with pytest.raises(ServiceError) as err:
            client.cancel(accepted["sweep_id"])
        assert err.value.status == 409

    def test_restarted_server_serves_stored_sweeps(self, tmp_path):
        store_dir = tmp_path / "store"
        first = SweepServer(store_dir, port=0, worker_threads=1).start()
        try:
            c = SweepClient(first.url, timeout_s=10.0)
            sweep_id = c.submit(SPEC.to_dict())["sweep_id"]
            c.wait(sweep_id, timeout_s=60.0)
            rows = c.rows(sweep_id)["rows"]
        finally:
            first.shutdown()

        second = SweepServer(store_dir, port=0, worker_threads=1).start()
        try:
            c = SweepClient(second.url, timeout_s=10.0)
            assert c.status(sweep_id)["status"] == "done"
            assert c.rows(sweep_id)["rows"] == rows
            resubmit = c.submit(SPEC.to_dict())["sweep_id"]
            c.wait(resubmit, timeout_s=60.0)
            assert c.rows(resubmit)["rows"] == rows
            assert "repro_store_hits 4" in c.metrics_text()
        finally:
            second.shutdown()
