"""Micro-benchmarks of the hot components.

Unlike the figure/table benches (one full experiment per measurement),
these time the inner kernels with proper statistics: the MPC rollout, one
planner solve, and one plant step chain.  They guard against performance
regressions that would make the experiment benches crawl.
"""

import numpy as np

from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop
from repro.core.cost import CostWeights
from repro.core.mpc import MPCPlanner
from repro.core.rollout import PredictionModel
from repro.drivecycle.library import get_cycle
from repro.hees.hybrid import (
    HybridHEES,
    default_battery_converter,
    default_cap_converter,
)
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import Powertrain


def make_model():
    pack = BatteryPack(DEFAULT_PACK)
    bank = UltracapBank(UltracapParams())
    return PredictionModel(
        DEFAULT_PACK,
        UltracapParams(),
        DEFAULT_COOLANT,
        default_battery_converter(pack),
        default_cap_converter(bank),
        CostWeights(),
    )


def test_bench_rollout_cost(benchmark):
    """One 12-step horizon evaluation (the optimizer calls this ~150x/replan)."""
    model = make_model()
    state = (305.0, 303.0, 80.0, 70.0)
    cap = [5_000.0] * 12
    inlet = [295.0] * 12
    preview = [20_000.0] * 12
    cost = benchmark(model.rollout_cost, state, cap, inlet, preview, 5.0)
    assert np.isfinite(cost)


def test_bench_mpc_plan(benchmark):
    """One full planner solve (multi-start L-BFGS-B)."""
    planner = MPCPlanner(make_model())
    preview = np.full(12, 20_000.0)

    def solve():
        planner.reset()
        return planner.plan((308.0, 306.0, 80.0, 70.0), preview)

    plan = benchmark(solve)
    assert plan.horizon == 12


def test_bench_hybrid_plant_step(benchmark):
    """One hybrid HEES step plus the thermal update (the 1 Hz plant path)."""
    pack = BatteryPack(DEFAULT_PACK)
    bank = UltracapBank(UltracapParams())
    plant = HybridHEES(pack, bank)
    loop = CoolingLoop(DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k)

    def step():
        r = plant.step(20_000.0, 5_000.0, 1.0)
        thermal = loop.step(pack.temp_k, 298.0, 295.0, r.battery_heat_w, 1.0)
        pack.set_temperature(thermal.battery_temp_k)
        # keep the stores in a steady band so the benchmark is stationary
        pack.state.soc_percent = 80.0
        bank.reset(70.0)
        return r

    result = benchmark(step)
    assert result.delivered_power_w > 0


def test_bench_powertrain_request(benchmark):
    """Full US06 power-request computation (vectorized backward model)."""
    cycle = get_cycle("us06")
    pt = Powertrain()
    request = benchmark(pt.power_request, cycle)
    assert len(request) == len(cycle)
