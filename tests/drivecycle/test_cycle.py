"""DriveCycle container tests."""

import numpy as np
import pytest

from repro.drivecycle.cycle import DriveCycle


@pytest.fixture()
def ramp_cycle():
    """0 -> 10 m/s over 10 s, hold 10 s, back to 0 over 10 s."""
    speed = np.concatenate(
        [np.linspace(0, 10, 11), np.full(9, 10.0), np.linspace(10, 0, 11)]
    )
    return DriveCycle("ramp", speed, dt=1.0)


class TestConstruction:
    def test_basic(self, ramp_cycle):
        assert ramp_cycle.name == "ramp"
        assert len(ramp_cycle) == 31

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            DriveCycle("bad", [0.0, -1.0], dt=1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DriveCycle("bad", [0.0, np.nan], dt=1.0)

    def test_rejects_short_trace(self):
        with pytest.raises(ValueError):
            DriveCycle("bad", [0.0], dt=1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            DriveCycle("bad", np.zeros((2, 2)), dt=1.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            DriveCycle("bad", [0.0, 1.0], dt=0.0)

    def test_speed_is_readonly(self, ramp_cycle):
        with pytest.raises(ValueError):
            ramp_cycle.speed_mps[0] = 99.0

    def test_input_copy_is_independent(self):
        src = np.array([0.0, 1.0, 2.0])
        cycle = DriveCycle("c", src, dt=1.0)
        src[0] = 50.0
        assert cycle.speed_mps[0] == 0.0


class TestDerived:
    def test_duration(self, ramp_cycle):
        assert ramp_cycle.duration_s == pytest.approx(30.0)

    def test_time_axis(self, ramp_cycle):
        t = ramp_cycle.time_s
        assert t[0] == 0.0
        assert t[-1] == pytest.approx(30.0)

    def test_distance_of_trapezoid_profile(self, ramp_cycle):
        # ramp up: 50 m, hold: ~100 m, ramp down: 50 m -> 200 m total
        assert ramp_cycle.distance_m() == pytest.approx(200.0, rel=0.02)

    def test_acceleration_sign(self, ramp_cycle):
        accel = ramp_cycle.acceleration_ms2()
        assert accel[2] > 0
        assert accel[-3] < 0

    def test_stats_max_speed(self, ramp_cycle):
        assert ramp_cycle.stats().max_speed_kmh == pytest.approx(36.0)

    def test_stats_idle_fraction(self):
        speed = np.concatenate([np.zeros(10), np.full(10, 5.0)])
        cycle = DriveCycle("half-idle", speed, dt=1.0)
        assert cycle.stats().idle_fraction == pytest.approx(0.5)

    def test_stop_count_excludes_leading_stop(self):
        speed = np.concatenate(
            [np.zeros(5), np.full(10, 5.0), np.zeros(5), np.full(10, 5.0), np.zeros(5)]
        )
        cycle = DriveCycle("stops", speed, dt=1.0)
        assert cycle.stats().stop_count == 2


class TestTransformations:
    def test_repeat_length(self, ramp_cycle):
        doubled = ramp_cycle.repeat(2)
        assert len(doubled) == 2 * len(ramp_cycle) - 1

    def test_repeat_once_is_identity(self, ramp_cycle):
        assert ramp_cycle.repeat(1) is ramp_cycle

    def test_repeat_name(self, ramp_cycle):
        assert ramp_cycle.repeat(3).name == "rampx3"

    def test_repeat_distance_scales(self, ramp_cycle):
        assert ramp_cycle.repeat(2).distance_m() == pytest.approx(
            2 * ramp_cycle.distance_m(), rel=1e-6
        )

    def test_repeat_rejects_zero(self, ramp_cycle):
        with pytest.raises(ValueError):
            ramp_cycle.repeat(0)

    def test_resample_preserves_distance(self, ramp_cycle):
        fine = ramp_cycle.resample(0.5)
        assert fine.dt == 0.5
        assert fine.distance_m() == pytest.approx(ramp_cycle.distance_m(), rel=0.01)

    def test_resample_same_dt_is_identity(self, ramp_cycle):
        assert ramp_cycle.resample(1.0) is ramp_cycle

    def test_scaled(self, ramp_cycle):
        faster = ramp_cycle.scaled(2.0)
        assert faster.speed_mps.max() == pytest.approx(20.0)

    def test_scaled_rejects_nonpositive(self, ramp_cycle):
        with pytest.raises(ValueError):
            ramp_cycle.scaled(0.0)
