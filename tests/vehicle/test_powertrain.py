"""Backward powertrain (ADVISOR substitute) tests."""

import numpy as np
import pytest

from repro.drivecycle.library import get_cycle
from repro.drivecycle.synth import accel, cruise, decel, idle, synthesize
from repro.vehicle.powertrain import Powertrain, PowerRequest


class TestPowerRequestContainer:
    def test_basic_properties(self):
        pr = PowerRequest("t", 1.0, np.array([1.0, 2.0, 3.0]))
        assert len(pr) == 3
        assert pr.duration_s == 2.0
        assert pr.time_s.tolist() == [0.0, 1.0, 2.0]

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            PowerRequest("t", 1.0, np.array([1.0]))

    def test_mean_power(self):
        pr = PowerRequest("t", 1.0, np.array([0.0, 10.0]))
        assert pr.mean_power_w() == pytest.approx(5.0)

    def test_mean_discharge_power_ignores_regen(self):
        pr = PowerRequest("t", 1.0, np.array([-10.0, 10.0]))
        assert pr.mean_discharge_power_w() == pytest.approx(5.0)

    def test_peak(self):
        pr = PowerRequest("t", 1.0, np.array([-50.0, 20.0, 5.0]))
        assert pr.peak_power_w() == 20.0

    def test_energy(self):
        pr = PowerRequest("t", 2.0, np.array([10.0, 10.0, 10.0]))
        assert pr.energy_j() == pytest.approx(40.0)

    def test_window_inside(self):
        pr = PowerRequest("t", 1.0, np.arange(10.0))
        assert pr.window(2, 3).tolist() == [2.0, 3.0, 4.0]

    def test_window_pads_past_end(self):
        pr = PowerRequest("t", 1.0, np.arange(5.0))
        out = pr.window(3, 4)
        assert out.tolist() == [3.0, 4.0, 0.0, 0.0]

    def test_window_fully_past_end(self):
        pr = PowerRequest("t", 1.0, np.arange(5.0))
        assert pr.window(10, 3).tolist() == [0.0, 0.0, 0.0]

    def test_window_rejects_negative(self):
        pr = PowerRequest("t", 1.0, np.arange(5.0))
        with pytest.raises(ValueError):
            pr.window(-1, 2)


class TestPowertrain:
    def test_idle_costs_only_aux(self):
        cycle = synthesize("idle", [idle(30)])
        pr = Powertrain().power_request(cycle)
        aux = Powertrain().params.auxiliary_power_w
        assert np.allclose(pr.power_w, aux)

    def test_cruise_power_positive(self):
        cycle = synthesize("c", [accel(100, 1.5), cruise(60)])
        pr = Powertrain().power_request(cycle)
        assert np.all(pr.power_w[-30:] > 0)

    def test_braking_produces_regen(self):
        cycle = synthesize("b", [accel(100, 1.5), decel(0, 2.5), idle(5)])
        pr = Powertrain().power_request(cycle)
        assert pr.power_w.min() < 0

    def test_us06_mean_power_in_ev_range(self):
        pr = Powertrain().power_request(get_cycle("us06"))
        # full-size EV on US06: 10-25 kW net average
        assert 10_000 < pr.mean_power_w() < 25_000

    def test_us06_peak_below_motor_limit_plus_aux(self):
        pt = Powertrain()
        pr = pt.power_request(get_cycle("us06"))
        assert pr.peak_power_w() <= pt.params.max_motor_power_w + pt.params.auxiliary_power_w

    def test_cycle_ordering_by_energy_intensity(self):
        pt = Powertrain()
        means = {
            name: pt.power_request(get_cycle(name)).mean_power_w()
            for name in ("us06", "hwfet", "udds", "nycc")
        }
        assert means["us06"] > means["hwfet"] > means["udds"] > means["nycc"]

    def test_grade_increases_power(self):
        cycle = synthesize("c", [accel(80, 1.5), cruise(60)])
        pt = Powertrain()
        flat = pt.power_request(cycle).mean_power_w()
        hill = pt.power_request(cycle, grade_rad=0.03).mean_power_w()
        assert hill > flat

    def test_request_keeps_cycle_name_and_dt(self):
        pr = Powertrain().power_request(get_cycle("udds"))
        assert pr.cycle_name == "UDDS"
        assert pr.dt == 1.0
