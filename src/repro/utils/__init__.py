"""Shared utilities: unit conversions, numeric integration, validation.

These helpers are deliberately small and dependency-free (numpy only) so the
physics modules stay focused on the model equations from the paper.
"""

from repro.utils.units import (
    CELSIUS_ZERO,
    KMH_PER_MPS,
    ah_to_coulomb,
    celsius_to_kelvin,
    coulomb_to_ah,
    kelvin_to_celsius,
    kmh_to_mps,
    kwh_to_joule,
    joule_to_kwh,
    mph_to_mps,
    mps_to_kmh,
)
from repro.utils.integrate import (
    cumulative_trapezoid,
    euler_step,
    rk4_step,
    trapezoid,
)
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_same_length,
    clamp,
)

__all__ = [
    "CELSIUS_ZERO",
    "KMH_PER_MPS",
    "ah_to_coulomb",
    "celsius_to_kelvin",
    "coulomb_to_ah",
    "kelvin_to_celsius",
    "kmh_to_mps",
    "kwh_to_joule",
    "joule_to_kwh",
    "mph_to_mps",
    "mps_to_kmh",
    "cumulative_trapezoid",
    "euler_step",
    "rk4_step",
    "trapezoid",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_same_length",
    "clamp",
]
