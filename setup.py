"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires PEP 660 wheel builds; on offline machines
without ``wheel`` installed, use ``python setup.py develop`` instead.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
