"""Tiny stdlib client for the sweep service (urllib only).

Used by the ``repro submit`` / ``repro query`` CLI commands and the
service tests; any HTTP client works against the same endpoints.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request


class ServiceError(RuntimeError):
    """An error response from the sweep service (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class SweepClient:
    """Client for one sweep-service base URL.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8563``.
    timeout_s:
        Per-request socket timeout.
    """

    def __init__(self, url: str, timeout_s: float = 30.0):
        self._url = url.rstrip("/")
        self._timeout_s = timeout_s

    @property
    def url(self) -> str:
        """The base URL requests go to."""
        return self._url

    def _request(self, method: str, path: str, body: dict | None = None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self._url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self._timeout_s) as resp:
                raw = resp.read()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self._url}: {exc.reason}") from None
        if content_type.startswith("application/json"):
            return json.loads(raw)
        return raw.decode()

    # ------------------------------------------------------------------ #
    # endpoints

    def healthz(self) -> dict:
        """Liveness probe."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus-style ``/metrics`` exposition."""
        return self._request("GET", "/metrics")

    def submit(self, spec: dict) -> dict:
        """Submit a sweep spec document; returns the acceptance record."""
        return self._request("POST", "/sweeps", body=spec)

    def list(self) -> list:
        """Status records of every known sweep."""
        return self._request("GET", "/sweeps")["sweeps"]

    def status(self, sweep_id: str) -> dict:
        """Status + progress of one sweep."""
        return self._request("GET", f"/sweeps/{sweep_id}")

    def rows(self, sweep_id: str, **filters) -> dict:
        """Rows payload, optionally filtered by row-field equality."""
        path = f"/sweeps/{sweep_id}/rows"
        if filters:
            path += "?" + urllib.parse.urlencode(filters)
        return self._request("GET", path)

    def cancel(self, sweep_id: str) -> dict:
        """Cancel a queued/running sweep."""
        return self._request("DELETE", f"/sweeps/{sweep_id}")

    def wait(
        self,
        sweep_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
        on_progress=None,
    ) -> dict:
        """Poll until the sweep reaches a terminal state; returns its record.

        ``on_progress`` (optional) receives each polled status record -
        the CLI uses it to print live progress.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.status(sweep_id)
            if on_progress is not None:
                on_progress(record)
            if record["status"] in ("done", "failed", "cancelled", "interrupted"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"sweep {sweep_id} still {record['status']} after "
                    f"{timeout_s:g} s"
                )
            time.sleep(poll_s)
