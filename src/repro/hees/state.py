"""Shared step-result bookkeeping for all HEES architectures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class HEESStepResult:
    """Uniform outcome of one HEES step, for any architecture.

    Attributes
    ----------
    requested_power_w:
        Bus power the EV asked for [W].
    delivered_power_w:
        Bus power actually delivered [W] (current limits / depleted storage
        can leave a shortfall).
    battery_power_w:
        Power at the battery terminals [W] (positive = discharge).
    ultracap_power_w:
        Power at the ultracapacitor terminals [W] (positive = discharge).
    battery_cell_current_a:
        Per-cell battery current [A].
    battery_heat_w:
        Heat generated in the pack [W] (input to Eq. 14).
    chem_energy_j:
        dE_bat of Eq. 19: energy drawn from the battery chemistry [J].
    cap_energy_j:
        dE_cap of Eq. 19: energy drawn from the ultracapacitor [J]
        (negative while recharging).
    converter_loss_j:
        Energy dissipated in DC/DC conversion this step [J].
    loss_increment_percent:
        Battery capacity loss added this step [%] (Eq. 5).
    unmet_power_w:
        Shortfall between request and delivery [W] (>= 0 for discharge
        requests).
    notes:
        Architecture-specific annotations (e.g. dual-mode name).
    """

    requested_power_w: float
    delivered_power_w: float
    battery_power_w: float
    ultracap_power_w: float
    battery_cell_current_a: float
    battery_heat_w: float
    chem_energy_j: float
    cap_energy_j: float
    converter_loss_j: float
    loss_increment_percent: float
    unmet_power_w: float = 0.0
    notes: dict = field(default_factory=dict)

    @property
    def hees_energy_j(self) -> float:
        """dE_bat + dE_cap, the HEES term of the paper's cost Eq. 19 [J]."""
        return self.chem_energy_j + self.cap_energy_j


@dataclass(frozen=True)
class HEESStepBatch:
    """Vectorized :class:`HEESStepResult`: one array entry per scenario.

    Produced by the lockstep plant twins (``ParallelHEESVec`` & co.); field
    meanings match the scalar result.  The per-step ``notes`` dict is
    dropped - it exists for scalar-trace debugging only and is not recorded
    by the simulation engine.
    """

    requested_power_w: np.ndarray
    delivered_power_w: np.ndarray
    battery_power_w: np.ndarray
    ultracap_power_w: np.ndarray
    battery_cell_current_a: np.ndarray
    battery_heat_w: np.ndarray
    chem_energy_j: np.ndarray
    cap_energy_j: np.ndarray
    converter_loss_j: np.ndarray
    loss_increment_percent: np.ndarray
    unmet_power_w: np.ndarray
