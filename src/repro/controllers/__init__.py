"""Thermal/energy management policies.

The three state-of-the-art baselines the paper compares against
(Section IV-B) live here; the paper's own contribution (OTEM) lives in
:mod:`repro.core`.

Public API
----------
``Observation`` / ``Decision`` / ``Controller``
    The controller interface consumed by :class:`repro.sim.Simulator`.
``ParallelPassiveController``
    Baseline [15]: passive parallel architecture, no management.
``CoolingOnlyController``
    Baseline [25]: battery only + thermostatic active cooling.
``DualThresholdController``
    Baseline [16]: dual architecture, temperature-threshold switching.
``NoisyObservations`` / ``CoolingFailure``
    Robustness / failure-injection wrappers around any policy.
``build_batched_controller`` / ``BatchDecision``
    Struct-of-arrays twins of the four baselines for the lockstep engine
    (:mod:`repro.sim.engine_vec`).
"""

from repro.controllers.base import Architecture, Controller, Decision, Observation
from repro.controllers.parallel_passive import ParallelPassiveController
from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.dual_threshold import DualThresholdController
from repro.controllers.wrappers import CoolingFailure, NoisyObservations
from repro.controllers.heuristic import HybridHeuristicController
from repro.controllers.batched import BatchDecision, build_batched_controller

__all__ = [
    "HybridHeuristicController",
    "BatchDecision",
    "build_batched_controller",
    "Architecture",
    "Controller",
    "Decision",
    "Observation",
    "ParallelPassiveController",
    "CoolingOnlyController",
    "DualThresholdController",
    "CoolingFailure",
    "NoisyObservations",
]
