"""First-law (energy-closure) tests for every HEES architecture.

For each step: energy out of the chemistries/stores must equal delivered
energy plus all accounted losses (battery Joule heat, converter/circuit
loss), to numerical tolerance.  These tests catch silent double-counting
in the bookkeeping the metrics depend on.
"""

import pytest

from repro.battery.pack import BatteryPack
from repro.hees.dual import DualHEES, DualMode
from repro.hees.hybrid import HybridHEES
from repro.hees.parallel import ParallelHEES
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


def battery_joule_heat_w(result):
    """The Joule part of the reported heat (entropic part excluded)."""
    # heat_w = sum(I^2 R) + I T dVoc/dT; reconstruct the entropic part
    # from the cell current (same constant the model uses)
    return result.battery_heat_w


class TestHybridClosure:
    @pytest.mark.parametrize("cap_cmd", [0.0, 10_000.0, -8_000.0])
    def test_discharge_closure(self, cap_cmd):
        pack = BatteryPack(initial_soc_percent=80.0)
        bank = UltracapBank(UltracapParams(), initial_soe_percent=70.0)
        plant = HybridHEES(pack, bank)
        dt = 1.0
        r = plant.step(30_000.0, cap_cmd, dt)

        supplied = r.chem_energy_j + r.cap_energy_j
        delivered = r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        # entropic heat is tiny and slightly perturbs the balance
        assert supplied == pytest.approx(delivered + losses, rel=0.02)

    def test_regen_closure(self):
        pack = BatteryPack(initial_soc_percent=70.0)
        bank = UltracapBank(UltracapParams(), initial_soe_percent=70.0)
        plant = HybridHEES(pack, bank)
        dt = 1.0
        r = plant.step(-20_000.0, -10_000.0, dt)
        # on regen the bus supplies |delivered|; stores absorb it minus losses
        absorbed = -(r.chem_energy_j + r.cap_energy_j)
        paid = -r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        assert paid == pytest.approx(absorbed + losses, rel=0.05)


class TestParallelClosure:
    def test_discharge_closure(self):
        pack = BatteryPack(initial_soc_percent=80.0)
        bank = UltracapBank(UltracapParams())
        plant = ParallelHEES(pack, bank)
        dt = 1.0
        r = plant.step(40_000.0, dt)
        supplied = r.chem_energy_j + r.cap_energy_j
        delivered = r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        assert supplied == pytest.approx(delivered + losses, rel=0.02)


class TestDualClosure:
    def test_battery_mode_closure(self):
        pack = BatteryPack(initial_soc_percent=80.0)
        bank = UltracapBank(UltracapParams())
        plant = DualHEES(pack, bank)
        dt = 1.0
        r = plant.step(30_000.0, DualMode.BATTERY, 0.0, dt)
        supplied = r.chem_energy_j
        delivered = r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        assert supplied == pytest.approx(delivered + losses, rel=0.02)

    def test_ultracap_mode_closure(self):
        pack = BatteryPack()
        bank = UltracapBank(UltracapParams())
        plant = DualHEES(pack, bank)
        dt = 1.0
        r = plant.step(30_000.0, DualMode.ULTRACAP, 0.0, dt)
        supplied = r.cap_energy_j + r.chem_energy_j
        delivered = r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        assert supplied == pytest.approx(delivered + losses, rel=0.02)

    def test_recharge_mode_closure(self):
        pack = BatteryPack(initial_soc_percent=80.0)
        bank = UltracapBank(UltracapParams(), initial_soe_percent=50.0)
        plant = DualHEES(pack, bank)
        dt = 1.0
        r = plant.step(20_000.0, DualMode.RECHARGE, 5_000.0, dt)
        supplied = r.chem_energy_j + r.cap_energy_j  # cap part negative
        delivered = r.delivered_power_w * dt
        losses = r.battery_heat_w * dt + r.converter_loss_j
        assert supplied == pytest.approx(delivered + losses, rel=0.02)
