#!/usr/bin/env python
"""Monte-Carlo robustness: does the comparison survive traffic variation?

The paper evaluates on the nominal drive cycles.  Real traffic never
replays a cycle exactly, so this example re-runs the methodology
comparison over a deterministic ensemble of traffic-perturbed variants
(see ``repro.drivecycle.perturb``) and reports the distribution of the
capacity-loss ratio - checking that OTEM's win is not an artifact of one
specific speed trace.

The (member x methodology) ensemble is a plain scenario grid
(``Scenario(perturb_seed=...)``) executed by :func:`repro.run_batch`, so
it fans out over worker processes and caches per-member results.

Usage::

    python examples/monte_carlo_robustness.py [cycle] [members] [workers]
"""

import sys

import numpy as np

from repro import Scenario, run_batch, scenario_grid
from repro.sim.batch import ResultCache

METHODS = ("parallel", "dual", "otem")


def main():
    cycle = sys.argv[1] if len(sys.argv) > 1 else "us06"
    members = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    grid = scenario_grid(
        Scenario(cycle=cycle, repeat=2),
        perturb_seed=range(members),
        methodology=METHODS,
    )
    batch = run_batch(
        grid, workers=workers, cache=ResultCache()
    ).raise_on_failure()

    qloss = {seed: {} for seed in range(members)}
    for cell in batch.cells:
        qloss[cell.scenario.perturb_seed][cell.scenario.methodology] = (
            cell.metrics.qloss_percent
        )

    print(
        f"Ensemble: {members} traffic variants of {cycle} "
        f"({len(grid)} cells, {workers or 1} worker(s), "
        f"{batch.cache_hits} cached, {batch.wall_s:.1f} s)"
    )
    ratios_otem = []
    ratios_dual = []
    for seed in range(members):
        base_q = qloss[seed]["parallel"]
        ratios_otem.append(qloss[seed]["otem"] / base_q)
        ratios_dual.append(qloss[seed]["dual"] / base_q)
        print(
            f"  {cycle}~{seed:<3}: parallel {base_q:.4f}%  "
            f"dual {100 * ratios_dual[-1]:5.1f}%  otem {100 * ratios_otem[-1]:5.1f}%"
        )

    print()
    print(
        f"OTEM capacity-loss ratio: {100 * np.mean(ratios_otem):.1f}% "
        f"+/- {100 * np.std(ratios_otem):.1f}% of parallel "
        f"(worst member {100 * np.max(ratios_otem):.1f}%)"
    )
    print(
        f"Dual capacity-loss ratio: {100 * np.mean(ratios_dual):.1f}% "
        f"+/- {100 * np.std(ratios_dual):.1f}%"
    )
    if max(ratios_otem) < 1.0:
        print("OTEM beats the parallel baseline on every ensemble member.")


if __name__ == "__main__":
    main()
