"""Baseline-controller policy tests."""

import numpy as np
import pytest

from repro.controllers.base import Architecture, Decision, Observation
from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.dual_threshold import DualThresholdController
from repro.controllers.parallel_passive import ParallelPassiveController
from repro.hees.dual import DualMode


def make_obs(temp_k=298.0, soe=100.0, soc=90.0, power=10_000.0, time_s=0.0):
    return Observation(
        step_index=0,
        time_s=time_s,
        dt=1.0,
        power_request_w=power,
        preview_w=np.full(10, power),
        battery_soc_percent=soc,
        battery_temp_k=temp_k,
        coolant_temp_k=temp_k,
        cap_soe_percent=soe,
    )


class TestParallelPassive:
    def test_declares_parallel_architecture(self):
        c = ParallelPassiveController()
        assert c.architecture is Architecture.PARALLEL
        assert not c.uses_cooling

    def test_no_commands(self):
        d = ParallelPassiveController().control(make_obs())
        assert not d.cooling_active
        assert d.cap_bus_w == 0.0

    def test_reset_is_safe(self):
        c = ParallelPassiveController()
        c.reset()
        assert isinstance(c.control(make_obs()), Decision)


class TestCoolingOnly:
    def test_declares_battery_only(self):
        c = CoolingOnlyController()
        assert c.architecture is Architecture.BATTERY_ONLY
        assert c.uses_cooling

    def test_off_when_cool(self):
        c = CoolingOnlyController()
        d = c.control(make_obs(temp_k=295.0))
        assert not d.cooling_active

    def test_engages_when_hot(self):
        c = CoolingOnlyController()
        d = c.control(make_obs(temp_k=305.0))
        assert d.cooling_active
        assert d.inlet_temp_k == pytest.approx(288.15)

    def test_hysteresis_keeps_cooling(self):
        c = CoolingOnlyController()
        c.control(make_obs(temp_k=305.0))          # engage
        d = c.control(make_obs(temp_k=297.5))      # between off and on
        assert d.cooling_active

    def test_disengages_below_off_threshold(self):
        c = CoolingOnlyController()
        c.control(make_obs(temp_k=305.0))
        d = c.control(make_obs(temp_k=295.0))
        assert not d.cooling_active

    def test_reset_disengages(self):
        c = CoolingOnlyController()
        c.control(make_obs(temp_k=305.0))
        c.reset()
        assert not c.is_cooling

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            CoolingOnlyController(temp_on_k=298.0, temp_off_k=299.0)


class TestDualThreshold:
    def test_declares_dual(self):
        c = DualThresholdController()
        assert c.architecture is Architecture.DUAL
        assert not c.uses_cooling

    def test_battery_mode_when_cool_and_full(self):
        c = DualThresholdController()
        d = c.control(make_obs(temp_k=298.0, soe=100.0))
        assert d.dual_mode is DualMode.BATTERY

    def test_switches_to_cap_when_hot(self):
        c = DualThresholdController()
        d = c.control(make_obs(temp_k=310.0, soe=100.0))
        assert d.dual_mode is DualMode.ULTRACAP
        assert c.is_on_ultracap

    def test_no_switch_with_depleted_cap(self):
        c = DualThresholdController()
        d = c.control(make_obs(temp_k=310.0, soe=21.0))
        assert d.dual_mode is not DualMode.ULTRACAP

    def test_reverts_when_cap_depletes(self):
        c = DualThresholdController()
        c.control(make_obs(temp_k=310.0, soe=100.0))
        d = c.control(make_obs(temp_k=310.0, soe=21.0))
        assert d.dual_mode is not DualMode.ULTRACAP

    def test_reverts_when_cooled(self):
        c = DualThresholdController()
        c.control(make_obs(temp_k=310.0, soe=100.0))
        d = c.control(make_obs(temp_k=300.0, soe=80.0))
        assert d.dual_mode is not DualMode.ULTRACAP

    def test_hysteresis_stays_on_cap(self):
        c = DualThresholdController()
        c.control(make_obs(temp_k=310.0, soe=100.0))
        d = c.control(make_obs(temp_k=305.0, soe=80.0))  # between resume/switch
        assert d.dual_mode is DualMode.ULTRACAP

    def test_recharges_when_cool_and_low(self):
        c = DualThresholdController()
        d = c.control(make_obs(temp_k=298.0, soe=50.0))
        assert d.dual_mode is DualMode.RECHARGE
        assert d.recharge_power_w > 0

    def test_no_recharge_when_hot(self):
        c = DualThresholdController(recharge_temp_max_k=306.15)
        d = c.control(make_obs(temp_k=306.5, soe=50.0))
        assert d.dual_mode is DualMode.BATTERY

    def test_no_recharge_when_full(self):
        c = DualThresholdController()
        d = c.control(make_obs(temp_k=298.0, soe=99.0))
        assert d.dual_mode is DualMode.BATTERY

    def test_reset(self):
        c = DualThresholdController()
        c.control(make_obs(temp_k=310.0, soe=100.0))
        c.reset()
        assert not c.is_on_ultracap

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            DualThresholdController(temp_switch_k=300.0, temp_resume_k=305.0)

    def test_rejects_bad_soe_window(self):
        with pytest.raises(ValueError):
            DualThresholdController(soe_floor_percent=90.0, soe_target_percent=50.0)
