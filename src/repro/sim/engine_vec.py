"""Lockstep multi-scenario simulation engine.

The scalar :class:`repro.sim.engine.Simulator` advances one scenario at a
time; batch sweeps (Monte-Carlo ensembles, bank-size grids) run the same
controller over dozens of near-identical routes.  This module advances all
of them *simultaneously*: every piece of state (SoC, SoE, temperatures,
thermostat latches) is a struct-of-arrays column vector and each timestep is
one NumPy pass over the whole batch, so the Python interpreter executes one
loop iteration per *timestep* instead of one per timestep per scenario.

Equivalence contract
--------------------
Every model twin (``BatteryPackVec``, ``UltracapBankVec``, the plant and
cooling twins, the batched policies) mirrors its scalar counterpart
expression-for-expression, with branches re-expressed as ``np.where`` masks
that never round-trip untouched state.  A column of a lockstep run is
therefore bitwise-identical to the scalar run of that scenario - verified
channel-by-channel in ``tests/sim/test_engine_vec.py`` - except for two
bookkeeping-only channels (``loss_increment_percent``, ``converter_loss_j``)
where NumPy's vectorized and scalar libm paths can round ``pow``/``exp``
one ulp apart (~1e-15 relative); neither feeds back into the dynamics, so
the difference never cascades.

Scope
-----
The four baseline methodologies vectorize unconditionally: their policies
are closed-form per step.  OTEM vectorizes too
(:class:`repro.controllers.batched.BatchedOTEM` +
:class:`repro.core.mpc.MPCPlannerVec` solve every column's horizon in one
lockstep wave) - but only for scenarios that request
``rollout_backend="vectorized"``: a lockstep OTEM column reproduces the
scalar engine running that scenario *with the vectorized solver backend*,
so routing a scalar-backend scenario here would silently change which
reference it matches.  Scalar-backend OTEM cells therefore stay on the
scalar engine (:func:`lockstep_supported` refuses them).  Scenarios mix
freely within a group as long as the architecture-defining fields match
(:func:`lockstep_key` - which for OTEM also pins the solver shape);
cycle lengths may be ragged - columns are zero-padded to the longest
route and truncated on output, which is exact because no operation
couples columns.
"""

from __future__ import annotations

import numpy as np

from repro.battery.pack import BatteryPackVec
from repro.controllers.base import Architecture
from repro.controllers.batched import (
    BATCHED_CONTROLLERS,
    BatchedOTEM,
    build_batched_controller,
)
from repro.cooling.loop import CoolingLoop
from repro.drivecycle.library import get_cycle
from repro.hees.dual import DualHEESVec
from repro.hees.hybrid import (
    HybridHEESVec,
    default_battery_converter,
    default_cap_converter,
)
from repro.hees.parallel import ParallelHEESVec
from repro.sim.engine import SimulationResult
from repro.sim.metrics import compute_metrics
from repro.sim.scenario import Scenario
from repro.sim.trace import CHANNELS, Trace
from repro.ultracap.bank import UltracapBank, UltracapBankVec
from repro.vehicle.powertrain import Powertrain, PowerRequest

#: Methodologies the lockstep engine can vectorize: the closed-form
#: baselines plus OTEM (batched MPC - see :func:`lockstep_supported` for
#: the per-scenario backend condition).
LOCKSTEP_METHODOLOGIES = frozenset(BATCHED_CONTROLLERS) | {"otem"}


def lockstep_supported(scenario: Scenario) -> bool:
    """Whether ``scenario`` can run on the lockstep engine.

    Baselines qualify unconditionally.  OTEM qualifies only with
    ``rollout_backend="vectorized"``: the lockstep MPC solves on the
    batched kernel, so a scalar-backend scenario routed here would
    silently switch solver backends - that choice stays with the
    scenario, not the engine.
    """
    if scenario.methodology == "otem":
        return scenario.rollout_backend == "vectorized"
    return scenario.methodology in LOCKSTEP_METHODOLOGIES


def lockstep_key(scenario: Scenario):
    """Grouping key: scenarios sharing it can share one lockstep batch.

    The methodology fixes the controller and plant twin; the pack layout is
    shared pack state; the coolant parametrizes the loop and the batched
    thermostats.  Bank size, vehicle, initial temperature, cycle, repeat
    count, and perturbation seed all vary freely per column.  OTEM cells
    additionally pin the solver shape (weights, horizon, step, budget):
    :class:`repro.core.mpc.MPCPlannerVec` solves the group's horizons as
    one wave, so those knobs must be uniform within a group.
    """
    key = (scenario.methodology, scenario.pack, scenario.coolant)
    if scenario.methodology == "otem":
        key += (
            scenario.weights,
            scenario.mpc_horizon,
            scenario.mpc_step_s,
            scenario.mpc_max_evals,
        )
    return key


def build_request(scenario: Scenario) -> PowerRequest:
    """The power-request trace ``scenario`` implies (as in ``run_scenario``)."""
    cycle = get_cycle(scenario.cycle, repeat=scenario.repeat)
    if scenario.perturb_seed is not None:
        from repro.drivecycle.perturb import perturbed

        cycle = perturbed(cycle, scenario.perturb_seed)
    return Powertrain(scenario.vehicle).power_request(cycle)


def _build_plant(arch: Architecture, scenarios, pack, bank):
    if arch is Architecture.PARALLEL:
        return ParallelHEESVec(pack, bank)
    if arch is Architecture.DUAL or arch is Architecture.BATTERY_ONLY:
        return DualHEESVec(pack, bank)
    if arch is Architecture.HYBRID:
        # one converter pair serves the whole group: every bank produced by
        # bank_of_farads shares the module rating the cap converter is
        # built from, and the pack layout is a group key
        ratings = {
            (p.rated_voltage_v, p.max_power_w)
            for p in (s.cap_params() for s in scenarios)
        }
        if len(ratings) > 1:
            raise ValueError(
                "hybrid lockstep group mixes bank module ratings; "
                "run these scenarios on the scalar engine"
            )
        ref_bank = UltracapBank(scenarios[0].cap_params())
        return HybridHEESVec(
            pack,
            bank,
            battery_converter=default_battery_converter(pack),
            cap_converter=default_cap_converter(ref_bank),
        )
    raise ValueError(f"unknown architecture {arch}")


def run_lockstep_group(
    scenarios: list[Scenario], requests: list[PowerRequest] | None = None
) -> list[SimulationResult]:
    """Advance one homogeneous group of scenarios in lockstep.

    All scenarios must share :func:`lockstep_key` and their requests must
    share ``dt`` (use :func:`run_lockstep` to group arbitrary sets).
    Returns one :class:`SimulationResult` per scenario, index-aligned.
    """
    if not scenarios:
        return []
    if requests is None:
        requests = [build_request(s) for s in scenarios]
    first = scenarios[0]
    if any(lockstep_key(s) != lockstep_key(first) for s in scenarios):
        raise ValueError("lockstep group mixes methodology/pack/coolant")
    dt = requests[0].dt
    if any(r.dt != dt for r in requests):
        raise ValueError("lockstep group mixes sample periods")

    m = len(scenarios)
    lengths = np.array([len(r) for r in requests])
    t_max = int(lengths.max())
    # ragged routes: zero-pad to the longest column; finished columns keep
    # simulating at zero request (no cross-column coupling) and their trace
    # is truncated below, so the padding never leaks into results
    power = np.zeros((t_max, m))
    for j, r in enumerate(requests):
        power[: len(r), j] = r.power_w

    if first.methodology == "otem":
        controller = BatchedOTEM.from_scenarios(scenarios)
    else:
        controller = build_batched_controller(first.methodology, first.coolant)
    controller.reset(m)
    is_mpc = getattr(controller, "is_mpc", False)
    arch = controller.architecture

    pack = BatteryPackVec(
        first.pack,
        initial_soc_percent=100.0,
        initial_temp_k=np.array([s.initial_temp_k for s in scenarios]),
    )
    bank = UltracapBankVec(
        [s.cap_params() for s in scenarios], initial_soe_percent=100.0
    )
    plant = _build_plant(arch, scenarios, pack, bank)
    loop = CoolingLoop(first.coolant, first.pack.heat_capacity_j_per_k)

    coolant_temp = pack.temp_k.copy()
    passive = arch in (Architecture.PARALLEL, Architecture.DUAL)
    battery_only_mode = np.full(m, DualHEESVec.MODE_BATTERY, dtype=np.int64)
    zeros = np.zeros(m)
    if is_mpc:
        controller.begin_route(power, dt, lengths=lengths)

    buf = {name: np.empty((t_max, m)) for name in CHANNELS}

    for k in range(t_max):
        p_e = power[k]
        if is_mpc:
            decision = controller.control_mpc(
                k,
                pack.temp_k,
                coolant_temp,
                np.broadcast_to(np.asarray(pack.soc_percent, dtype=float), (m,)),
                bank.soe_percent,
            )
        else:
            decision = controller.control(p_e, pack.temp_k, bank.soe_percent)

        # price the cooling command before the plant step (the cooler
        # draws from the HEES bus); per-column thermostats may disagree
        cooling_on = decision.cooling_active
        inlet = np.where(
            cooling_on,
            loop.clamp_inlet_batch(decision.inlet_temp_k, coolant_temp),
            coolant_temp,
        )
        cooling_power = np.where(
            cooling_on,
            loop.cooler_power_batch(inlet, coolant_temp)
            + first.coolant.pump_power_w,
            0.0,
        )

        total_request = p_e + cooling_power

        if arch is Architecture.PARALLEL:
            step = plant.step(total_request, dt)
        elif arch is Architecture.DUAL:
            step = plant.step(
                total_request, decision.dual_mode, decision.recharge_power_w, dt
            )
        elif arch is Architecture.BATTERY_ONLY:
            step = plant.step(total_request, battery_only_mode, zeros, dt)
        else:  # HYBRID
            step = plant.step(total_request, decision.cap_bus_w, dt)

        thermal = loop.step_batch(
            pack.temp_k,
            coolant_temp,
            inlet,
            step.battery_heat_w,
            dt,
            cooling_active=cooling_on,
            passive_ambient=passive,
        )
        pack.set_temperature(thermal.battery_temp_k)
        coolant_temp = thermal.coolant_temp_k

        buf["time_s"][k] = k * dt
        buf["request_w"][k] = p_e
        buf["delivered_w"][k] = step.delivered_power_w
        buf["battery_power_w"][k] = step.battery_power_w
        buf["cap_power_w"][k] = step.ultracap_power_w
        buf["cooling_power_w"][k] = thermal.cooler_power_w + thermal.pump_power_w
        buf["battery_soc_percent"][k] = pack.soc_percent
        buf["cap_soe_percent"][k] = bank.soe_percent
        buf["battery_temp_k"][k] = pack.temp_k
        buf["coolant_temp_k"][k] = coolant_temp
        buf["inlet_temp_k"][k] = thermal.inlet_temp_k
        buf["heat_w"][k] = step.battery_heat_w
        buf["cell_current_a"][k] = step.battery_cell_current_a
        buf["chem_energy_j"][k] = step.chem_energy_j
        buf["cap_energy_j"][k] = step.cap_energy_j
        buf["converter_loss_j"][k] = step.converter_loss_j
        buf["loss_increment_percent"][k] = step.loss_increment_percent
        buf["unmet_w"][k] = step.unmet_power_w

    solver_stats = controller.solver_stats() if is_mpc else None
    results = []
    for j, request in enumerate(requests):
        n = int(lengths[j])
        trace = Trace(
            **{name: buf[name][:n, j].copy() for name in CHANNELS}
        )
        results.append(
            SimulationResult(
                controller_name=controller.name,
                cycle_name=request.cycle_name,
                trace=trace,
                metrics=compute_metrics(trace),
                solver=solver_stats[j] if solver_stats is not None else None,
            )
        )
    return results


def run_lockstep(scenarios) -> list[SimulationResult]:
    """Run any mix of lockstep-supported scenarios, grouping automatically.

    Scenarios are bucketed by :func:`lockstep_key` plus sample period; each
    bucket advances as one batch.  Returns results index-aligned with the
    input.  Raises ``ValueError`` if any scenario is not lockstep-capable
    (callers decide the fallback - see ``repro.sim.batch``).
    """
    scenarios = list(scenarios)
    for s in scenarios:
        if not lockstep_supported(s):
            if s.methodology == "otem":
                raise ValueError(
                    "lockstep OTEM requires rollout_backend='vectorized' "
                    f"(got {s.rollout_backend!r}); scalar-backend MPC cells "
                    "run on the scalar engine"
                )
            raise ValueError(
                f"methodology {s.methodology!r} has no batched policy; "
                "run it on the scalar engine"
            )
    requests = [build_request(s) for s in scenarios]
    groups: dict[tuple, list[int]] = {}
    for i, (s, r) in enumerate(zip(scenarios, requests)):
        groups.setdefault((*lockstep_key(s), r.dt), []).append(i)
    results: list[SimulationResult | None] = [None] * len(scenarios)
    for indices in groups.values():
        out = run_lockstep_group(
            [scenarios[i] for i in indices], [requests[i] for i in indices]
        )
        for i, res in zip(indices, out):
            results[i] = res
    return results
