"""Multi-node pack thermal model tests."""

import numpy as np
import pytest

from repro.battery.pack import DEFAULT_PACK
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop
from repro.cooling.multinode import MultiNodeCoolingLoop

CB = DEFAULT_PACK.heat_capacity_j_per_k


def run_multinode(loop, temp0, inlet, heat, steps, dt=1.0, cooling=True):
    state = loop.initial_state(temp0)
    for _ in range(steps):
        state = loop.step(state, inlet, heat, dt, cooling_active=cooling)
    return state


class TestConstruction:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            MultiNodeCoolingLoop(nodes=0)

    def test_initial_state_uniform(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        state = loop.initial_state(300.0)
        assert np.all(state.battery_temps_k == 300.0)
        assert state.gradient_k == 0.0


class TestReductionToLumped:
    """With one node the segmented model must equal the lumped loop."""

    @pytest.mark.parametrize("cooling", [True, False])
    def test_single_node_matches_lumped(self, cooling):
        lumped = CoolingLoop(DEFAULT_COOLANT, CB)
        multi = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=1)

        tb, tc = 305.0, 305.0
        state = multi.initial_state(305.0)
        for _ in range(120):
            r = lumped.step(tb, tc, 290.0, 2_000.0, 1.0, cooling_active=cooling)
            tb, tc = r.battery_temp_k, r.coolant_temp_k
            state = multi.step(state, 290.0, 2_000.0, 1.0, cooling_active=cooling)

        assert state.battery_temps_k[0] == pytest.approx(tb, abs=1e-9)
        assert state.coolant_temps_k[0] == pytest.approx(tc, abs=1e-9)


class TestSpatialStructure:
    def test_downstream_runs_hotter(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        state = run_multinode(loop, 305.0, 290.0, 2_500.0, 600)
        temps = state.battery_temps_k
        assert np.all(np.diff(temps) > 0)  # monotone along the flow path

    def test_hot_spot_exceeds_mean(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=6)
        state = run_multinode(loop, 305.0, 290.0, 2_500.0, 600)
        assert state.max_battery_temp_k > state.mean_battery_temp_k

    def test_gradient_grows_with_heat(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        mild = run_multinode(loop, 300.0, 290.0, 500.0, 600)
        hard = run_multinode(loop, 300.0, 290.0, 4_000.0, 600)
        assert hard.gradient_k > mild.gradient_k

    def test_no_gradient_without_cooling_flow(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        state = run_multinode(loop, 300.0, 290.0, 2_000.0, 300, cooling=False)
        assert state.gradient_k == pytest.approx(0.0, abs=1e-6)

    def test_lumped_model_conservative_on_mean_optimistic_on_hotspot(self):
        """Textbook exchanger behaviour the segmentation exposes.

        A single well-mixed node has lower heat-exchange effectiveness
        than a discretized path, so the lumped model over-predicts the
        *mean* temperature (conservative) - but it cannot see the
        downstream hot spot, which can exceed its prediction.
        """
        lumped = CoolingLoop(DEFAULT_COOLANT, CB)
        multi = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=6)
        tb, tc = 305.0, 305.0
        state = multi.initial_state(305.0)
        for _ in range(600):
            r = lumped.step(tb, tc, 290.0, 2_500.0, 1.0)
            tb, tc = r.battery_temp_k, r.coolant_temp_k
            state = multi.step(state, 290.0, 2_500.0, 1.0)
        assert state.mean_battery_temp_k <= tb + 0.1          # conservative mean
        assert state.max_battery_temp_k > tb                  # hidden hot spot
        assert state.mean_battery_temp_k == pytest.approx(tb, abs=4.0)


class TestEnergyAndSafety:
    def test_adiabatic_energy_balance(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        heat, steps = 2_000.0, 500
        state = run_multinode(loop, 298.0, 298.0, heat, steps, cooling=False)
        stored = CB / 4 * np.sum(state.battery_temps_k - 298.0) + (
            DEFAULT_COOLANT.coolant_heat_capacity_j_per_k / 4
        ) * np.sum(state.coolant_temps_k - 298.0)
        assert stored == pytest.approx(heat * steps, rel=1e-9)

    def test_cooler_power_within_ceiling(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=4)
        state = run_multinode(loop, 320.0, 280.0, 3_000.0, 50)
        assert state.cooler_power_w <= DEFAULT_COOLANT.max_cooler_power_w * (1 + 1e-9)

    def test_rejects_nonpositive_dt(self):
        loop = MultiNodeCoolingLoop(DEFAULT_COOLANT, CB, nodes=2)
        with pytest.raises(ValueError):
            loop.step(loop.initial_state(300.0), 290.0, 0.0, 0.0)
