#!/usr/bin/env python
"""Pack hot-spot analysis with the multi-node thermal model.

The simulation engine (like the paper) lump-models the pack. This example
replays a simulated route's heat profile through the segmented
:class:`MultiNodeCoolingLoop` and reports how much hotter the downstream
cells run than the lumped model believes - the margin a thermal engineer
must add to the C1 limit.

Usage::

    python examples/hotspot_analysis.py [methodology] [cycle] [nodes]
"""

import sys

import numpy as np

from repro import Scenario, run_scenario
from repro.battery.pack import DEFAULT_PACK
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.multinode import MultiNodeCoolingLoop
from repro.controllers.base import Architecture
from repro.sim.scenario import build_controller
from repro.utils.units import kelvin_to_celsius


def main():
    methodology = sys.argv[1] if len(sys.argv) > 1 else "otem"
    cycle = sys.argv[2] if len(sys.argv) > 2 else "us06"
    nodes = int(sys.argv[3]) if len(sys.argv) > 3 else 6

    print(f"Simulating {methodology} on {cycle} x2 (lumped engine) ...")
    scenario = Scenario(methodology=methodology, cycle=cycle, repeat=2)
    result = run_scenario(scenario)
    trace = result.trace

    arch = build_controller(scenario).architecture
    cooling_installed = arch in (Architecture.HYBRID, Architecture.BATTERY_ONLY)

    print(f"Replaying the heat profile through {nodes} thermal segments ...")
    loop = MultiNodeCoolingLoop(
        DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k, nodes=nodes
    )
    state = loop.initial_state(trace.battery_temp_k[0])
    max_hotspot = 0.0
    max_gradient = 0.0
    worst_underestimate = 0.0
    for i in range(len(trace)):
        active = cooling_installed and trace.cooling_power_w[i] > 0
        state = loop.step(
            state,
            trace.inlet_temp_k[i],
            trace.heat_w[i],
            trace.dt,
            cooling_active=active,
        )
        max_hotspot = max(max_hotspot, state.max_battery_temp_k)
        max_gradient = max(max_gradient, state.gradient_k)
        worst_underestimate = max(
            worst_underestimate,
            state.max_battery_temp_k - trace.battery_temp_k[i],
        )

    print()
    print(f"lumped peak temperature:    {kelvin_to_celsius(result.metrics.peak_temp_k):.1f} C")
    print(f"segmented hot-spot peak:    {kelvin_to_celsius(max_hotspot):.1f} C")
    print(f"max along-flow gradient:    {max_gradient:.1f} K")
    print(f"worst lumped underestimate: {worst_underestimate:.1f} K")
    print()
    print(
        "Design takeaway: keep the lumped C1 limit at least "
        f"{np.ceil(worst_underestimate):.0f} K below the true cell limit to "
        "cover the downstream hot spot."
    )


if __name__ == "__main__":
    main()
