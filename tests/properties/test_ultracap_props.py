"""Property-based tests for the ultracapacitor bank (Eq. 6-9, C5/C7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams, bank_of_farads

soe = st.floats(min_value=0.0, max_value=100.0)
power = st.floats(min_value=-80_000.0, max_value=80_000.0)
dt = st.floats(min_value=0.1, max_value=60.0)
farads = st.floats(min_value=1_000.0, max_value=50_000.0)


class TestVoltageLaw:
    @given(soe)
    def test_voltage_bounded_by_rating(self, s):
        bank = UltracapBank(UltracapParams(), initial_soe_percent=100.0)
        assert 0.0 <= bank.voltage(s) <= bank.params.rated_voltage_v + 1e-9

    @given(st.floats(min_value=0.0, max_value=99.0))
    def test_voltage_monotone_in_soe(self, s):
        bank = UltracapBank(UltracapParams())
        assert bank.voltage(s + 1.0) > bank.voltage(s)

    @given(farads)
    def test_energy_eq6(self, c):
        p = bank_of_farads(c)
        assert p.energy_capacity_j == pytest.approx(0.5 * c * p.rated_voltage_v**2)


class TestStepInvariants:
    @given(soe, power, dt)
    def test_soe_stays_in_window(self, s0, p, step):
        bank = UltracapBank(UltracapParams(), initial_soe_percent=s0)
        bank.apply_power(p, step)
        params = bank.params
        assert (
            min(s0, params.soe_min_percent) - 1e-6
            <= bank.soe_percent
            <= max(s0, params.soe_max_percent) + 1e-6
        )

    @given(soe, power, dt)
    def test_power_never_exceeds_rating(self, s0, p, step):
        bank = UltracapBank(UltracapParams(), initial_soe_percent=s0)
        result = bank.apply_power(p, step)
        assert abs(result.power_w) <= bank.params.max_power_w + 1e-9

    @given(soe, power, dt)
    def test_energy_bookkeeping_exact(self, s0, p, step):
        bank = UltracapBank(UltracapParams(), initial_soe_percent=s0)
        before = bank.energy_j
        result = bank.apply_power(p, step)
        assert before - bank.energy_j == pytest.approx(result.energy_j, abs=1e-6)

    @given(soe, st.floats(min_value=0.0, max_value=80_000.0), dt)
    def test_reserve_tap_respects_hard_floor(self, s0, p, step):
        bank = UltracapBank(UltracapParams(), initial_soe_percent=s0)
        bank.apply_power(p, step, tap_reserve=True)
        floor = min(s0, bank.params.soe_hard_min_percent)
        assert bank.soe_percent >= floor - 1e-6

    @given(
        st.floats(min_value=20.0, max_value=100.0),
        st.floats(min_value=100.0, max_value=60_000.0),
        dt,
    )
    def test_charge_discharge_roundtrip(self, s0, p, step):
        # start within the C5 window so the return discharge is not clipped
        bank = UltracapBank(UltracapParams(), initial_soe_percent=s0)
        r1 = bank.apply_power(-p, step)
        bank.apply_power(-r1.energy_j / step, step)
        # what went in comes back out (bank-level Eq. 9 is lossless)
        assert bank.soe_percent == pytest.approx(s0, abs=1e-6)
