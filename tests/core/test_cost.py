"""CostWeights validation tests."""

import pytest

from repro.core.cost import CostWeights


class TestDefaults:
    def test_energy_terms_symmetric(self):
        w = CostWeights()
        assert w.w1 == w.w3 == 1.0

    def test_aging_weight_dominant(self):
        # a percent of battery life must be worth many joules
        assert CostWeights().w2 > 1e9

    def test_terminal_refs_physical(self):
        w = CostWeights()
        assert 280.0 < w.terminal_temp_ref < 320.0
        assert 0.0 < w.terminal_soe_ref <= 100.0


class TestValidation:
    def test_rejects_negative_w1(self):
        with pytest.raises(ValueError):
            CostWeights(w1=-1.0)

    def test_rejects_zero_hinge(self):
        with pytest.raises(ValueError):
            CostWeights(hinge_temp=0.0)

    def test_rejects_bad_terminal_soe(self):
        with pytest.raises(ValueError):
            CostWeights(terminal_soe_ref=150.0)

    def test_rejects_zero_refill_power(self):
        with pytest.raises(ValueError):
            CostWeights(terminal_refill_power_w=0.0)

    def test_rejects_zero_future_time(self):
        with pytest.raises(ValueError):
            CostWeights(terminal_future_s=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostWeights().w1 = 5.0
