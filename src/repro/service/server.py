"""HTTP front end: stdlib ThreadingHTTPServer over the job manager.

Endpoints (all JSON unless noted):

* ``POST /sweeps`` - submit a sweep spec; 202 with the sweep id.
* ``GET /sweeps`` - list every known sweep (live + stored).
* ``GET /sweeps/<id>`` - status + progress of one sweep.
* ``GET /sweeps/<id>/rows`` - tidy rows (live partial or stored final);
  query parameters filter by row-field equality, e.g.
  ``?methodology=otem&cycle=nycc``.
* ``DELETE /sweeps/<id>`` - cancel a queued/running sweep.
* ``GET /healthz`` - liveness.
* ``GET /metrics`` - Prometheus-style text exposition: job states, cell
  counts, store hit rate, engine backend mix.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.service.jobs import JobManager
from repro.service.spec import SweepSpec
from repro.store import ExperimentStore

#: Default service port (overridable; tests bind port 0 for an ephemeral one).
DEFAULT_PORT = 8563


def render_metrics(metrics: dict) -> str:
    """Prometheus text exposition of :meth:`JobManager.metrics`."""
    lines = [
        "# TYPE repro_uptime_seconds gauge",
        f"repro_uptime_seconds {metrics['uptime_s']:.3f}",
        "# TYPE repro_jobs gauge",
    ]
    for state, n in sorted(metrics["jobs"].items()):
        lines.append(f'repro_jobs{{state="{state}"}} {n}')
    lines += [
        "# TYPE repro_cells_done counter",
        f"repro_cells_done {metrics['cells']['done']}",
        "# TYPE repro_cells_failed counter",
        f"repro_cells_failed {metrics['cells']['failed']}",
        "# TYPE repro_engine_cells counter",
    ]
    for backend, n in sorted(metrics["engine_backends"].items()):
        lines.append(f'repro_engine_cells{{backend="{backend}"}} {n}')
    store = metrics["store"]
    lines += [
        "# TYPE repro_store_cells gauge",
        f"repro_store_cells {store['cells']}",
        "# TYPE repro_store_bytes gauge",
        f"repro_store_bytes {store['bytes']}",
        "# TYPE repro_store_hits counter",
        f"repro_store_hits {store['hits']}",
        "# TYPE repro_store_misses counter",
        f"repro_store_misses {store['misses']}",
        "# TYPE repro_store_hit_rate gauge",
        f"repro_store_hit_rate {store['hit_rate']:.6f}",
        "# TYPE repro_store_quarantined counter",
        f"repro_store_quarantined {store['quarantined']}",
        "# TYPE repro_store_evicted counter",
        f"repro_store_evicted {store['evicted']}",
    ]
    return "\n".join(lines) + "\n"


class _SweepRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-sweeps/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, obj) -> None:
        body = json.dumps(obj, sort_keys=True).encode()
        self._send(code, body, "application/json")

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body (expected a JSON sweep spec)")
        return json.loads(raw)

    # ------------------------------------------------------------------ #
    # routing

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
        elif parts == ["metrics"]:
            body = render_metrics(self.manager.metrics()).encode()
            self._send(200, body, "text/plain; version=0.0.4")
        elif parts == ["sweeps"]:
            self._send_json(200, {"sweeps": self.manager.list()})
        elif len(parts) == 2 and parts[0] == "sweeps":
            record = self.manager.get(parts[1])
            if record is None:
                self._error(404, f"unknown sweep {parts[1]!r}")
            else:
                self._send_json(200, record)
        elif len(parts) == 3 and parts[0] == "sweeps" and parts[2] == "rows":
            filters = dict(parse_qsl(url.query))
            payload = self.manager.rows(parts[1], filters)
            if payload is None:
                self._error(404, f"unknown sweep {parts[1]!r}")
            else:
                self._send_json(200, payload)
        else:
            self._error(404, f"no route for GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["sweeps"]:
            self._error(404, f"no route for POST {url.path}")
            return
        try:
            spec = SweepSpec.from_dict(self._read_json())
            sweep_id = self.manager.submit(spec)
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
            return
        self._send_json(
            202,
            {
                "sweep_id": sweep_id,
                "status": "queued",
                "total": spec.cell_count(),
                "spec_hash": spec.spec_hash(),
            },
        )

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "sweeps":
            self._error(404, f"no route for DELETE {url.path}")
            return
        record = self.manager.get(parts[1])
        if record is None:
            self._error(404, f"unknown sweep {parts[1]!r}")
        elif self.manager.cancel(parts[1]):
            self._send_json(200, {"sweep_id": parts[1], "cancelled": True})
        else:
            self._error(
                409, f"sweep {parts[1]!r} already finished ({record['status']})"
            )


class SweepServer:
    """The sweep service: store + job manager + threaded HTTP server.

    Parameters
    ----------
    store_dir:
        Experiment-store directory (created on first use); restarting a
        server over the same directory resumes from its results.
    host / port:
        Bind address; port 0 picks an ephemeral port (see :attr:`url`).
    worker_threads:
        Concurrent sweep jobs.
    default_timeout_s:
        Job wall-clock budget for specs that do not set their own.
    quiet:
        Suppress per-request stderr logging (tests, CI).
    """

    def __init__(
        self,
        store_dir,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        worker_threads: int = 2,
        default_timeout_s: float | None = None,
        quiet: bool = True,
        store_max_bytes: int | None = None,
    ):
        self.store = ExperimentStore(store_dir, max_bytes=store_max_bytes)
        self.manager = JobManager(
            self.store,
            worker_threads=worker_threads,
            default_timeout_s=default_timeout_s,
        )
        self._http = ThreadingHTTPServer((host, port), _SweepRequestHandler)
        self._http.daemon_threads = True
        self._http.manager = self.manager  # type: ignore[attr-defined]
        self._http.quiet = quiet  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """Base URL of the bound server (resolves ephemeral ports)."""
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "SweepServer":
        """Serve in a daemon thread (tests / embedding); returns self."""
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="sweep-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` CLI)."""
        self._http.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop and the job workers."""
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.manager.shutdown()


def serve(
    store_dir,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    worker_threads: int = 2,
    default_timeout_s: float | None = None,
    quiet: bool = False,
) -> SweepServer:
    """Build a :class:`SweepServer` (the caller decides how to run it)."""
    return SweepServer(
        store_dir,
        host=host,
        port=port,
        worker_threads=worker_threads,
        default_timeout_s=default_timeout_s,
        quiet=quiet,
    )
