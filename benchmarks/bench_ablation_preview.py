"""Ablation - power-request prediction quality.

The paper assumes the EV power request is "predicted by modeling the power
train and driving route" (Section III-B).  This bench compares that perfect
preview against a persistence forecast (current request held over the
window) - the information value of route knowledge.

Expected shape: perfect preview never loses on capacity loss, and its TEB
preparation score is at least as good.
"""

from repro.core.otem import OTEMController
from repro.core.teb import teb_preparation_score
from repro.drivecycle.library import get_cycle
from repro.sim.engine import Simulator
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import Powertrain


def run_mode(mode):
    request = Powertrain().power_request(get_cycle("us06"))
    controller = OTEMController(
        cap_params=UltracapParams(), preview_mode=mode
    )
    sim = Simulator(
        controller,
        cap_params=UltracapParams(),
        preview_steps=controller.required_preview_steps(request.dt),
    )
    return sim.run(request)


def test_ablation_preview_quality(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in ("perfect", "persistence")},
        rounds=1,
        iterations=1,
    )

    print()
    print("Ablation - preview quality (US06 x1)")
    print(f"{'mode':>12} {'qloss [%]':>10} {'avg P [kW]':>11} {'TEB score':>10}")
    for mode, result in results.items():
        print(
            f"{mode:>12} {result.qloss_percent:>10.4f} "
            f"{result.metrics.average_power_w / 1000:>11.2f} "
            f"{teb_preparation_score(result.trace):>10.3f}"
        )

    perfect = results["perfect"]
    persistence = results["persistence"]
    # route knowledge must not hurt
    assert perfect.qloss_percent <= persistence.qloss_percent * 1.10
    # and both must stay thermally safe
    assert perfect.metrics.time_above_safe_s == 0.0
