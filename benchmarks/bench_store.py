"""The experiment store: cold-vs-warm sweep wall-clock and row stability.

The acceptance bench for the persistent store: run a smoke-scale sweep
against a fresh :class:`~repro.store.ExperimentStore`, run the identical
sweep again, and assert that the warm pass (a) recomputes nothing,
(b) returns byte-identical service rows, and (c) is at least 10x faster
than the cold pass.  The measured wall-clocks and the speedup land in the
perf-trajectory artifact ``BENCH_store.json``.

The 10x floor is intentionally far below reality - a warm pass is pure
SQLite + npz reads (milliseconds) against seconds of simulation - so the
assertion stays robust on loaded CI runners while still catching a store
that silently stops serving hits.
"""

from __future__ import annotations

import json
import os

from repro.service.jobs import service_row
from repro.sim.batch import run_batch, scenario_grid
from repro.sim.scenario import Scenario
from repro.store import ExperimentStore

#: The bench_batch smoke grid plus a perturbation ensemble: all three
#: Table I methodologies at both ends of the ucap range on NYCC.
SWEEP = scenario_grid(
    Scenario(cycle="nycc", repeat=1, mpc_max_evals=60),
    ucap_farads=(5_000.0, 25_000.0),
    methodology=("parallel", "dual", "otem"),
)

#: Warm-over-cold wall-clock floor asserted on every run (see module doc).
REQUIRED_SPEEDUP = 10.0


def test_store_warm_pass_is_free_and_byte_identical(benchmark, tmp_path):
    from benchmarks.conftest import run_once

    store = ExperimentStore(tmp_path / "store")

    cold = run_once(benchmark, run_batch, SWEEP, store=store)
    assert cold.ok
    assert cold.cache_misses == len(SWEEP) and cold.cache_hits == 0

    warm = run_batch(SWEEP, store=store)
    assert warm.ok
    assert warm.cache_hits == len(SWEEP) and warm.cache_misses == 0

    # the service-row view (tidy rows minus the volatile cached flag) is
    # byte-identical between the computed and the stored pass
    rows_cold = json.dumps([service_row(c) for c in cold.cells], sort_keys=True)
    rows_warm = json.dumps([service_row(c) for c in warm.cells], sort_keys=True)
    assert rows_cold.encode() == rows_warm.encode()

    speedup = cold.wall_s / warm.wall_s if warm.wall_s else float("inf")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm store pass only {speedup:.1f}x faster than cold "
        f"({warm.wall_s:.3f} s vs {cold.wall_s:.3f} s)"
    )

    stats = store.stats()
    from repro.utils.perf import record_bench

    path = record_bench(
        "store",
        {
            "sweep": "ucap_size",
            "cells": len(SWEEP),
            "cpu_count": os.cpu_count(),
            "cold_wall_s": cold.wall_s,
            "warm_wall_s": warm.wall_s,
            "warm_speedup": speedup,
            "rows_byte_identical": rows_cold == rows_warm,
            "store": {
                "cells": stats.cells,
                "bytes": stats.total_bytes,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate,
            },
            "rows": [service_row(c) for c in cold.cells],
        },
    )

    print()
    print(
        f"store sweep ({len(SWEEP)} cells): cold {cold.wall_s:.2f} s, "
        f"warm {warm.wall_s:.3f} s (x{speedup:.0f}, "
        f"{stats.total_bytes / 1024:.0f} KiB on disk) -> {path}"
    )
