"""Named-cycle library tests: each synthetic cycle must match the published
statistics of its real counterpart (DESIGN.md substitution table)."""

import pytest

from repro.drivecycle.cycle import DriveCycle
from repro.drivecycle.library import REFERENCE_STATS, available_cycles, get_cycle

TOLERANCE = 0.12  # +/-12% on duration, distance, mean speed


def test_available_cycles():
    assert available_cycles() == [
        "artemis_urban",
        "hwfet",
        "jc08",
        "la92",
        "nycc",
        "udds",
        "us06",
        "wltc3",
    ]


def test_unknown_cycle_raises():
    with pytest.raises(KeyError, match="unknown drive cycle"):
        get_cycle("nedc")


def test_lookup_is_case_insensitive():
    assert get_cycle("US06").name == "US06"


def test_cache_returns_same_object():
    assert get_cycle("us06") is get_cycle("us06")


def test_repeat():
    single = get_cycle("us06")
    tripled = get_cycle("us06", repeat=3)
    assert len(tripled) == 3 * len(single) - 2
    assert tripled.distance_m() == pytest.approx(3 * single.distance_m(), rel=1e-6)


@pytest.mark.parametrize("name", sorted(REFERENCE_STATS))
class TestReferenceStats:
    def test_duration(self, name):
        dur, _, _, _ = REFERENCE_STATS[name]
        assert get_cycle(name).stats().duration_s == pytest.approx(dur, rel=TOLERANCE)

    def test_distance(self, name):
        _, dist, _, _ = REFERENCE_STATS[name]
        assert get_cycle(name).stats().distance_km == pytest.approx(dist, rel=TOLERANCE)

    def test_max_speed(self, name):
        _, _, vmax, _ = REFERENCE_STATS[name]
        assert get_cycle(name).stats().max_speed_kmh == pytest.approx(vmax, rel=0.02)

    def test_mean_speed(self, name):
        _, _, _, vmean = REFERENCE_STATS[name]
        assert get_cycle(name).stats().mean_speed_kmh == pytest.approx(
            vmean, rel=TOLERANCE
        )

    def test_starts_and_ends_stopped(self, name):
        cycle = get_cycle(name)
        assert cycle.speed_mps[0] == 0.0
        assert cycle.speed_mps[-1] == pytest.approx(0.0, abs=0.1)

    def test_is_drivecycle(self, name):
        assert isinstance(get_cycle(name), DriveCycle)

    def test_accelerations_physical(self, name):
        # no synthetic cycle should demand more than 4 m/s^2
        stats = get_cycle(name).stats()
        assert stats.max_accel_ms2 < 4.0
        assert stats.max_decel_ms2 < 4.0


class TestCycleCharacter:
    """The controllers react to cycle character, so pin the key contrasts."""

    def test_us06_is_most_aggressive(self):
        us06 = get_cycle("us06").stats()
        udds = get_cycle("udds").stats()
        assert us06.max_speed_kmh > udds.max_speed_kmh
        assert us06.mean_speed_kmh > 2 * udds.mean_speed_kmh

    def test_hwfet_has_fewest_stops(self):
        stops = {n: get_cycle(n).stats().stop_count for n in available_cycles()}
        assert stops["hwfet"] == min(stops.values())

    def test_nycc_is_slowest(self):
        means = {n: get_cycle(n).stats().mean_speed_kmh for n in available_cycles()}
        assert means["nycc"] == min(means.values())

    def test_udds_has_many_stops(self):
        assert get_cycle("udds").stats().stop_count >= 10

    def test_all_sampled_at_one_hz(self):
        for name in available_cycles():
            assert get_cycle(name).dt == 1.0
