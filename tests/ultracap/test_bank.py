"""Ultracapacitor bank tests (Eq. 7-9, constraints C5/C7)."""

import numpy as np
import pytest

from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


@pytest.fixture()
def params():
    return UltracapParams()


class TestVoltageLaw:
    def test_full_bank_at_rated_voltage(self, bank):
        assert bank.voltage() == pytest.approx(bank.params.rated_voltage_v)

    def test_eq8_square_root(self, bank):
        v25 = bank.voltage(25.0)
        assert v25 == pytest.approx(bank.params.rated_voltage_v * 0.5)

    def test_zero_soe_zero_voltage(self, bank):
        assert bank.voltage(0.0) == 0.0

    def test_energy_property(self, bank):
        assert bank.energy_j == pytest.approx(bank.params.energy_capacity_j)


class TestDischarge:
    def test_reduces_soe(self, bank):
        bank.apply_power(10_000.0, 10.0)
        assert bank.soe_percent < 100.0

    def test_energy_bookkeeping(self, bank):
        before = bank.energy_j
        result = bank.apply_power(10_000.0, 10.0)
        assert result.energy_j == pytest.approx(1e5)
        assert before - bank.energy_j == pytest.approx(1e5)

    def test_current_sign(self, bank):
        assert bank.apply_power(10_000.0, 1.0).current_a > 0

    def test_power_clipped_at_rating(self, bank):
        result = bank.apply_power(1e6, 1.0)
        assert result.clipped
        assert result.power_w == pytest.approx(bank.params.max_power_w)

    def test_stops_at_soe_floor(self, params):
        bank = UltracapBank(params, initial_soe_percent=21.0)
        result = bank.apply_power(params.max_power_w, 1e6)
        assert bank.soe_percent == pytest.approx(params.soe_min_percent)
        assert result.clipped

    def test_reserve_tap_goes_below_floor(self, params):
        bank = UltracapBank(params, initial_soe_percent=21.0)
        bank.apply_power(params.max_power_w, 60.0, tap_reserve=True)
        assert bank.soe_percent < params.soe_min_percent
        assert bank.soe_percent >= params.soe_hard_min_percent - 1e-9


class TestCharge:
    def test_increases_soe(self, params):
        bank = UltracapBank(params, initial_soe_percent=50.0)
        bank.apply_power(-10_000.0, 10.0)
        assert bank.soe_percent > 50.0

    def test_negative_energy_bookkeeping(self, params):
        bank = UltracapBank(params, initial_soe_percent=50.0)
        result = bank.apply_power(-10_000.0, 10.0)
        assert result.energy_j == pytest.approx(-1e5)

    def test_stops_at_full(self, bank):
        result = bank.apply_power(-10_000.0, 1.0)
        assert result.power_w == 0.0
        assert result.clipped
        assert bank.soe_percent == pytest.approx(100.0)

    def test_roundtrip_is_lossless_at_bank_level(self, params):
        # Eq. 9 stores/releases exactly; losses live in converters/resistance
        bank = UltracapBank(params, initial_soe_percent=50.0)
        bank.apply_power(-10_000.0, 10.0)
        bank.apply_power(10_000.0, 10.0)
        assert bank.soe_percent == pytest.approx(50.0, abs=1e-9)


class TestLimits:
    def test_max_discharge_power_respects_energy(self, params):
        bank = UltracapBank(params, initial_soe_percent=20.5)
        assert bank.max_discharge_power_w(10.0) < params.max_power_w

    def test_max_discharge_power_full_bank(self, bank):
        assert bank.max_discharge_power_w(1.0) == pytest.approx(bank.params.max_power_w)

    def test_max_charge_power_full_bank_is_zero(self, bank):
        assert bank.max_charge_power_w(1.0) == 0.0

    def test_headroom_and_available_partition(self, params):
        bank = UltracapBank(params, initial_soe_percent=60.0)
        total = bank.headroom_j() + bank.available_j()
        expected = (
            (params.soe_max_percent - params.soe_min_percent)
            / 100.0
            * params.energy_capacity_j
        )
        assert total == pytest.approx(expected)

    def test_reserve_full_bank(self, bank):
        expected = (
            (bank.params.soe_min_percent - bank.params.soe_hard_min_percent)
            / 100.0
            * bank.params.energy_capacity_j
        )
        assert bank.reserve_j() == pytest.approx(expected)

    def test_reserve_empty_bank(self, params):
        bank = UltracapBank(params, initial_soe_percent=params.soe_hard_min_percent)
        assert bank.reserve_j() == 0.0


class TestLifecycle:
    def test_reset(self, bank):
        bank.apply_power(10_000.0, 30.0)
        bank.reset(75.0)
        assert bank.soe_percent == 75.0

    def test_rejects_bad_initial_soe(self, params):
        with pytest.raises(ValueError):
            UltracapBank(params, initial_soe_percent=150.0)

    def test_rejects_nonpositive_dt(self, bank):
        with pytest.raises(ValueError):
            bank.apply_power(1_000.0, 0.0)

    def test_mean_voltage_current_consistency(self, params):
        bank = UltracapBank(params, initial_soe_percent=80.0)
        result = bank.apply_power(5_000.0, 1.0)
        # P = V_mean * I by construction
        assert result.power_w == pytest.approx(
            result.current_a
            * 0.5
            * (params.rated_voltage_v * np.sqrt(0.8) + bank.voltage())
            , rel=1e-6
        )
