"""Extension - calibration-sensitivity sweep.

DESIGN.md section 6 documents the calibration choices this reproduction
makes.  This bench perturbs each flagged knob +/-10-50% and verifies the
paper's baseline orderings survive every perturbation - i.e. the
reproduction's conclusions are not an artifact of one lucky parameter set.
"""

from benchmarks.conftest import run_once
from repro.analysis.sensitivity import check_orderings


def test_sensitivity_orderings(benchmark):
    checks = run_once(benchmark, check_orderings, cycle="us06", repeat=3)

    print()
    print("Extension - calibration sensitivity (US06 x3, baselines)")
    print(f"{'case':>18} {'dual<par Q':>11} {'cool<par Q':>11} "
          f"{'par cheapest':>13} {'cool priciest':>14}")
    for check in checks:
        print(
            f"{check.case:>18} {str(check.dual_beats_parallel_qloss):>11} "
            f"{str(check.cooling_beats_parallel_qloss):>11} "
            f"{str(check.parallel_cheapest):>13} {str(check.cooling_priciest):>14}"
        )

    broken = [c.case for c in checks if not c.all_hold]
    print(f"orderings hold in {len(checks) - len(broken)}/{len(checks)} cases"
          + (f"; broken: {broken}" if broken else ""))

    # every headline ordering must survive every perturbation
    assert not broken
