#!/usr/bin/env python
"""Fast-charge thermal management: OTEM beyond driving.

DC fast charging is the harshest sustained thermal event a pack sees - a
constant high charging current for tens of minutes.  The same plant and
managers handle it: the "power request" is simply a constant negative bus
power.  This example charges a depleted pack at several rates and shows
how active cooling keeps the session inside the safe zone.

Usage::

    python examples/fast_charge.py [charge_kw] [minutes]
"""

import sys

import numpy as np

from repro.controllers.cooling_only import CoolingOnlyController
from repro.sim.engine import Simulator
from repro.utils.units import kelvin_to_celsius
from repro.vehicle.powertrain import PowerRequest


class NoCoolingCharger(CoolingOnlyController):
    """Same battery-only plant, cooler disabled (the comparison case)."""

    name = "No cooling"
    uses_cooling = False


def charge_session(power_kw: float, minutes: float, controller) -> dict:
    steps = int(minutes * 60)
    request = PowerRequest(
        cycle_name=f"fast-charge-{power_kw:.0f}kW",
        dt=1.0,
        power_w=np.full(steps, -power_kw * 1000.0),
    )
    sim = Simulator(controller, initial_soc_percent=20.0, initial_temp_k=301.0)
    result = sim.run(request)
    return result


def main():
    power_kw = float(sys.argv[1]) if len(sys.argv) > 1 else 50.0
    minutes = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0

    print(
        f"Fast charge: {power_kw:.0f} kW for {minutes:.0f} min, "
        f"pack starting at 20% SoC / 27.9 C"
    )
    print(
        f"{'manager':>12} {'final SoC [%]':>14} {'peak T [C]':>11} "
        f"{'unsafe [s]':>11} {'Qloss [%]':>10} {'cool E [kWh]':>13}"
    )
    for controller in (NoCoolingCharger(), CoolingOnlyController()):
        result = charge_session(power_kw, minutes, controller)
        m = result.metrics
        soc_final = result.trace.battery_soc_percent[-1]
        print(
            f"{controller.name:>12} {soc_final:>14.1f} "
            f"{kelvin_to_celsius(m.peak_temp_k):>11.1f} {m.time_above_safe_s:>11.0f} "
            f"{m.qloss_percent:>10.4f} {m.cooling_energy_j / 3.6e6:>13.2f}"
        )

    print()
    print(
        "Charging current ages the battery too (Eq. 5 uses |I|); the cooler "
        "pays for itself in lifetime whenever the session would otherwise "
        "leave the safe zone."
    )


if __name__ == "__main__":
    main()
