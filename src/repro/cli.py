"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      one scenario, print summary metrics.
``compare``  all four methodologies on one route, print the comparison.
``table1``   regenerate the paper's Table I.
``cycles``   list the built-in drive cycles and their statistics.
``export``   run a scenario and write the full trace to CSV.
``batch``    fan a scenario grid out over worker processes, with caching.
``serve``    start the sweep service (durable store + HTTP API).
``submit``   submit a sweep to a running service (optionally wait).
``query``    query a sweep's status or rows from a running service.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import METHOD_LABELS
from repro.analysis.report import render_table1
from repro.analysis.tables import table1_data
from repro.drivecycle.library import available_cycles, get_cycle
from repro.sim.engine import SimulationResult
from repro.sim.scenario import METHODOLOGIES, Scenario, run_scenario
from repro.utils.units import kelvin_to_celsius


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OTEM (DATE 2016) reproduction - EV HEES thermal/energy management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario and print metrics")
    _add_scenario_args(run)

    compare = sub.add_parser("compare", help="run all methodologies on one route")
    _add_scenario_args(compare, with_methodology=False)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table I")
    table1.add_argument("--repeat", type=int, default=2, help="cycle repetitions")

    sub.add_parser("cycles", help="list built-in drive cycles")

    export = sub.add_parser("export", help="run a scenario, write the trace to CSV")
    _add_scenario_args(export)
    export.add_argument("output", help="CSV file to write")

    batch = sub.add_parser(
        "batch",
        help="run a scenario grid across worker processes (cached)",
        description=(
            "Cross-product grid over the repeated flags below, executed by "
            "repro.sim.batch.run_batch with crash isolation per cell."
        ),
    )
    _add_grid_args(batch)
    batch.add_argument(
        "--workers",
        "-j",
        type=int,
        default=0,
        help="worker processes; 0 = serial in-process (default)",
    )
    batch.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="result-cache directory (default: .repro_cache)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-scenario wall-clock budget [s] (parallel mode)",
    )
    batch.add_argument(
        "--engine-backend",
        choices=("auto", "lockstep", "scalar"),
        default="auto",
        help=(
            "simulation engine: 'auto' (default) runs cells that share a "
            "lockstep group in one vectorized batch - baselines grouped by "
            "architecture, OTEM cells with the vectorized rollout backend "
            "grouped by solver shape (MPC ensembles replan in lockstep "
            "waves) - and keeps scalar-backend-MPC/singleton cells on the "
            "scalar engine; 'lockstep' forces every supported cell onto "
            "the batched engine; 'scalar' forces the per-cell engine "
            "everywhere"
        ),
    )
    batch.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the batch's BENCH-format JSON payload to this file",
    )

    serve = sub.add_parser(
        "serve",
        help="start the sweep service (durable store + HTTP API)",
        description=(
            "Serve POST /sweeps, GET /sweeps/<id>[/rows], DELETE "
            "/sweeps/<id>, /healthz and /metrics over a persistent "
            "experiment store; restarts resume from stored results."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8563, help="bind port (default: 8563)"
    )
    serve.add_argument(
        "--store-dir",
        default=".repro_store",
        help="experiment-store directory (default: .repro_store)",
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="concurrent sweep jobs (default: 2)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job wall-clock budget [s] (default: none)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )

    submit = sub.add_parser(
        "submit",
        help="submit a sweep to a running service",
        description=(
            "Build a sweep spec from the grid flags (same semantics as "
            "'repro batch') or load one from --spec, POST it, and "
            "optionally wait for completion."
        ),
    )
    _add_grid_args(submit)
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8563",
        help="service base URL (default: http://127.0.0.1:8563)",
    )
    submit.add_argument(
        "--spec",
        default=None,
        help="JSON sweep-spec file ('-' for stdin); overrides the grid flags",
    )
    submit.add_argument(
        "--workers",
        "-j",
        type=int,
        default=0,
        help="worker processes for scalar cells (default: 0 = in-process)",
    )
    submit.add_argument(
        "--engine-backend",
        choices=("auto", "lockstep", "scalar"),
        default="auto",
        help="engine selection forwarded to run_batch (default: auto)",
    )
    submit.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="whole-job wall-clock budget [s] (default: service default)",
    )
    submit.add_argument("--tag", default="", help="free-form label for the sweep")
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the sweep finishes and print a row summary",
    )
    submit.add_argument(
        "--poll-timeout",
        type=float,
        default=600.0,
        help="--wait polling budget [s] (default: 600)",
    )

    query = sub.add_parser(
        "query",
        help="query a sweep's status or rows from a running service",
        description=(
            "Without flags prints the sweep's status record; --rows fetches "
            "the tidy rows (key=value arguments filter by row fields)."
        ),
    )
    query.add_argument("sweep_id", nargs="?", help="sweep id (omit to list all)")
    query.add_argument(
        "--url",
        default="http://127.0.0.1:8563",
        help="service base URL (default: http://127.0.0.1:8563)",
    )
    query.add_argument(
        "--rows", action="store_true", help="fetch rows instead of status"
    )
    query.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the raw JSON payload",
    )
    query.add_argument(
        "--filter",
        dest="filters",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="row filter (repeatable; with --rows)",
    )

    return parser


def _add_grid_args(parser: argparse.ArgumentParser):
    """The cross-product grid flags shared by ``batch`` and ``submit``."""
    parser.add_argument(
        "--methodology",
        "-m",
        action="append",
        choices=METHODOLOGIES,
        help="methodology axis (repeatable; default: otem)",
    )
    parser.add_argument(
        "--cycle",
        "-c",
        action="append",
        help="drive-cycle axis (repeatable; default: us06)",
    )
    parser.add_argument(
        "--ucap-farads",
        action="append",
        type=float,
        help="bank-size axis [F] (repeatable; default: 25000)",
    )
    parser.add_argument(
        "--initial-temp-c",
        action="append",
        type=float,
        help="start-temperature axis [C] (repeatable; default: 24.85)",
    )
    parser.add_argument(
        "--rollout-backend",
        action="append",
        choices=("scalar", "vectorized"),
        help="MPC rollout-backend axis (repeatable; default: scalar)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        help="traffic-perturbation axis: members 0..N-1 (default: off)",
    )
    parser.add_argument(
        "--repeat", "-r", type=int, default=1, help="cycle repetitions (default: 1)"
    )


def _add_scenario_args(parser: argparse.ArgumentParser, with_methodology: bool = True):
    if with_methodology:
        parser.add_argument(
            "--methodology",
            "-m",
            choices=METHODOLOGIES,
            default="otem",
            help="management policy (default: otem)",
        )
    parser.add_argument(
        "--cycle", "-c", default="us06", help="drive cycle (default: us06)"
    )
    parser.add_argument(
        "--repeat", "-r", type=int, default=1, help="cycle repetitions (default: 1)"
    )
    parser.add_argument(
        "--ucap-farads",
        type=float,
        default=25_000.0,
        help="ultracapacitor bank size [F] (default: 25000)",
    )
    parser.add_argument(
        "--initial-temp-c",
        type=float,
        default=24.85,
        help="initial battery/coolant temperature [C] (default: 24.85 = 298 K)",
    )
    parser.add_argument(
        "--rollout-backend",
        choices=("scalar", "vectorized"),
        default="scalar",
        help=(
            "MPC rollout implementation: 'scalar' (reference) or "
            "'vectorized' (batched NumPy kernel, several times faster; "
            "default: scalar)"
        ),
    )


def _scenario_from_args(args, methodology: str | None = None) -> Scenario:
    return Scenario(
        methodology=methodology or args.methodology,
        cycle=args.cycle,
        repeat=args.repeat,
        ucap_farads=args.ucap_farads,
        initial_temp_k=args.initial_temp_c + 273.15,
        rollout_backend=args.rollout_backend,
    )


def _print_summary(result: SimulationResult, out):
    m = result.metrics
    print(f"controller:      {result.controller_name}", file=out)
    print(f"route:           {result.cycle_name} ({m.duration_s:.0f} s)", file=out)
    print(f"capacity loss:   {m.qloss_percent:.4f} %", file=out)
    print(f"BLT:             {m.blt_routes:,.0f} routes to end-of-life", file=out)
    print(f"HEES energy:     {m.hees_energy_j / 3.6e6:.2f} kWh", file=out)
    print(f"average power:   {m.average_power_w / 1000:.2f} kW", file=out)
    print(f"cooling energy:  {m.cooling_energy_j / 3.6e6:.2f} kWh", file=out)
    print(
        f"peak temp:       {kelvin_to_celsius(m.peak_temp_k):.1f} C "
        f"({m.time_above_safe_s:.0f} s unsafe)",
        file=out,
    )
    print(f"unmet demand:    {m.unmet_energy_j / 3.6e6:.4f} kWh", file=out)


def cmd_run(args, out) -> int:
    result = run_scenario(_scenario_from_args(args))
    _print_summary(result, out)
    return 0


def cmd_compare(args, out) -> int:
    results = {}
    for m in METHODOLOGIES:
        results[m] = run_scenario(_scenario_from_args(args, methodology=m))
    base = results["parallel"].metrics.qloss_percent
    print(
        f"{'methodology':>14} {'Qloss [%]':>10} {'vs par':>8} "
        f"{'avg P [kW]':>11} {'peak T [C]':>11}",
        file=out,
    )
    for m, result in results.items():
        metrics = result.metrics
        print(
            f"{METHOD_LABELS[m]:>14} {metrics.qloss_percent:>10.4f} "
            f"{100 * metrics.qloss_percent / base:>7.1f}% "
            f"{metrics.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(metrics.peak_temp_k):>11.1f}",
            file=out,
        )
    return 0


def cmd_table1(args, out) -> int:
    print(render_table1(table1_data(repeat=args.repeat)), file=out)
    return 0


def cmd_cycles(args, out) -> int:
    print(
        f"{'cycle':>8} {'dur [s]':>8} {'dist [km]':>10} "
        f"{'vmax [km/h]':>12} {'vmean [km/h]':>13} {'stops':>6}",
        file=out,
    )
    for name in available_cycles():
        s = get_cycle(name).stats()
        print(
            f"{name:>8} {s.duration_s:>8.0f} {s.distance_km:>10.2f} "
            f"{s.max_speed_kmh:>12.1f} {s.mean_speed_kmh:>13.1f} {s.stop_count:>6}",
            file=out,
        )
    return 0


def cmd_export(args, out) -> int:
    from repro.analysis.export import write_trace_csv

    result = run_scenario(_scenario_from_args(args))
    write_trace_csv(result.trace, args.output)
    print(f"wrote {len(result.trace)} rows to {args.output}", file=out)
    _print_summary(result, out)
    return 0


def _grid_from_args(args) -> tuple:
    """(base scenario, axes) from the shared grid flags (batch + submit)."""
    base = Scenario(repeat=args.repeat)
    axes = {
        "methodology": args.methodology or ["otem"],
        "cycle": args.cycle or ["us06"],
        "ucap_farads": args.ucap_farads or [25_000.0],
        "initial_temp_k": [t + 273.15 for t in (args.initial_temp_c or [24.85])],
        "rollout_backend": args.rollout_backend or ["scalar"],
    }
    return base, axes


def cmd_batch(args, out) -> int:
    import json

    from repro.sim.batch import ResultCache, run_batch, scenario_grid

    base, axes = _grid_from_args(args)
    if args.seeds:
        axes["perturb_seed"] = list(range(args.seeds))
    scenarios = scenario_grid(base, **axes)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    result = run_batch(
        scenarios,
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        execution=args.engine_backend,
    )

    print(
        f"{'methodology':>12} {'cycle':>10} {'size [F]':>9} {'T0 [C]':>7} "
        f"{'Qloss [%]':>10} {'avg P [kW]':>11} {'peak T [C]':>11} "
        f"{'wall [s]':>9} {'':>6}",
        file=out,
    )
    for cell in result.cells:
        s = cell.scenario
        cycle_label = s.cycle if s.perturb_seed is None else f"{s.cycle}~{s.perturb_seed}"
        if not cell.ok:
            print(
                f"{s.methodology:>12} {cycle_label:>10} {s.ucap_farads:>9.0f} "
                f"{s.initial_temp_k - 273.15:>7.1f} FAILED: {cell.error}",
                file=out,
            )
            continue
        m = cell.metrics
        tag = "cached" if cell.cached else ""
        print(
            f"{s.methodology:>12} {cycle_label:>10} {s.ucap_farads:>9.0f} "
            f"{s.initial_temp_k - 273.15:>7.1f} {m.qloss_percent:>10.4f} "
            f"{m.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(m.peak_temp_k):>11.1f} {cell.wall_s:>9.2f} {tag:>6}",
            file=out,
        )
    print(
        f"{len(result)} cells in {result.wall_s:.2f} s "
        f"({result.workers or 1} worker(s), "
        f"{result.cache_hits} cache hit(s), {result.cache_misses} miss(es), "
        f"{len(result.failures)} failure(s))",
        file=out,
    )

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result.bench_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_path}", file=out)
    return 0 if result.ok else 1


def cmd_serve(args, out) -> int:
    from repro.service import serve

    server = serve(
        args.store_dir,
        host=args.host,
        port=args.port,
        worker_threads=args.job_workers,
        default_timeout_s=args.job_timeout,
        quiet=args.quiet,
    )
    print(
        f"serving sweeps on {server.url} "
        f"(store: {server.store.directory}, {args.job_workers} job worker(s))",
        file=out,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=out)
        server.shutdown()
    return 0


def _print_progress(record, out):
    print(
        f"  {record['status']}: {record['done_cells']}/{record['total']} cells "
        f"({record['failed_cells']} failed)",
        file=out,
    )


def cmd_submit(args, out) -> int:
    import json

    from repro.service import ServiceError, SweepClient, SweepSpec

    if args.spec:
        text = (
            sys.stdin.read()
            if args.spec == "-"
            else open(args.spec).read()
        )
        spec = SweepSpec.from_json(text)
    else:
        base, axes = _grid_from_args(args)
        spec = SweepSpec(
            base=base,
            axes=axes,
            seeds=args.seeds,
            workers=args.workers,
            execution=args.engine_backend,
            timeout_s=args.job_timeout,
            tag=args.tag,
        )

    client = SweepClient(args.url)
    try:
        accepted = client.submit(spec.to_dict())
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=out)
        return 1
    sweep_id = accepted["sweep_id"]
    print(f"submitted {sweep_id} ({accepted['total']} cells)", file=out)
    if not args.wait:
        return 0

    last = {"done": -1}

    def on_progress(record):
        if record["done_cells"] != last["done"]:
            last["done"] = record["done_cells"]
            _print_progress(record, out)

    try:
        record = client.wait(
            sweep_id, timeout_s=args.poll_timeout, on_progress=on_progress
        )
    except TimeoutError as exc:
        print(f"wait aborted: {exc}", file=out)
        return 1
    rows = client.rows(sweep_id)["rows"]
    print(
        f"{record['status']}: {len(rows)} row(s), "
        f"{record['failed_cells']} failed cell(s)",
        file=out,
    )
    print(json.dumps(record["engine_backends"], sort_keys=True), file=out)
    return 0 if record["status"] == "done" else 1


def cmd_query(args, out) -> int:
    import json

    from repro.service import ServiceError, SweepClient

    client = SweepClient(args.url)
    try:
        if args.sweep_id is None:
            records = client.list()
            if args.as_json:
                print(json.dumps(records, indent=2, sort_keys=True), file=out)
                return 0
            print(f"{'sweep id':>14} {'status':>10} {'cells':>12} {'tag':>10}", file=out)
            for r in records:
                print(
                    f"{r['sweep_id']:>14} {r['status']:>10} "
                    f"{r['done_cells']}/{r['total']:<10} {r.get('tag', ''):>10}",
                    file=out,
                )
            return 0
        if not args.rows:
            record = client.status(args.sweep_id)
            print(json.dumps(record, indent=2, sort_keys=True), file=out)
            return 0
        filters = {}
        for pair in args.filters:
            if "=" not in pair:
                print(f"bad filter {pair!r} (expected field=value)", file=out)
                return 2
            key, value = pair.split("=", 1)
            filters[key] = value
        payload = client.rows(args.sweep_id, **filters)
    except ServiceError as exc:
        print(f"query failed: {exc}", file=out)
        return 1
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    rows = payload["rows"]
    print(
        f"{'methodology':>12} {'cycle':>10} {'size [F]':>9} "
        f"{'Qloss [%]':>10} {'peak T [C]':>11} {'engine':>9}",
        file=out,
    )
    for row in rows:
        if row.get("error"):
            print(
                f"{row['methodology']:>12} {row['cycle']:>10} "
                f"{row['ucap_farads']:>9.0f} FAILED: {row['error']}",
                file=out,
            )
            continue
        print(
            f"{row['methodology']:>12} {row['cycle']:>10} "
            f"{row['ucap_farads']:>9.0f} {row['qloss_percent']:>10.4f} "
            f"{kelvin_to_celsius(row['peak_temp_k']):>11.1f} "
            f"{row['engine_backend']:>9}",
            file=out,
        )
    print(
        f"{len(rows)} row(s), status {payload['status']}"
        + ("" if payload["complete"] else " (incomplete)"),
        file=out,
    )
    return 0


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "table1": cmd_table1,
    "cycles": cmd_cycles,
    "export": cmd_export,
    "batch": cmd_batch,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "query": cmd_query,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)
