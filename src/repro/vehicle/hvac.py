"""Cabin HVAC load model (the paper's companion work, reference [2]).

The paper's introduction cites the authors' HVAC study ("HVAC System and
Automotive Climate Control Influence on Electric Vehicle and Battery",
ASP-DAC 2016): climate control is the largest auxiliary load and shapes
the bus power the storage managers see.  This module adds that load:

* a first-order cabin thermal model - solar/ambient heat ingress against
  the HVAC's heat pumping,
* a thermostatic HVAC controller with a pull-down phase (full power until
  the cabin reaches the setpoint) and a steady phase (holding it),
* COP-based electrical power, for both cooling (hot day) and heating
  (cold day, where a resistive PTC heater has COP ~1).

``Powertrain.power_request(..., hvac=...)`` adds the profile to the bus
trace, replacing the constant ``auxiliary_power_w`` placeholder for
climate-heavy studies (see examples/hot_day.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CabinParams:
    """Cabin thermal and HVAC parameters.

    Attributes
    ----------
    heat_capacity_j_per_k:
        Lumped cabin air + interior mass [J/K].
    shell_conductance_w_per_k:
        Cabin-to-ambient conductance (glass, body) [W/K].
    solar_gain_w:
        Solar irradiation absorbed by the cabin [W] (0 at night).
    max_thermal_power_w:
        HVAC heat-moving capacity [W] (thermal, not electrical).
    cooling_cop:
        Coefficient of performance when cooling [-].
    heating_cop:
        COP when heating [-] (1.0 = resistive PTC heater).
    setpoint_k:
        Cabin target temperature [K].
    deadband_k:
        Thermostat half-width around the setpoint [K].
    """

    heat_capacity_j_per_k: float = 80_000.0
    shell_conductance_w_per_k: float = 120.0
    solar_gain_w: float = 600.0
    max_thermal_power_w: float = 5_000.0
    cooling_cop: float = 2.2
    heating_cop: float = 1.0
    setpoint_k: float = 295.15
    deadband_k: float = 1.0

    def __post_init__(self):
        check_positive(self.heat_capacity_j_per_k, "heat_capacity_j_per_k")
        check_positive(self.shell_conductance_w_per_k, "shell_conductance_w_per_k")
        check_in_range(self.solar_gain_w, 0.0, 5_000.0, "solar_gain_w")
        check_positive(self.max_thermal_power_w, "max_thermal_power_w")
        check_positive(self.cooling_cop, "cooling_cop")
        check_positive(self.heating_cop, "heating_cop")
        check_positive(self.setpoint_k, "setpoint_k")
        check_in_range(self.deadband_k, 0.1, 10.0, "deadband_k")


def hvac_load_profile(
    duration_s: float,
    ambient_temp_k: float,
    initial_cabin_temp_k: float | None = None,
    params: CabinParams = CabinParams(),
    dt: float = 1.0,
) -> np.ndarray:
    """Electrical HVAC load trace [W] for a trip.

    Parameters
    ----------
    duration_s:
        Trip duration [s].
    ambient_temp_k:
        Outside temperature [K]; above the setpoint the HVAC cools, below
        it heats.
    initial_cabin_temp_k:
        Cabin temperature at departure [K]; defaults to ambient (the car
        soaked outside).
    params:
        Cabin/HVAC parameters.
    dt:
        Sample period [s].

    Returns
    -------
    One electrical-power sample per ``dt``, length ``floor(duration/dt)+1``.
    """
    check_positive(duration_s, "duration_s")
    check_positive(dt, "dt")
    p = params
    n = int(np.floor(duration_s / dt)) + 1
    cabin = float(
        ambient_temp_k if initial_cabin_temp_k is None else initial_cabin_temp_k
    )
    load = np.zeros(n)
    # solar gain only matters on the hot side; a cold night has none
    solar = p.solar_gain_w if ambient_temp_k >= p.setpoint_k else 0.0
    hvac_on = True
    for k in range(n):
        error = cabin - p.setpoint_k
        # thermostat with deadband: off inside, on outside
        if hvac_on and abs(error) < 0.2 * p.deadband_k:
            hvac_on = False
        elif not hvac_on and abs(error) > p.deadband_k:
            hvac_on = True

        thermal = 0.0
        if hvac_on:
            # move heat toward the setpoint, up to capacity, proportional
            # near the target so the steady phase doesn't chatter
            thermal = -np.sign(error) * min(
                p.max_thermal_power_w, abs(error) * p.max_thermal_power_w / 3.0
            )
        cop = p.cooling_cop if thermal < 0 else p.heating_cop
        load[k] = abs(thermal) / cop

        ingress = p.shell_conductance_w_per_k * (ambient_temp_k - cabin) + solar
        cabin += dt * (ingress + thermal) / p.heat_capacity_j_per_k
    return load
