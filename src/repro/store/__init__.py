"""Persistent experiment store: durable, queryable sweep results.

:class:`ExperimentStore` is the durability layer under the batch runner
and the sweep service: a content-addressed on-disk store (SQLite index +
compressed ``.npz`` blobs) keyed by the same ``CACHE_SCHEMA``-versioned
fingerprints :func:`repro.sim.batch.scenario_fingerprint` produces, so
``run_batch(store=...)`` transparently skips previously computed cells
across processes, sessions, and service restarts.
"""

from repro.store.experiment import ExperimentStore, StoreStats

__all__ = ["ExperimentStore", "StoreStats"]
