"""Cell electrical model tests (Eq. 1-3)."""

import numpy as np
import pytest

from repro.battery.electrical import BatteryElectrical
from repro.battery.params import NCR18650A


@pytest.fixture()
def model():
    return BatteryElectrical(NCR18650A)


class TestOpenCircuitVoltage:
    def test_full_cell_near_4v2(self, model):
        assert 4.1 <= model.open_circuit_voltage(100.0) <= 4.25

    def test_empty_cell_near_3v0(self, model):
        assert 2.9 <= model.open_circuit_voltage(0.0) <= 3.1

    def test_nominal_midpoint(self, model):
        assert 3.5 <= model.open_circuit_voltage(50.0) <= 3.7

    def test_monotone_in_soc(self, model):
        socs = np.linspace(0, 100, 200)
        voc = model.open_circuit_voltage(socs)
        assert np.all(np.diff(voc) > 0)

    def test_vectorized_shape(self, model):
        out = model.open_circuit_voltage(np.array([10.0, 50.0, 90.0]))
        assert out.shape == (3,)


class TestInternalResistance:
    def test_magnitude_at_nominal(self, model):
        r = model.internal_resistance(50.0, 298.15)
        assert 0.05 <= r <= 0.12

    def test_rises_at_low_soc(self, model):
        assert model.internal_resistance(5.0, 298.15) > model.internal_resistance(
            80.0, 298.15
        )

    def test_rises_when_cold(self, model):
        cold = model.internal_resistance(50.0, 273.15)
        warm = model.internal_resistance(50.0, 298.15)
        assert cold > warm

    def test_cold_factor_matches_datasheet_envelope(self, model):
        # NCR18650A: resistance roughly doubles 25 C -> 0 C
        ratio = model.internal_resistance(50.0, 273.15) / model.internal_resistance(
            50.0, 298.15
        )
        assert 1.5 <= ratio <= 2.5

    def test_falls_when_hot(self, model):
        hot = model.internal_resistance(50.0, 318.15)
        warm = model.internal_resistance(50.0, 298.15)
        assert hot < warm

    def test_reference_temperature_is_neutral(self, model):
        base = NCR18650A.res_exp_a * np.exp(NCR18650A.res_exp_b * 50.0) + NCR18650A.res_base
        assert model.internal_resistance(50.0, NCR18650A.res_ref_temp_k) == pytest.approx(
            float(base)
        )


class TestSoCIntegration:
    def test_discharge_reduces_soc(self, model):
        assert model.soc_after(50.0, 3.1, 3600.0) == pytest.approx(50.0 - 100.0)

    def test_one_hour_at_c_rate_is_full_swing(self, model):
        # 3.1 A for 1 h = 3.1 Ah = 100% of capacity
        out = model.soc_after(100.0, NCR18650A.capacity_ah, 3600.0)
        assert out == pytest.approx(0.0)

    def test_charge_increases_soc(self, model):
        assert model.soc_after(50.0, -1.0, 60.0) > 50.0

    def test_zero_current_no_change(self, model):
        assert model.soc_after(42.0, 0.0, 1000.0) == 42.0


class TestCurrentForPower:
    def test_zero_power_zero_current(self, model):
        assert model.current_for_power(0.0, 50.0, 298.15) == 0.0

    def test_power_balance_discharge(self, model):
        power = 10.0
        i = model.current_for_power(power, 50.0, 298.15)
        v = model.terminal_voltage(50.0, i, 298.15)
        assert i * v == pytest.approx(power, rel=1e-9)

    def test_power_balance_charge(self, model):
        power = -10.0
        i = model.current_for_power(power, 50.0, 298.15)
        assert i < 0
        v = model.terminal_voltage(50.0, i, 298.15)
        assert i * v == pytest.approx(power, rel=1e-9)

    def test_picks_physical_root(self, model):
        # the physical root draws the smaller current of the two solutions
        i = model.current_for_power(5.0, 50.0, 298.15)
        voc = model.open_circuit_voltage(50.0)
        res = model.internal_resistance(50.0, 298.15)
        assert i < voc / (2 * res)

    def test_caps_at_max_power_point(self, model):
        voc = float(model.open_circuit_voltage(50.0))
        res = float(model.internal_resistance(50.0, 298.15))
        i = model.current_for_power(1e6, 50.0, 298.15)
        assert i == pytest.approx(voc / (2 * res))

    def test_more_current_needed_when_cold(self, model):
        warm = model.current_for_power(10.0, 50.0, 308.15)
        cold = model.current_for_power(10.0, 50.0, 278.15)
        assert cold > warm


class TestMaxDischargePower:
    def test_positive_at_nominal(self, model):
        assert model.max_discharge_power(50.0, 298.15) > 0

    def test_higher_when_warm(self, model):
        assert model.max_discharge_power(50.0, 318.15) > model.max_discharge_power(
            50.0, 278.15
        )

    def test_higher_at_high_soc(self, model):
        assert model.max_discharge_power(90.0, 298.15) > model.max_discharge_power(
            25.0, 298.15
        )

    def test_at_current_limit(self, model):
        p = model.max_discharge_power(50.0, 298.15)
        i = NCR18650A.max_current_a
        v = model.terminal_voltage(50.0, i, 298.15)
        assert p == pytest.approx(float(i * v))
