"""Segment-based drive-cycle synthesis.

A cycle is described as an ordered list of :class:`SegmentSpec` entries, each
of which is one of:

* ``idle(duration)``        - hold zero speed,
* ``accel(to, rate)``       - ramp up to a target speed at a given rate,
* ``decel(to, rate)``       - ramp down to a target speed at a given rate,
* ``cruise(duration, ripple, period)`` - hold the current speed, optionally
  with a deterministic sinusoidal ripple that mimics real-traffic speed
  flutter (important for the battery current spectrum).

``synthesize`` compiles the program into a 1 Hz :class:`DriveCycle`.  The
synthesis is fully deterministic: the same program always yields the same
trace, which keeps tests and benchmarks reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drivecycle.cycle import DriveCycle
from repro.utils.units import kmh_to_mps


@dataclass(frozen=True)
class SegmentSpec:
    """One synthesis instruction.

    Attributes
    ----------
    kind:
        ``"idle"``, ``"accel"``, ``"decel"`` or ``"cruise"``.
    duration_s:
        For ``idle``/``cruise``: segment length [s].  Ignored for ramps.
    target_kmh:
        For ``accel``/``decel``: speed to ramp to [km/h].
    rate_ms2:
        For ``accel``/``decel``: |acceleration| [m/s^2], must be positive.
    ripple_kmh:
        For ``cruise``: peak sinusoidal speed deviation [km/h].
    ripple_period_s:
        For ``cruise``: ripple period [s].
    """

    kind: str
    duration_s: float = 0.0
    target_kmh: float = 0.0
    rate_ms2: float = 1.0
    ripple_kmh: float = 0.0
    ripple_period_s: float = 30.0

    def __post_init__(self):
        if self.kind not in ("idle", "accel", "decel", "cruise"):
            raise ValueError(f"unknown segment kind {self.kind!r}")
        if self.kind in ("idle", "cruise") and self.duration_s <= 0:
            raise ValueError(f"{self.kind} segment needs positive duration_s")
        if self.kind in ("accel", "decel") and self.rate_ms2 <= 0:
            raise ValueError(f"{self.kind} segment needs positive rate_ms2")
        if self.target_kmh < 0:
            raise ValueError("target_kmh must be non-negative")


def idle(duration_s: float) -> SegmentSpec:
    """Stand still for ``duration_s`` seconds."""
    return SegmentSpec("idle", duration_s=duration_s)


def accel(to_kmh: float, rate_ms2: float) -> SegmentSpec:
    """Accelerate to ``to_kmh`` at ``rate_ms2`` m/s^2."""
    return SegmentSpec("accel", target_kmh=to_kmh, rate_ms2=rate_ms2)


def decel(to_kmh: float, rate_ms2: float) -> SegmentSpec:
    """Decelerate to ``to_kmh`` at ``rate_ms2`` m/s^2 (magnitude)."""
    return SegmentSpec("decel", target_kmh=to_kmh, rate_ms2=rate_ms2)


def cruise(
    duration_s: float, ripple_kmh: float = 0.0, ripple_period_s: float = 30.0
) -> SegmentSpec:
    """Hold the current speed for ``duration_s`` seconds with optional ripple."""
    return SegmentSpec(
        "cruise",
        duration_s=duration_s,
        ripple_kmh=ripple_kmh,
        ripple_period_s=ripple_period_s,
    )


def synthesize(name: str, segments, dt: float = 1.0) -> DriveCycle:
    """Compile a segment program into a :class:`DriveCycle`.

    Parameters
    ----------
    name:
        Name for the resulting cycle.
    segments:
        Iterable of :class:`SegmentSpec` (see the builders above).
    dt:
        Sample period of the produced trace [s].

    Notes
    -----
    Ramp segments move from the current speed to the target at the given rate;
    a ramp that is already at its target contributes a single sample.  Cruise
    ripple is clipped at zero so the trace never goes negative.
    """
    samples = [0.0]
    speed = 0.0
    for seg in segments:
        if seg.kind == "idle":
            n = max(1, int(round(seg.duration_s / dt)))
            if speed > 1e-9:
                raise ValueError(
                    f"idle segment reached at nonzero speed {speed:.2f} m/s; "
                    "insert a decel(0, ...) first"
                )
            samples.extend([0.0] * n)
        elif seg.kind in ("accel", "decel"):
            target = float(kmh_to_mps(seg.target_kmh))
            if seg.kind == "accel" and target < speed - 1e-9:
                raise ValueError(
                    f"accel target {seg.target_kmh} km/h below current speed"
                )
            if seg.kind == "decel" and target > speed + 1e-9:
                raise ValueError(
                    f"decel target {seg.target_kmh} km/h above current speed"
                )
            step = seg.rate_ms2 * dt
            if seg.kind == "accel":
                while speed < target - 1e-9:
                    speed = min(target, speed + step)
                    samples.append(speed)
            else:
                while speed > target + 1e-9:
                    speed = max(target, speed - step)
                    samples.append(speed)
            speed = target
        else:  # cruise
            n = max(1, int(round(seg.duration_s / dt)))
            base = speed
            ripple = float(kmh_to_mps(seg.ripple_kmh))
            omega = 2.0 * np.pi / seg.ripple_period_s
            t_local = (np.arange(n) + 1) * dt
            wave = base + ripple * np.sin(omega * t_local)
            np.clip(wave, 0.0, None, out=wave)
            samples.extend(wave.tolist())
            # end the segment back on the base speed so the next ramp is clean
            speed = base
            samples[-1] = base
    return DriveCycle(name, np.asarray(samples), dt)
