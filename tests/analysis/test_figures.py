"""Figure-generator tests (small workloads; full scale lives in benchmarks/)."""

import numpy as np
import pytest

from repro.analysis.figures import (
    ALL_CYCLES,
    ALL_METHODOLOGIES,
    METHOD_LABELS,
    fig1_data,
    fig6_data,
    fig7_data,
    fig8_data,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def data(self):
        return fig1_data(sizes_f=(5_000, 25_000), cycle="us06", repeat=2)

    def test_one_trace_per_size(self, data):
        assert len(data.temps_k) == 2
        assert data.sizes_f == (5_000, 25_000)

    def test_traces_share_time_axis(self, data):
        for trace in data.temps_k:
            assert trace.shape == data.time_s.shape

    def test_small_bank_runs_hotter(self, data):
        assert np.max(data.temps_k[0]) >= np.max(data.temps_k[1]) - 0.5

    def test_violations_reported(self, data):
        assert len(data.violation_s) == 2
        assert all(v >= 0 for v in data.violation_s)


class TestFig6:
    @pytest.fixture(scope="class")
    def data(self):
        return fig6_data(cycle="us06", repeat=1, methodologies=("parallel", "dual"))

    def test_requested_methodologies_present(self, data):
        assert set(data.temps_k) == {"parallel", "dual"}

    def test_peaks_and_means_consistent(self, data):
        for m in data.temps_k:
            assert data.peak_k[m] >= data.mean_k[m]
            assert data.peak_k[m] == pytest.approx(float(np.max(data.temps_k[m])))


class TestFig7:
    @pytest.fixture(scope="class")
    def data(self):
        return fig7_data(cycle="nycc", repeat=1)

    def test_signals_aligned(self, data):
        n = data.time_s.size
        for arr in (
            data.battery_temp_k,
            data.cap_soe_percent,
            data.request_w,
            data.teb,
            data.upcoming_demand_w,
        ):
            assert arr.size == n

    def test_teb_in_unit_interval(self, data):
        assert np.all(data.teb >= 0.0)
        assert np.all(data.teb <= 1.0)

    def test_preparation_score_finite(self, data):
        assert np.isfinite(data.preparation_score)


class TestFig8:
    @pytest.fixture(scope="class")
    def data(self):
        return fig8_data(
            cycles=("nycc",), methodologies=("parallel", "dual"), repeat=1
        )

    def test_structure(self, data):
        assert data.cycles == ("nycc",)
        assert "parallel" in data.qloss_percent["nycc"]

    def test_parallel_normalized_to_one(self, data):
        assert data.qloss_ratio_vs_parallel["nycc"]["parallel"] == pytest.approx(1.0)

    def test_power_positive(self, data):
        assert data.avg_power_w["nycc"]["dual"] > 0

    def test_reduction_helper(self, data):
        r = data.mean_qloss_reduction_vs_parallel("dual")
        assert np.isfinite(r)


class TestConstants:
    def test_labels_cover_methodologies(self):
        assert set(METHOD_LABELS) == set(ALL_METHODOLOGIES)

    def test_cycles_are_library_names(self):
        from repro.drivecycle.library import available_cycles

        # the paper's evaluation set is a subset of the library (which also
        # carries WLTC/JC08/Artemis beyond the paper)
        assert set(ALL_CYCLES) <= set(available_cycles())
        assert len(ALL_CYCLES) == 5
