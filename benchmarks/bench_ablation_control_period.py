"""Ablation - control period (re-planning rate).

DESIGN.md design choice: OTEM replans every ``mpc_step_s`` seconds with
move blocking.  Faster replanning tracks pulses better at higher compute;
slower replanning leans on the preview.

Expected shape: all periods stay thermally safe; wall time falls as the
period grows.
"""

import time

from repro.sim.scenario import Scenario, run_scenario

PERIODS_S = (2.0, 5.0, 10.0)


def run_period(period):
    start = time.perf_counter()
    result = run_scenario(
        Scenario(methodology="otem", cycle="us06", repeat=1, mpc_step_s=period)
    )
    return result, time.perf_counter() - start


def test_ablation_control_period(benchmark):
    results = benchmark.pedantic(
        lambda: {p: run_period(p) for p in PERIODS_S}, rounds=1, iterations=1
    )

    print()
    print("Ablation - control period (US06 x1)")
    print(f"{'period [s]':>11} {'qloss [%]':>10} {'avg P [kW]':>11} {'wall [s]':>9}")
    for p in PERIODS_S:
        result, elapsed = results[p]
        print(
            f"{p:>11.0f} {result.qloss_percent:>10.4f} "
            f"{result.metrics.average_power_w / 1000:>11.2f} {elapsed:>9.1f}"
        )

    # slower replanning must be cheaper in wall time
    assert results[PERIODS_S[-1]][1] < results[PERIODS_S[0]][1]
    # every period keeps the battery in the safe zone
    for p in PERIODS_S:
        assert results[p][0].metrics.time_above_safe_s < 30.0
