"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      one scenario, print summary metrics.
``compare``  all four methodologies on one route, print the comparison.
``table1``   regenerate the paper's Table I.
``cycles``   list the built-in drive cycles and their statistics.
``export``   run a scenario and write the full trace to CSV.
``batch``    fan a scenario grid out over worker processes, with caching.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import METHOD_LABELS
from repro.analysis.report import render_table1
from repro.analysis.tables import table1_data
from repro.drivecycle.library import available_cycles, get_cycle
from repro.sim.engine import SimulationResult
from repro.sim.scenario import METHODOLOGIES, Scenario, run_scenario
from repro.utils.units import kelvin_to_celsius


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OTEM (DATE 2016) reproduction - EV HEES thermal/energy management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario and print metrics")
    _add_scenario_args(run)

    compare = sub.add_parser("compare", help="run all methodologies on one route")
    _add_scenario_args(compare, with_methodology=False)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table I")
    table1.add_argument("--repeat", type=int, default=2, help="cycle repetitions")

    sub.add_parser("cycles", help="list built-in drive cycles")

    export = sub.add_parser("export", help="run a scenario, write the trace to CSV")
    _add_scenario_args(export)
    export.add_argument("output", help="CSV file to write")

    batch = sub.add_parser(
        "batch",
        help="run a scenario grid across worker processes (cached)",
        description=(
            "Cross-product grid over the repeated flags below, executed by "
            "repro.sim.batch.run_batch with crash isolation per cell."
        ),
    )
    batch.add_argument(
        "--methodology",
        "-m",
        action="append",
        choices=METHODOLOGIES,
        help="methodology axis (repeatable; default: otem)",
    )
    batch.add_argument(
        "--cycle",
        "-c",
        action="append",
        help="drive-cycle axis (repeatable; default: us06)",
    )
    batch.add_argument(
        "--ucap-farads",
        action="append",
        type=float,
        help="bank-size axis [F] (repeatable; default: 25000)",
    )
    batch.add_argument(
        "--initial-temp-c",
        action="append",
        type=float,
        help="start-temperature axis [C] (repeatable; default: 24.85)",
    )
    batch.add_argument(
        "--rollout-backend",
        action="append",
        choices=("scalar", "vectorized"),
        help="MPC rollout-backend axis (repeatable; default: scalar)",
    )
    batch.add_argument(
        "--seeds",
        type=int,
        default=0,
        help="traffic-perturbation axis: members 0..N-1 (default: off)",
    )
    batch.add_argument(
        "--repeat", "-r", type=int, default=1, help="cycle repetitions (default: 1)"
    )
    batch.add_argument(
        "--workers",
        "-j",
        type=int,
        default=0,
        help="worker processes; 0 = serial in-process (default)",
    )
    batch.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="result-cache directory (default: .repro_cache)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-scenario wall-clock budget [s] (parallel mode)",
    )
    batch.add_argument(
        "--engine-backend",
        choices=("auto", "lockstep", "scalar"),
        default="auto",
        help=(
            "simulation engine: 'auto' (default) runs cells that share a "
            "lockstep group in one vectorized batch - baselines grouped by "
            "architecture, OTEM cells with the vectorized rollout backend "
            "grouped by solver shape (MPC ensembles replan in lockstep "
            "waves) - and keeps scalar-backend-MPC/singleton cells on the "
            "scalar engine; 'lockstep' forces every supported cell onto "
            "the batched engine; 'scalar' forces the per-cell engine "
            "everywhere"
        ),
    )
    batch.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the batch's BENCH-format JSON payload to this file",
    )

    return parser


def _add_scenario_args(parser: argparse.ArgumentParser, with_methodology: bool = True):
    if with_methodology:
        parser.add_argument(
            "--methodology",
            "-m",
            choices=METHODOLOGIES,
            default="otem",
            help="management policy (default: otem)",
        )
    parser.add_argument(
        "--cycle", "-c", default="us06", help="drive cycle (default: us06)"
    )
    parser.add_argument(
        "--repeat", "-r", type=int, default=1, help="cycle repetitions (default: 1)"
    )
    parser.add_argument(
        "--ucap-farads",
        type=float,
        default=25_000.0,
        help="ultracapacitor bank size [F] (default: 25000)",
    )
    parser.add_argument(
        "--initial-temp-c",
        type=float,
        default=24.85,
        help="initial battery/coolant temperature [C] (default: 24.85 = 298 K)",
    )
    parser.add_argument(
        "--rollout-backend",
        choices=("scalar", "vectorized"),
        default="scalar",
        help=(
            "MPC rollout implementation: 'scalar' (reference) or "
            "'vectorized' (batched NumPy kernel, several times faster; "
            "default: scalar)"
        ),
    )


def _scenario_from_args(args, methodology: str | None = None) -> Scenario:
    return Scenario(
        methodology=methodology or args.methodology,
        cycle=args.cycle,
        repeat=args.repeat,
        ucap_farads=args.ucap_farads,
        initial_temp_k=args.initial_temp_c + 273.15,
        rollout_backend=args.rollout_backend,
    )


def _print_summary(result: SimulationResult, out):
    m = result.metrics
    print(f"controller:      {result.controller_name}", file=out)
    print(f"route:           {result.cycle_name} ({m.duration_s:.0f} s)", file=out)
    print(f"capacity loss:   {m.qloss_percent:.4f} %", file=out)
    print(f"BLT:             {m.blt_routes:,.0f} routes to end-of-life", file=out)
    print(f"HEES energy:     {m.hees_energy_j / 3.6e6:.2f} kWh", file=out)
    print(f"average power:   {m.average_power_w / 1000:.2f} kW", file=out)
    print(f"cooling energy:  {m.cooling_energy_j / 3.6e6:.2f} kWh", file=out)
    print(
        f"peak temp:       {kelvin_to_celsius(m.peak_temp_k):.1f} C "
        f"({m.time_above_safe_s:.0f} s unsafe)",
        file=out,
    )
    print(f"unmet demand:    {m.unmet_energy_j / 3.6e6:.4f} kWh", file=out)


def cmd_run(args, out) -> int:
    result = run_scenario(_scenario_from_args(args))
    _print_summary(result, out)
    return 0


def cmd_compare(args, out) -> int:
    results = {}
    for m in METHODOLOGIES:
        results[m] = run_scenario(_scenario_from_args(args, methodology=m))
    base = results["parallel"].metrics.qloss_percent
    print(
        f"{'methodology':>14} {'Qloss [%]':>10} {'vs par':>8} "
        f"{'avg P [kW]':>11} {'peak T [C]':>11}",
        file=out,
    )
    for m, result in results.items():
        metrics = result.metrics
        print(
            f"{METHOD_LABELS[m]:>14} {metrics.qloss_percent:>10.4f} "
            f"{100 * metrics.qloss_percent / base:>7.1f}% "
            f"{metrics.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(metrics.peak_temp_k):>11.1f}",
            file=out,
        )
    return 0


def cmd_table1(args, out) -> int:
    print(render_table1(table1_data(repeat=args.repeat)), file=out)
    return 0


def cmd_cycles(args, out) -> int:
    print(
        f"{'cycle':>8} {'dur [s]':>8} {'dist [km]':>10} "
        f"{'vmax [km/h]':>12} {'vmean [km/h]':>13} {'stops':>6}",
        file=out,
    )
    for name in available_cycles():
        s = get_cycle(name).stats()
        print(
            f"{name:>8} {s.duration_s:>8.0f} {s.distance_km:>10.2f} "
            f"{s.max_speed_kmh:>12.1f} {s.mean_speed_kmh:>13.1f} {s.stop_count:>6}",
            file=out,
        )
    return 0


def cmd_export(args, out) -> int:
    from repro.analysis.export import write_trace_csv

    result = run_scenario(_scenario_from_args(args))
    write_trace_csv(result.trace, args.output)
    print(f"wrote {len(result.trace)} rows to {args.output}", file=out)
    _print_summary(result, out)
    return 0


def cmd_batch(args, out) -> int:
    import json

    from repro.sim.batch import ResultCache, run_batch, scenario_grid

    base = Scenario(repeat=args.repeat)
    axes = {
        "methodology": args.methodology or ["otem"],
        "cycle": args.cycle or ["us06"],
        "ucap_farads": args.ucap_farads or [25_000.0],
        "initial_temp_k": [t + 273.15 for t in (args.initial_temp_c or [24.85])],
        "rollout_backend": args.rollout_backend or ["scalar"],
    }
    if args.seeds:
        axes["perturb_seed"] = list(range(args.seeds))
    scenarios = scenario_grid(base, **axes)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    result = run_batch(
        scenarios,
        workers=args.workers,
        cache=cache,
        timeout_s=args.timeout,
        execution=args.engine_backend,
    )

    print(
        f"{'methodology':>12} {'cycle':>10} {'size [F]':>9} {'T0 [C]':>7} "
        f"{'Qloss [%]':>10} {'avg P [kW]':>11} {'peak T [C]':>11} "
        f"{'wall [s]':>9} {'':>6}",
        file=out,
    )
    for cell in result.cells:
        s = cell.scenario
        cycle_label = s.cycle if s.perturb_seed is None else f"{s.cycle}~{s.perturb_seed}"
        if not cell.ok:
            print(
                f"{s.methodology:>12} {cycle_label:>10} {s.ucap_farads:>9.0f} "
                f"{s.initial_temp_k - 273.15:>7.1f} FAILED: {cell.error}",
                file=out,
            )
            continue
        m = cell.metrics
        tag = "cached" if cell.cached else ""
        print(
            f"{s.methodology:>12} {cycle_label:>10} {s.ucap_farads:>9.0f} "
            f"{s.initial_temp_k - 273.15:>7.1f} {m.qloss_percent:>10.4f} "
            f"{m.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(m.peak_temp_k):>11.1f} {cell.wall_s:>9.2f} {tag:>6}",
            file=out,
        )
    print(
        f"{len(result)} cells in {result.wall_s:.2f} s "
        f"({result.workers or 1} worker(s), "
        f"{result.cache_hits} cache hit(s), {result.cache_misses} miss(es), "
        f"{len(result.failures)} failure(s))",
        file=out,
    )

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result.bench_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json_path}", file=out)
    return 0 if result.ok else 1


_COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "table1": cmd_table1,
    "cycles": cmd_cycles,
    "export": cmd_export,
    "batch": cmd_batch,
}


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)
