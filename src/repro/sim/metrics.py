"""Summary metrics: the quantities the paper's evaluation reports.

* ``Q_loss`` - accumulated battery capacity loss [%] (Algorithm 1 output,
  drives Fig. 8 and Table I).
* ``Energy`` - energy consumed in the HEES, sum of dE_bat + dE_cap
  (Algorithm 1 output).
* average power - EV plus active cooling (Fig. 9 and Table I).  Because the
  cooling loop draws from the HEES bus in this model, the HEES energy
  already contains the cooling energy; the average is HEES energy over
  route duration.
* thermal safety - peak temperature and time above the C1 limit (Fig. 1).
* BLT - routes-to-end-of-life from the per-route loss (paper Section I:
  20% loss = end of life).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.battery.aging import blt_equivalent_routes
from repro.sim.trace import Trace

#: Constraint C1 upper limit used for safety accounting [K] (40 C).
SAFE_TEMP_MAX_K = 313.15


@dataclass(frozen=True)
class SummaryMetrics:
    """Aggregates of one simulation run.

    Attributes
    ----------
    duration_s:
        Route duration [s].
    qloss_percent:
        Accumulated capacity loss [%].
    hees_energy_j:
        Sum of dE_bat + dE_cap over the route [J].
    cooling_energy_j:
        Cooler + pump electrical energy [J] (subset of hees_energy_j, since
        the loop draws from the bus).
    converter_loss_j:
        Energy dissipated in converters / switching paths [J].
    average_power_w:
        hees_energy_j / duration_s [W] - the paper's "Average Power".
    peak_temp_k:
        Maximum battery temperature [K].
    time_above_safe_s:
        Seconds with T_b above the C1 limit.
    min_soc_percent / min_soe_percent:
        Depletion extremes over the route.
    unmet_energy_j:
        Requested-but-undelivered energy [J] (should be ~0 for a healthy
        configuration).
    blt_routes:
        Routes-to-end-of-life implied by qloss_percent.
    """

    duration_s: float
    qloss_percent: float
    hees_energy_j: float
    cooling_energy_j: float
    converter_loss_j: float
    average_power_w: float
    peak_temp_k: float
    time_above_safe_s: float
    min_soc_percent: float
    min_soe_percent: float
    unmet_energy_j: float
    blt_routes: float


def compute_metrics(trace: Trace, safe_temp_k: float = SAFE_TEMP_MAX_K) -> SummaryMetrics:
    """Reduce a :class:`Trace` to :class:`SummaryMetrics`."""
    dt = trace.dt
    duration = float(trace.time_s[-1] + dt) if len(trace) else 0.0
    qloss = float(np.sum(trace.loss_increment_percent))
    hees_energy = float(np.sum(trace.chem_energy_j) + np.sum(trace.cap_energy_j))
    cooling_energy = float(np.sum(trace.cooling_power_w) * dt)
    conv_loss = float(np.sum(trace.converter_loss_j))
    avg_power = hees_energy / duration if duration > 0 else 0.0
    above = trace.battery_temp_k > safe_temp_k
    return SummaryMetrics(
        duration_s=duration,
        qloss_percent=qloss,
        hees_energy_j=hees_energy,
        cooling_energy_j=cooling_energy,
        converter_loss_j=conv_loss,
        average_power_w=avg_power,
        peak_temp_k=float(np.max(trace.battery_temp_k)),
        time_above_safe_s=float(np.sum(above) * dt),
        min_soc_percent=float(np.min(trace.battery_soc_percent)),
        min_soe_percent=float(np.min(trace.cap_soe_percent)),
        unmet_energy_j=float(np.sum(np.clip(trace.unmet_w, 0.0, None)) * dt),
        blt_routes=blt_equivalent_routes(qloss),
    )
