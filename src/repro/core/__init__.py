"""OTEM: Optimized Thermal and Energy Management (paper Section III).

The controller solves, every control period, the finite-horizon program of
Eq. 18-19: minimize

    F = sum_k  w1 * P_c dt  +  w2 * Q_loss  +  w3 * (dE_bat + dE_cap)

over the ultracapacitor power split and the coolant inlet temperature,
subject to the discretized plant dynamics (Eq. 17) and constraints C1-C7.
States are eliminated by forward rollout (single shooting); state
constraints become smooth hinge penalties; terminal states are priced at
their restoration cost so the horizon-end ultracapacitor depletion or
battery heat-up is never "free" (see DESIGN.md section 6).

Public API
----------
``OTEMController``
    Drop-in :class:`repro.controllers.base.Controller` for the hybrid
    architecture with active cooling.
``CostWeights``
    w1/w2/w3 of Eq. 19 plus penalty/terminal shaping.
``MPCPlanner`` / ``PredictionModel``
    The optimizer and the rollout it optimizes over.
``teb_trace`` / ``TEBParams``
    The paper's Thermal-and-Energy-Budget metric.
"""

from repro.core.cost import CostWeights
from repro.core.estimator import FilteredObservations, ThermalKalmanFilter
from repro.core.rollout import PredictionModel, RolloutResult
from repro.core.mpc import MPCPlan, MPCPlanner, SolverStats
from repro.core.otem import OTEMController
from repro.core.teb import (
    TEBParams,
    teb_preparation_score,
    teb_trace,
    upcoming_demand_w,
)

__all__ = [
    "CostWeights",
    "FilteredObservations",
    "ThermalKalmanFilter",
    "PredictionModel",
    "RolloutResult",
    "MPCPlan",
    "MPCPlanner",
    "SolverStats",
    "OTEMController",
    "TEBParams",
    "teb_preparation_score",
    "teb_trace",
    "upcoming_demand_w",
]
