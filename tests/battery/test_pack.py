"""Battery-pack aggregation tests."""

import pytest

from repro.battery.pack import DEFAULT_PACK, BatteryPack, PackConfig
from repro.battery.params import NCR18650A


class TestPackConfig:
    def test_default_layout(self):
        assert DEFAULT_PACK.series == 96
        assert DEFAULT_PACK.parallel == 30
        assert DEFAULT_PACK.cell_count == 2880

    def test_nominal_voltage(self):
        assert DEFAULT_PACK.nominal_voltage_v == pytest.approx(96 * 3.6)

    def test_capacity(self):
        assert DEFAULT_PACK.capacity_ah == pytest.approx(30 * 3.1)

    def test_energy_kwh_in_compact_ev_range(self):
        assert 28 <= DEFAULT_PACK.energy_kwh <= 36

    def test_heat_capacity(self):
        assert DEFAULT_PACK.heat_capacity_j_per_k == pytest.approx(
            2880 * NCR18650A.heat_capacity_j_per_k
        )

    def test_rejects_zero_strings(self):
        with pytest.raises(ValueError):
            PackConfig(series=0)
        with pytest.raises(ValueError):
            PackConfig(parallel=0)

    def test_max_power_scales_with_parallel(self):
        small = PackConfig(series=96, parallel=10)
        assert DEFAULT_PACK.max_power_w == pytest.approx(3 * small.max_power_w)


class TestPackElectrical:
    def test_pack_voc_is_series_sum(self, pack):
        cell_voc = float(pack.electrical.open_circuit_voltage(100.0))
        assert pack.open_circuit_voltage() == pytest.approx(96 * cell_voc)

    def test_pack_resistance_layout(self, pack):
        cell_r = float(pack.electrical.internal_resistance(100.0, 298.0))
        assert pack.internal_resistance() == pytest.approx(cell_r * 96 / 30)

    def test_discharge_headroom_full(self, pack):
        # 80% of nominal energy above the 20% floor
        assert pack.discharge_headroom_j() == pytest.approx(
            0.8 * pack.config.energy_kwh * 3.6e6
        )

    def test_discharge_headroom_at_floor(self, pack):
        pack.state.soc_percent = 20.0
        assert pack.discharge_headroom_j() == 0.0


class TestApplyPower:
    def test_discharge_reduces_soc(self, pack):
        before = pack.soc_percent
        pack.apply_power(50_000.0, 10.0)
        assert pack.soc_percent < before

    def test_power_balance(self, pack):
        result = pack.apply_power(50_000.0, 1.0)
        assert result.terminal_power_w == pytest.approx(50_000.0, rel=1e-6)
        assert not result.clipped

    def test_current_split_across_strings(self, pack):
        result = pack.apply_power(50_000.0, 1.0)
        assert result.pack_current_a == pytest.approx(result.cell_current_a * 30)

    def test_heat_positive_on_discharge(self, pack):
        assert pack.apply_power(50_000.0, 1.0).heat_w > 0

    def test_chem_energy_exceeds_terminal_energy(self, pack):
        # chemistry supplies terminal power plus the I^2R loss
        result = pack.apply_power(50_000.0, 1.0)
        assert result.chem_energy_j > result.terminal_power_w * 1.0

    def test_charge_negative_chem_energy(self, pack):
        pack.state.soc_percent = 50.0
        result = pack.apply_power(-20_000.0, 1.0)
        assert result.chem_energy_j < 0
        assert result.cell_current_a < 0

    def test_current_limit_clips(self, pack):
        result = pack.apply_power(10_000_000.0, 1.0)
        assert result.clipped
        assert result.cell_current_a == pytest.approx(NCR18650A.max_current_a)

    def test_no_discharge_below_soc_floor(self, pack):
        pack.state.soc_percent = BatteryPack.SOC_MIN
        result = pack.apply_power(10_000.0, 1.0)
        assert result.clipped
        assert result.cell_current_a == 0.0

    def test_no_charge_above_full(self, pack):
        result = pack.apply_power(-10_000.0, 1.0)
        assert result.clipped
        assert result.cell_current_a == 0.0

    def test_aging_accumulates(self, pack):
        pack.apply_power(50_000.0, 10.0)
        assert pack.loss_percent > 0

    def test_rejects_nonpositive_dt(self, pack):
        with pytest.raises(ValueError):
            pack.apply_power(1_000.0, 0.0)

    def test_hot_pack_delivers_power_more_efficiently(self):
        cold = BatteryPack(initial_temp_k=278.15)
        hot = BatteryPack(initial_temp_k=318.15)
        rc = cold.apply_power(50_000.0, 1.0)
        rh = hot.apply_power(50_000.0, 1.0)
        assert rh.heat_w < rc.heat_w
        assert rh.chem_energy_j < rc.chem_energy_j


class TestLifecycle:
    def test_set_temperature(self, pack):
        pack.set_temperature(310.0)
        assert pack.temp_k == 310.0

    def test_set_temperature_rejects_nonpositive(self, pack):
        with pytest.raises(ValueError):
            pack.set_temperature(0.0)

    def test_reset(self, pack):
        pack.apply_power(50_000.0, 100.0)
        pack.set_temperature(320.0)
        pack.reset()
        assert pack.soc_percent == 100.0
        assert pack.temp_k == 298.0
        assert pack.loss_percent == 0.0

    def test_initial_condition_validation(self):
        with pytest.raises(ValueError):
            BatteryPack(initial_soc_percent=150.0)
        with pytest.raises(ValueError):
            BatteryPack(initial_temp_k=-5.0)

    def test_soc_never_negative_under_deep_drain(self, small_pack):
        for _ in range(10_000):
            small_pack.apply_power(500.0, 10.0)
        assert small_pack.soc_percent >= 0.0
