"""Lockstep multi-problem L-BFGS-B driver.

Runs S *independent* bound-constrained minimizations simultaneously by
driving one reverse-communication L-BFGS-B state machine per problem
(``scipy.optimize._lbfgsb.setulb``) and batching the function+gradient
requests of every problem that needs one into a single stacked callback
call per round.  Each problem follows exactly the iteration protocol of
``scipy.optimize._lbfgsb_py._minimize_lbfgsb`` — same task codes, same
``maxiter``/``maxfun`` postponement points, same function-value cache of
one — so a problem advanced here produces the bitwise-identical iterate
sequence it would produce under ``scipy.optimize.minimize`` with the
same function.  The only thing that changes is *when* the evaluations
happen: grouped across problems instead of interleaved per problem.

Why this exists: the batched MPC solver (``repro.core.mpc``) wants to
solve one penalty program per scenario.  The programs are independent —
coupling them into one joint decision vector would let one scenario's
line search contaminate another's iterate sequence and break the
per-scenario equivalence contract.  Driving S state machines in lockstep
keeps every scenario's trajectory exactly what a scalar solve would
produce while still paying only ~max(rounds) stacked kernel calls
instead of sum(rounds) scalar ones.

``setulb`` is a private scipy interface.  The driver therefore probes it
once (first use) against ``scipy.optimize.minimize`` on a reference
problem; any discrepancy or signature change flips a permanent fallback
to per-problem ``optimize.minimize`` calls that reuse the same stacked
callback with batch size 1 — slower, never wrong.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

try:  # pragma: no cover - import always succeeds on supported scipy
    from scipy.optimize import _lbfgsb as _lbfgsb_mod
except ImportError:  # pragma: no cover
    _lbfgsb_mod = None

#: Maximum L-BFGS-B corrections (scipy's ``maxcor`` default).
MAXCOR = 10
#: Maximum line-search steps per iteration (scipy's ``maxls`` default).
MAXLS = 20

# Lazily-probed compatibility flag: None = not probed yet, True = the
# setulb driver reproduces optimize.minimize bitwise, False = fall back
# to serial per-problem optimize.minimize permanently.
_driver_ok: bool | None = None

# evaluate(X: (B, nvar), idx: (B,)) -> (f: (B,), G: (B, nvar))
BatchEvaluate = Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]


@dataclasses.dataclass(frozen=True)
class DriverResult:
    """Per-problem outcome, mirroring the ``OptimizeResult`` fields we use."""

    x: np.ndarray
    fun: float
    nit: int
    nfev: int
    converged: bool


class _Problem:
    """One L-BFGS-B state machine, one scipy-equivalent iterate sequence.

    The function cache mirrors ``ScalarFunction``: it holds the (f, g)
    of the most recent distinct evaluation point, keyed by
    ``np.array_equal`` against that point, and ``nfev`` counts distinct
    evaluations including the eager one at x0.
    """

    def __init__(
        self,
        index: int,
        x0: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        maxfun: int,
        maxiter: int,
        factr: float,
        pgtol: float,
    ) -> None:
        n = x0.shape[0]
        m = MAXCOR
        self.index = index
        self.x = np.clip(x0, lower, upper).astype(np.float64)
        self.f: np.ndarray | float = np.array(0.0, dtype=np.float64)
        self.g = np.zeros(n, dtype=np.float64)
        self.lower = lower
        self.upper = upper
        self.nbd = np.full(n, 2, dtype=np.int32)  # both bounds finite
        self.factr = factr
        self.pgtol = pgtol
        self.wa = np.zeros(2 * m * n + 5 * n + 11 * m * m + 8 * m, np.float64)
        self.iwa = np.zeros(3 * n, np.int32)
        self.task = np.zeros(2, np.int32)
        self.ln_task = np.zeros(2, np.int32)
        self.lsave = np.zeros(4, np.int32)
        self.isave = np.zeros(44, np.int32)
        self.dsave = np.zeros(29, np.float64)
        self.maxfun = maxfun
        self.maxiter = maxiter
        self.n_iterations = 0
        self.nfev = 0
        self.done = False
        self.x_cache: np.ndarray | None = None
        self.f_cache = 0.0
        self.g_cache: np.ndarray | None = None

    def deliver(self, f: float, g: np.ndarray) -> None:
        """Record a fresh evaluation at the current x (one nfev)."""
        self.x_cache = self.x.copy()
        self.f_cache = float(f)
        self.g_cache = np.asarray(g, dtype=np.float64).copy()
        self.nfev += 1
        self.f = self.f_cache
        self.g = self.g_cache

    def advance(self) -> np.ndarray | None:
        """Run setulb until a *new* evaluation point or termination.

        Returns a snapshot of the point to evaluate, or None if the
        problem terminated (``self.done`` set).  Requests at the cached
        point are served inline without consuming budget, exactly as
        ``ScalarFunction.fun_and_grad`` would.
        """
        while True:
            _lbfgsb_mod.setulb(
                MAXCOR,
                self.x,
                self.lower,
                self.upper,
                self.nbd,
                self.f,
                np.asarray(self.g, dtype=np.float64),
                self.factr,
                self.pgtol,
                self.wa,
                self.iwa,
                self.task,
                self.lsave,
                self.isave,
                self.dsave,
                MAXLS,
                self.ln_task,
            )
            if self.task[0] == 3:
                if self.x_cache is not None and np.array_equal(self.x, self.x_cache):
                    self.f = self.f_cache
                    self.g = self.g_cache
                    continue
                return self.x.copy()
            if self.task[0] == 1:
                self.n_iterations += 1
                if self.n_iterations >= self.maxiter:
                    self.task[0] = 5
                    self.task[1] = 504
                elif self.nfev > self.maxfun:
                    self.task[0] = 5
                    self.task[1] = 502
                continue
            self.done = True
            return None

    def result(self) -> DriverResult:
        converged = bool(self.task[0] == 4)
        return DriverResult(
            x=self.x.copy(),
            fun=float(self.f),
            nit=self.n_iterations,
            nfev=self.nfev,
            converged=converged,
        )


def _minimize_serial(
    evaluate: BatchEvaluate,
    x0s: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    maxfuns: Sequence[int],
    maxiter: int,
    ftol: float,
    pgtol: float,
) -> list[DriverResult]:
    """Fallback: per-problem optimize.minimize over the same callback."""
    bounds = list(zip(lower.tolist(), upper.tolist()))
    results: list[DriverResult] = []
    for j in range(x0s.shape[0]):
        idx = np.array([j])

        def fun_and_grad(z: np.ndarray, _idx: np.ndarray = idx) -> tuple[float, np.ndarray]:
            f, g = evaluate(z[None, :], _idx)
            return float(f[0]), g[0]

        res = optimize.minimize(
            fun_and_grad,
            x0s[j],
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={
                "maxfun": int(maxfuns[j]),
                "maxiter": maxiter,
                "ftol": ftol,
                "gtol": pgtol,
            },
        )
        results.append(
            DriverResult(
                x=np.asarray(res.x, dtype=np.float64),
                fun=float(res.fun),
                nit=int(res.nit),
                nfev=int(res.nfev),
                converged=bool(res.success),
            )
        )
    return results


def _minimize_lockstep_raw(
    evaluate: BatchEvaluate,
    x0s: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    maxfuns: Sequence[int],
    maxiter: int,
    ftol: float,
    pgtol: float,
) -> list[DriverResult]:
    """The actual lockstep loop (assumes setulb is usable)."""
    factr = ftol / np.finfo(float).eps
    problems = [
        _Problem(j, x0s[j], lower, upper, int(maxfuns[j]), maxiter, factr, pgtol)
        for j in range(x0s.shape[0])
    ]
    # Round 0: ScalarFunction evaluates eagerly at x0 (one nfev each)
    # before the first setulb call; the first task==3 request is then
    # served from this cache.
    x_init = np.stack([p.x for p in problems])
    f0, g0 = evaluate(x_init, np.arange(len(problems)))
    for j, p in enumerate(problems):
        p.deliver(f0[j], g0[j])

    active = list(problems)
    while active:
        requests: list[tuple[_Problem, np.ndarray]] = []
        for p in active:
            point = p.advance()
            if point is not None:
                requests.append((p, point))
        active = [p for p in active if not p.done]
        if not requests:
            break
        batch = np.stack([point for _, point in requests])
        idx = np.array([p.index for p, _ in requests])
        fv, gv = evaluate(batch, idx)
        for row, (p, _) in enumerate(requests):
            p.deliver(fv[row], gv[row])
    return [p.result() for p in problems]


def _probe_driver() -> bool:
    """Check the setulb protocol against optimize.minimize, bitwise.

    Runs a small convex-but-not-quadratic reference problem through both
    paths with an identical function and compares the full result tuple.
    Any exception or mismatch disables the lockstep driver permanently
    for this process.
    """
    if _lbfgsb_mod is None or not hasattr(_lbfgsb_mod, "setulb"):
        return False
    center = np.array([0.3, 0.85, 0.1, 0.6])
    x0 = np.array([0.9, 0.1, 0.7, 0.2])
    lower = np.zeros(4)
    upper = np.ones(4)

    def evaluate(batch: np.ndarray, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d = batch - center
        f = np.sum(d**4 + 0.5 * d**2, axis=1)
        g = 4.0 * d**3 + d
        return f, g

    try:
        driven = _minimize_lockstep_raw(
            evaluate, x0[None, :], lower, upper, [40], 60, 1e-12, 1e-5
        )[0]
        ref = optimize.minimize(
            lambda z: (float(np.sum((z - center) ** 4 + 0.5 * (z - center) ** 2)),
                       4.0 * (z - center) ** 3 + (z - center)),
            x0,
            jac=True,
            method="L-BFGS-B",
            bounds=[(0.0, 1.0)] * 4,
            options={"maxfun": 40, "maxiter": 60, "ftol": 1e-12, "gtol": 1e-5},
        )
    except Exception:  # pragma: no cover - signature drift path
        return False
    return bool(
        np.array_equal(driven.x, np.asarray(ref.x))
        and driven.fun == float(ref.fun)
        and driven.nit == int(ref.nit)
        and driven.nfev == int(ref.nfev)
    )


def lockstep_available() -> bool:
    """Whether the batched setulb driver is in use (probes on first call)."""
    global _driver_ok
    if _driver_ok is None:
        _driver_ok = _probe_driver()
    return _driver_ok


def minimize_lockstep(
    evaluate: BatchEvaluate,
    x0s: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    maxfun: int | Sequence[int],
    maxiter: int = 60,
    ftol: float = 1e-12,
    pgtol: float = 1e-5,
) -> list[DriverResult]:
    """Minimize S independent bound-constrained problems in lockstep.

    Parameters
    ----------
    evaluate
        Stacked objective: ``evaluate(X, idx) -> (f, G)`` where ``X`` is
        ``(B, nvar)``, ``idx`` maps each row to its problem index, and
        the return is ``(B,)`` values with ``(B, nvar)`` gradients.
    x0s
        ``(S, nvar)`` initial points (clipped to bounds, as scipy does).
    lower, upper
        ``(nvar,)`` bounds shared by all problems.
    maxfun
        Function-evaluation budget — scalar, or one per problem.
    """
    x0s = np.asarray(x0s, dtype=np.float64)
    if x0s.ndim != 2:
        raise ValueError("x0s must be (S, nvar)")
    n_problems = x0s.shape[0]
    if np.isscalar(maxfun):
        maxfuns: Sequence[int] = [int(maxfun)] * n_problems
    else:
        maxfuns = [int(b) for b in maxfun]
        if len(maxfuns) != n_problems:
            raise ValueError("len(maxfun) must match the number of problems")
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if not lockstep_available():
        return _minimize_serial(
            evaluate, x0s, lower, upper, maxfuns, maxiter, ftol, pgtol
        )
    return _minimize_lockstep_raw(
        evaluate, x0s, lower, upper, maxfuns, maxiter, ftol, pgtol
    )
