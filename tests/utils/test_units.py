"""Unit-conversion tests."""

import numpy as np
import pytest

from repro.utils import units


class TestTemperature:
    def test_celsius_to_kelvin_zero(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_kelvin_to_celsius_zero(self):
        assert units.kelvin_to_celsius(273.15) == pytest.approx(0.0)

    def test_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)

    def test_vectorized(self):
        out = units.celsius_to_kelvin(np.array([0.0, 100.0]))
        assert np.allclose(out, [273.15, 373.15])


class TestSpeed:
    def test_kmh_to_mps(self):
        assert units.kmh_to_mps(36.0) == pytest.approx(10.0)

    def test_mps_to_kmh(self):
        assert units.mps_to_kmh(10.0) == pytest.approx(36.0)

    def test_roundtrip(self):
        assert units.kmh_to_mps(units.mps_to_kmh(7.3)) == pytest.approx(7.3)

    def test_mph_to_mps(self):
        # 60 mph ~= 26.82 m/s
        assert units.mph_to_mps(60.0) == pytest.approx(26.8224, rel=1e-4)


class TestEnergy:
    def test_kwh_to_joule(self):
        assert units.kwh_to_joule(1.0) == pytest.approx(3.6e6)

    def test_joule_to_kwh(self):
        assert units.joule_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert units.joule_to_kwh(units.kwh_to_joule(0.37)) == pytest.approx(0.37)


class TestCharge:
    def test_ah_to_coulomb(self):
        assert units.ah_to_coulomb(1.0) == pytest.approx(3600.0)

    def test_coulomb_to_ah(self):
        assert units.coulomb_to_ah(3600.0) == pytest.approx(1.0)

    def test_cell_capacity(self):
        # NCR18650A: 3.1 Ah = 11,160 C
        assert units.ah_to_coulomb(3.1) == pytest.approx(11_160.0)


def test_gas_constant_value():
    assert units.GAS_CONSTANT == pytest.approx(8.314, rel=1e-3)
