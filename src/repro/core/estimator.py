"""Thermal state estimation for noisy BMS measurements.

The paper's controller consumes measured states directly; real BMS
temperature channels carry noise (see
:class:`repro.controllers.wrappers.NoisyObservations`).  This module adds a
steady-gain Kalman filter on the pack's two-state linear thermal model
(Eq. 14-15): predict with the known heat input and inlet command, correct
with the noisy measurements.  Wrapping a policy in
:class:`FilteredObservations` recovers most of the performance the noise
costs (``benchmarks/bench_ablation_estimation.py``).
"""

from __future__ import annotations

import numpy as np

from repro.controllers.base import Controller, Decision, Observation
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.utils.validation import check_positive


class ThermalKalmanFilter:
    """Steady-gain Kalman filter for (T_b, T_c).

    The thermal dynamics (Eq. 14-15) are linear in the temperatures for a
    given heat input and inlet temperature, so a constant-gain filter is
    exact up to the input uncertainty.  The gain is computed offline from
    the discrete Riccati iteration at construction.

    Parameters
    ----------
    coolant:
        Loop parameters (gives the A/B matrices).
    pack_heat_capacity_j_per_k:
        C_b of Eq. 14.
    dt:
        Filter step period [s] (must match the control period).
    process_sigma_k:
        Modelling/heat-input uncertainty per step [K].
    measurement_sigma_k:
        Temperature sensor noise standard deviation [K].
    """

    def __init__(
        self,
        coolant: CoolantParams = DEFAULT_COOLANT,
        pack_heat_capacity_j_per_k: float = 118_080.0,
        dt: float = 1.0,
        process_sigma_k: float = 0.05,
        measurement_sigma_k: float = 1.0,
    ):
        check_positive(dt, "dt")
        check_positive(process_sigma_k, "process_sigma_k")
        check_positive(measurement_sigma_k, "measurement_sigma_k")
        self._p = coolant
        self._cb = check_positive(
            pack_heat_capacity_j_per_k, "pack_heat_capacity_j_per_k"
        )
        self._dt = dt

        # continuous dynamics: d/dt [Tb, Tc] = A [Tb, Tc] + inputs
        h = coolant.h_battery_coolant_w_per_k
        cc = coolant.coolant_heat_capacity_j_per_k
        wc = coolant.flow_capacity_rate_w_per_k
        a = np.array(
            [
                [-h / self._cb, h / self._cb],
                [h / cc, -(h + wc) / cc],
            ]
        )
        self._A = np.eye(2) + dt * a  # explicit Euler discretization
        self._B_heat = np.array([dt / self._cb, 0.0])
        self._B_inlet = np.array([0.0, dt * wc / cc])

        # steady Kalman gain via Riccati iteration
        q = (process_sigma_k**2) * np.eye(2)
        r = (measurement_sigma_k**2) * np.eye(2)
        p_cov = q.copy()
        for _ in range(500):
            p_pred = self._A @ p_cov @ self._A.T + q
            s = p_pred + r
            k = p_pred @ np.linalg.inv(s)
            p_cov = (np.eye(2) - k) @ p_pred
        self._gain = k

        self._state: np.ndarray | None = None

    @property
    def gain(self) -> np.ndarray:
        """Steady Kalman gain (2x2)."""
        return self._gain

    @property
    def state(self) -> np.ndarray | None:
        """Current estimate [T_b, T_c] or None before initialization."""
        return self._state

    def reset(self):
        """Forget the estimate (fresh route)."""
        self._state = None

    def update(
        self,
        measured_tb_k: float,
        measured_tc_k: float,
        heat_w: float = 0.0,
        inlet_temp_k: float | None = None,
        cooling_active: bool = False,
    ) -> tuple:
        """One predict/correct step; returns the estimate (T_b, T_c).

        Parameters
        ----------
        measured_tb_k / measured_tc_k:
            Noisy temperature measurements [K].
        heat_w:
            Known pack heat input since the last step [W] (from the power
            command; zero is acceptable, the filter treats the error as
            process noise).
        inlet_temp_k:
            Applied coolant inlet [K]; None or ``cooling_active=False``
            drops the flow term.
        cooling_active:
            Whether the flow/cooler path was active.
        """
        z = np.array([measured_tb_k, measured_tc_k])
        if self._state is None:
            self._state = z.copy()
            return tuple(self._state)

        # predict
        pred = self._A @ self._state + self._B_heat * heat_w
        if cooling_active and inlet_temp_k is not None:
            pred = pred + self._B_inlet * inlet_temp_k
        else:
            # no flow: remove the -wc/cc leak the A matrix carries by
            # feeding back the coolant's own temperature as "inlet"
            pred = pred + self._B_inlet * self._state[1]

        # correct
        self._state = pred + self._gain @ (z - pred)
        return tuple(self._state)


class FilteredObservations:
    """Run a policy on Kalman-filtered temperature estimates.

    Chain outside a noise wrapper::

        FilteredObservations(OTEMController(...))

    inside the simulator's noisy path::

        NoisyObservations(FilteredObservations(OTEMController(...)))

    (the noise wrapper perturbs the measurement, the filter cleans it, the
    policy sees the estimate).
    """

    def __init__(
        self,
        inner: Controller,
        coolant: CoolantParams = DEFAULT_COOLANT,
        pack_heat_capacity_j_per_k: float = 118_080.0,
        measurement_sigma_k: float = 1.0,
    ):
        self._inner = inner
        self._filter = ThermalKalmanFilter(
            coolant,
            pack_heat_capacity_j_per_k,
            measurement_sigma_k=measurement_sigma_k,
        )
        self._last_decision: Decision | None = None

    @property
    def name(self) -> str:
        """Wrapped name with a filter tag."""
        return f"{self._inner.name}+kf"

    @property
    def architecture(self):
        """Same plant as the wrapped policy."""
        return self._inner.architecture

    @property
    def uses_cooling(self) -> bool:
        """Same cooling declaration as the wrapped policy."""
        return self._inner.uses_cooling

    def control(self, obs: Observation) -> Decision:
        """Filter the temperatures, then delegate."""
        last = self._last_decision
        tb_hat, tc_hat = self._filter.update(
            obs.battery_temp_k,
            obs.coolant_temp_k,
            heat_w=0.0,
            inlet_temp_k=last.inlet_temp_k if last else None,
            cooling_active=bool(last.cooling_active) if last else False,
        )
        filtered = Observation(
            step_index=obs.step_index,
            time_s=obs.time_s,
            dt=obs.dt,
            power_request_w=obs.power_request_w,
            preview_w=obs.preview_w,
            battery_soc_percent=obs.battery_soc_percent,
            battery_temp_k=tb_hat,
            coolant_temp_k=tc_hat,
            cap_soe_percent=obs.cap_soe_percent,
        )
        decision = self._inner.control(filtered)
        self._last_decision = decision
        return decision

    def reset(self):
        """Reset policy and filter."""
        self._inner.reset()
        self._filter.reset()
        self._last_decision = None
