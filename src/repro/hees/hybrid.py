"""Hybrid HEES architecture: converters on a common DC bus (Section II-C.2).

Each storage sits behind its own DC/DC converter, so the controller can
command an arbitrary (bounded) power split - this is the architecture OTEM
drives.  The battery converter runs near its reference voltage and is almost
flat; the ultracapacitor converter's efficiency sags with Vcap, which is the
coupling OTEM's cost function exploits (don't over-deplete the bank).

Sign conventions (bus side): positive = storage discharging into the bus.
The EV request is met as

    request = cap_bus + battery_bus

where ``cap_bus`` is the controller's command (clipped by physics) and the
battery covers the remainder.  Negative requests (regen) charge whatever the
controller routes them to.
"""

from __future__ import annotations

import numpy as np

from repro.battery.pack import BatteryPack, BatteryPackVec
from repro.hees.converter import ConverterParams, DCDCConverter
from repro.hees.state import HEESStepBatch, HEESStepResult
from repro.ultracap.bank import UltracapBank, UltracapBankVec, UltracapStepResult


def default_battery_converter(pack: BatteryPack) -> DCDCConverter:
    """Battery-port converter: flat, high efficiency near pack voltage."""
    return DCDCConverter(
        ConverterParams(
            eta_max=0.97,
            eta_min=0.90,
            droop=0.10,
            v_ref=pack.config.nominal_voltage_v,
            max_power_w=2.0 * pack.config.max_power_w,
        )
    )


def default_cap_converter(bank: UltracapBank) -> DCDCConverter:
    """Ultracap-port converter: efficiency sags as the bank depletes."""
    return DCDCConverter(
        ConverterParams(
            eta_max=0.97,
            eta_min=0.82,
            droop=0.30,
            v_ref=bank.params.rated_voltage_v,
            max_power_w=bank.params.max_power_w,
        )
    )


class HybridHEES:
    """Converter-decoupled battery + ultracapacitor storage.

    Parameters
    ----------
    pack:
        Battery pack.
    bank:
        Ultracapacitor bank (module-rated; the converter bridges voltages).
    battery_converter / cap_converter:
        Converter ports; defaults built from the storage ratings.
    """

    def __init__(
        self,
        pack: BatteryPack,
        bank: UltracapBank,
        battery_converter: DCDCConverter | None = None,
        cap_converter: DCDCConverter | None = None,
    ):
        self._pack = pack
        self._bank = bank
        self._bat_conv = battery_converter or default_battery_converter(pack)
        self._cap_conv = cap_converter or default_cap_converter(bank)

    @property
    def pack(self) -> BatteryPack:
        """The battery pack."""
        return self._pack

    @property
    def bank(self) -> UltracapBank:
        """The ultracapacitor bank."""
        return self._bank

    @property
    def battery_converter(self) -> DCDCConverter:
        """Battery-port converter."""
        return self._bat_conv

    @property
    def cap_converter(self) -> DCDCConverter:
        """Ultracap-port converter."""
        return self._cap_conv

    def cap_bus_limits(self, dt: float) -> tuple[float, float]:
        """(min, max) feasible ultracap bus-power command for a ``dt`` step.

        Max is discharge (bank energy, converter rating); min is charge
        (negative; bank headroom, converter rating).
        """
        v = self._bank.voltage()
        eta = float(self._cap_conv.efficiency(v))
        discharge = min(
            self._bank.max_discharge_power_w(dt) * eta,
            self._cap_conv.params.max_power_w * eta,
        )
        charge = min(
            self._bank.max_charge_power_w(dt) / eta if eta > 0 else 0.0,
            self._cap_conv.params.max_power_w / eta if eta > 0 else 0.0,
        )
        return (-charge, discharge)

    def step(self, request_w: float, cap_bus_command_w: float, dt: float) -> HEESStepResult:
        """Advance one step with the controller's ultracap split.

        Parameters
        ----------
        request_w:
            EV bus power request [W] (negative = regen).
        cap_bus_command_w:
            Bus-side ultracapacitor power command [W]; positive discharges
            the bank into the bus, negative recharges the bank from the bus
            (i.e. from the battery and/or regen).  Clipped to feasibility.
        dt:
            Step duration [s].
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank

        lo, hi = self.cap_bus_limits(dt)
        # charging the bank must never displace load delivery: the battery
        # has to cover request - cap_bus, so the charge command is limited
        # to the battery's remaining bus-side headroom
        v_pack_now = pack.open_circuit_voltage()
        bat_max_bus = self._bat_conv.bus_power_for_port(
            pack.max_discharge_power_w(), v_pack_now
        )
        headroom = bat_max_bus - max(request_w, 0.0)
        lo = min(0.0, max(lo, -max(headroom, 0.0)))
        cap_bus = min(max(cap_bus_command_w, lo), hi)

        v_cap = bank.voltage()
        cap_port = self._cap_conv.port_power_for_bus(cap_bus, v_cap)
        cap = bank.apply_power(cap_port, dt)
        # realized bus contribution after any bank-side clipping
        cap_bus_real = self._cap_conv.bus_power_for_port(cap.power_w, v_cap)
        cap_conv_loss = abs(cap.power_w - cap_bus_real)

        battery_bus = request_w - cap_bus_real
        v_pack = pack.open_circuit_voltage()
        bat_port = self._bat_conv.port_power_for_bus(battery_bus, v_pack)
        bat = pack.apply_power(bat_port, dt)
        bat_bus_real = self._bat_conv.bus_power_for_port(bat.terminal_power_w, v_pack)
        bat_conv_loss = abs(bat.terminal_power_w - bat_bus_real)

        delivered = cap_bus_real + bat_bus_real
        unmet = max(0.0, request_w - delivered) if request_w > 0 else 0.0

        # emergency pass: if the battery clipped on a discharge peak, tap
        # the bank's reserve band (below the C5 floor, above the physical
        # hard floor) rather than starve the EV load
        if unmet > 1.0:
            extra_port = self._cap_conv.port_power_for_bus(unmet, v_cap)
            extra = bank.apply_power(extra_port, dt, tap_reserve=True)
            extra_bus = self._cap_conv.bus_power_for_port(extra.power_w, v_cap)
            cap_conv_loss += abs(extra.power_w - extra_bus)
            cap = UltracapStepResult(
                power_w=cap.power_w + extra.power_w,
                current_a=cap.current_a + extra.current_a,
                energy_j=cap.energy_j + extra.energy_j,
                clipped=cap.clipped or extra.clipped,
            )
            cap_bus_real += extra_bus
            delivered += extra_bus
            unmet = max(0.0, request_w - delivered)

        return HEESStepResult(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap.power_w,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap.energy_j,
            converter_loss_j=(cap_conv_loss + bat_conv_loss) * dt,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
            notes={"cap_bus_w": float(cap_bus_real), "battery_bus_w": float(bat_bus_real)},
        )


class HybridHEESVec:
    """Lockstep struct-of-arrays twin of :class:`HybridHEES`.

    The converter ports are shared across columns: every bank produced by
    :func:`repro.ultracap.params.bank_of_farads` keeps the module rated
    voltage and power rating, so one cap-port converter serves mixed bank
    sizes, and the pack layout (hence the battery-port converter) is a
    lockstep group key.  The main bank call is unconditional - the scalar
    plant also rounds the SoE through ``apply_power`` at zero command - and
    the reserve-tap emergency pass is masked on ``unmet > 1``.
    """

    def __init__(
        self,
        pack: BatteryPackVec,
        bank: UltracapBankVec,
        battery_converter: DCDCConverter,
        cap_converter: DCDCConverter,
    ):
        self._pack = pack
        self._bank = bank
        self._bat_conv = battery_converter
        self._cap_conv = cap_converter

    def cap_bus_limits(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-column (min, max) feasible ultracap bus-power command."""
        v = self._bank.voltage()
        eta = self._cap_conv.efficiency(v)
        discharge = np.minimum(
            self._bank.max_discharge_power_w(dt) * eta,
            self._cap_conv.params.max_power_w * eta,
        )
        # eta is clipped to eta_min > 0, so the scalar plant's eta > 0
        # guard never fires; plain division mirrors it
        charge = np.minimum(
            self._bank.max_charge_power_w(dt) / eta,
            self._cap_conv.params.max_power_w / eta,
        )
        return (-charge, discharge)

    def step(
        self, request_w: np.ndarray, cap_bus_command_w: np.ndarray, dt: float
    ) -> HEESStepBatch:
        """Vectorized :meth:`HybridHEES.step` over all columns."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank

        lo, hi = self.cap_bus_limits(dt)
        v_pack_now = pack.open_circuit_voltage()
        bat_max_bus = self._bat_conv.bus_power_for_port_batch(
            pack.max_discharge_power_w(), v_pack_now
        )
        headroom = bat_max_bus - np.maximum(request_w, 0.0)
        lo = np.minimum(0.0, np.maximum(lo, -np.maximum(headroom, 0.0)))
        cap_bus = np.minimum(np.maximum(cap_bus_command_w, lo), hi)

        v_cap = bank.voltage()
        cap_port = self._cap_conv.port_power_for_bus_batch(cap_bus, v_cap)
        cap = bank.apply_power(cap_port, dt)
        cap_bus_real = self._cap_conv.bus_power_for_port_batch(cap.power_w, v_cap)
        cap_conv_loss = np.abs(cap.power_w - cap_bus_real)

        battery_bus = request_w - cap_bus_real
        v_pack = pack.open_circuit_voltage()
        bat_port = self._bat_conv.port_power_for_bus_batch(battery_bus, v_pack)
        bat = pack.apply_power(bat_port, dt)
        bat_bus_real = self._bat_conv.bus_power_for_port_batch(
            bat.terminal_power_w, v_pack
        )
        bat_conv_loss = np.abs(bat.terminal_power_w - bat_bus_real)

        delivered = cap_bus_real + bat_bus_real
        unmet = np.where(
            request_w > 0, np.maximum(0.0, request_w - delivered), 0.0
        )

        cap_power = cap.power_w
        cap_energy = cap.energy_j
        em = unmet > 1.0
        if np.any(em):
            extra_port = self._cap_conv.port_power_for_bus_batch(unmet, v_cap)
            extra = bank.apply_power(extra_port, dt, tap_reserve=True, active=em)
            extra_bus = self._cap_conv.bus_power_for_port_batch(
                extra.power_w, v_cap
            )
            extra_bus = np.where(em, extra_bus, 0.0)
            cap_conv_loss = cap_conv_loss + np.where(
                em, np.abs(extra.power_w - extra_bus), 0.0
            )
            cap_power = cap_power + extra.power_w
            cap_energy = cap_energy + extra.energy_j
            cap_bus_real = cap_bus_real + extra_bus
            delivered = delivered + extra_bus
            unmet = np.where(
                em, np.maximum(0.0, request_w - delivered), unmet
            )

        return HEESStepBatch(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap_power,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap_energy,
            converter_loss_j=(cap_conv_loss + bat_conv_loss) * dt,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
        )
