"""Route-level backend equivalence: vectorized vs scalar OTEM on NYCC.

The kernel-level suite (tests/core/test_rollout_vec.py) pins the rollout
arithmetic to ~1e-14; this test closes the loop at the system level.  The
two backends take different optimizer trajectories (joint batched
central-difference race vs per-start serial forward differences), so the
plans are not bitwise identical - but they must land on the same physics:
route metrics agree within a few percent, and the thermal envelope within
a fraction of a kelvin.
"""

import pytest

from repro.sim.scenario import Scenario, run_scenario

#: NYCC at a reduced solver budget (the batch bench's setting): a real
#: multi-replan route that keeps the test inside a few seconds.
_KNOBS = dict(methodology="otem", cycle="nycc", mpc_max_evals=60)


@pytest.fixture(scope="module")
def routes():
    scalar = run_scenario(Scenario(**_KNOBS, rollout_backend="scalar"))
    vectorized = run_scenario(Scenario(**_KNOBS, rollout_backend="vectorized"))
    return scalar, vectorized


class TestRouteMetricsEquivalence:
    def test_backend_recorded(self, routes):
        scalar, vectorized = routes
        assert scalar.solver.backend == "scalar"
        assert vectorized.solver.backend == "vectorized"
        assert scalar.solver.solves == vectorized.solver.solves

    def test_capacity_loss_matches(self, routes):
        scalar, vectorized = routes
        assert vectorized.metrics.qloss_percent == pytest.approx(
            scalar.metrics.qloss_percent, rel=0.15
        )

    def test_energy_accounting_matches(self, routes):
        scalar, vectorized = routes
        assert vectorized.metrics.hees_energy_j == pytest.approx(
            scalar.metrics.hees_energy_j, rel=0.05
        )
        assert vectorized.metrics.average_power_w == pytest.approx(
            scalar.metrics.average_power_w, rel=0.05
        )

    def test_thermal_envelope_matches(self, routes):
        scalar, vectorized = routes
        assert vectorized.metrics.peak_temp_k == pytest.approx(
            scalar.metrics.peak_temp_k, abs=0.5
        )
        assert (
            vectorized.metrics.time_above_safe_s
            == scalar.metrics.time_above_safe_s
        )

    def test_demand_is_met(self, routes):
        scalar, vectorized = routes
        # both backends must satisfy the route (no meaningful unmet energy)
        assert scalar.metrics.unmet_energy_j < 1.0
        assert vectorized.metrics.unmet_energy_j < 1.0
