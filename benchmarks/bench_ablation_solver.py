"""Ablation - MPC solver formulation.

The paper states the program as explicit equality/inequality constraints
(Eq. 18) solved by MATLAB's NLP machinery.  This repo defaults to a
hinge-penalty multi-start L-BFGS-B formulation for robustness; SLSQP with
the constraints stated explicitly is available as ``mpc_method="slsqp"``.

This bench runs both formulations end-to-end and checks they land in the
same operating regime - validating the penalty reformulation against the
paper-literal one.
"""

import time

METHODS = ("penalty", "slsqp")


def run_with_method(method):
    from repro.core.otem import OTEMController
    from repro.drivecycle.library import get_cycle
    from repro.sim.engine import Simulator
    from repro.ultracap.params import UltracapParams
    from repro.vehicle.powertrain import Powertrain

    request = Powertrain().power_request(get_cycle("us06"))
    controller = OTEMController(cap_params=UltracapParams(), mpc_method=method)
    sim = Simulator(
        controller,
        cap_params=UltracapParams(),
        preview_steps=controller.required_preview_steps(request.dt),
    )
    start = time.perf_counter()
    result = sim.run(request)
    return result, time.perf_counter() - start


def test_ablation_solver_formulation(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_with_method(m) for m in METHODS}, rounds=1, iterations=1
    )

    print()
    print("Ablation - solver formulation (US06 x1)")
    print(f"{'method':>9} {'qloss [%]':>10} {'avg P [kW]':>11} "
          f"{'unsafe [s]':>11} {'wall [s]':>9}")
    for m in METHODS:
        result, elapsed = results[m]
        metrics = result.metrics
        print(
            f"{m:>9} {metrics.qloss_percent:>10.4f} "
            f"{metrics.average_power_w / 1000:>11.2f} "
            f"{metrics.time_above_safe_s:>11.0f} {elapsed:>9.1f}"
        )

    pen = results["penalty"][0].metrics
    slsqp = results["slsqp"][0].metrics
    # both formulations must land in the same regime; single-start SLSQP
    # is faster but gets caught in local optima more often, which is
    # exactly why the multi-start penalty formulation is the default
    assert slsqp.qloss_percent < 2.5 * pen.qloss_percent
    assert slsqp.time_above_safe_s < 60.0
    assert abs(slsqp.average_power_w - pen.average_power_w) / pen.average_power_w < 0.15
    # the penalty default must not lose to the paper-literal formulation
    assert pen.qloss_percent <= slsqp.qloss_percent * 1.05
