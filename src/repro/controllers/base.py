"""Controller interface: what the simulator shows a policy and what it gets back.

Every methodology in the paper - the three baselines and OTEM - is a
:class:`Controller`.  Each control step the simulator builds an
:class:`Observation` (measured states plus the power-request preview the
paper's Algorithm 1 feeds the optimizer) and receives a :class:`Decision`
(ultracapacitor split / switch position / cooler inlet command).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.hees.dual import DualMode


class Architecture(enum.Enum):
    """Which HEES plant a controller drives."""

    PARALLEL = "parallel"
    DUAL = "dual"
    HYBRID = "hybrid"
    BATTERY_ONLY = "battery_only"


@dataclass(frozen=True)
class Observation:
    """Measured system state handed to a controller each step.

    Attributes
    ----------
    step_index:
        Index of the current control step.
    time_s:
        Simulation time [s].
    dt:
        Control period [s].
    power_request_w:
        EV bus power request for this step [W].
    preview_w:
        Power-request preview over the control window (Algorithm 1 line 12),
        ``preview_w[0]`` being this step; zero-padded past route end [W].
    battery_soc_percent:
        Battery SoC [%].
    battery_temp_k:
        Battery temperature T_b [K].
    coolant_temp_k:
        In-pack coolant temperature T_c [K].
    cap_soe_percent:
        Ultracapacitor SoE [%].
    """

    step_index: int
    time_s: float
    dt: float
    power_request_w: float
    preview_w: np.ndarray
    battery_soc_percent: float
    battery_temp_k: float
    coolant_temp_k: float
    cap_soe_percent: float


@dataclass(frozen=True)
class Decision:
    """A controller's commands for one step.

    Attributes
    ----------
    cap_bus_w:
        Hybrid architecture: ultracapacitor bus-power command [W]
        (positive = discharge the bank).
    dual_mode:
        Dual architecture: switch position.
    recharge_power_w:
        Dual architecture: battery->bank recharge power [W] in RECHARGE mode.
    cooling_active:
        Whether the cooling loop (pump + cooler) runs this step.
    inlet_temp_k:
        Commanded coolant inlet temperature T_i [K]; only meaningful when
        ``cooling_active``.
    info:
        Controller-specific diagnostics recorded into the trace.
    """

    cap_bus_w: float = 0.0
    dual_mode: DualMode = DualMode.BATTERY
    recharge_power_w: float = 0.0
    cooling_active: bool = False
    inlet_temp_k: float = 298.0
    info: dict = field(default_factory=dict)


@runtime_checkable
class Controller(Protocol):
    """A thermal/energy management policy."""

    #: Display name used in reports ("OTEM", "Dual [16]", ...).
    name: str
    #: Which plant this policy drives.
    architecture: Architecture
    #: Whether the plant includes the active cooling loop.
    uses_cooling: bool

    def control(self, obs: Observation) -> Decision:
        """Return the commands for this step."""
        ...

    def reset(self) -> None:
        """Clear internal state before a fresh route."""
        ...
