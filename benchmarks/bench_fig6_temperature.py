"""Fig. 6 - battery temperature analysis for the four methodologies.

Paper: on US06 (driven repeatedly, 25,000 F bank), the dual architecture
reacts only at its threshold, while OTEM keeps the temperature lower
throughout; the passive parallel architecture runs hottest.

Expected shape: mean temperature OTEM < dual < parallel, and OTEM's peak
stays below the C1 limit.
"""

import numpy as np

from benchmarks.conftest import REPEAT_THERMAL, run_once
from repro.analysis.figures import METHOD_LABELS, fig6_data
from repro.sim.metrics import SAFE_TEMP_MAX_K
from repro.utils.units import kelvin_to_celsius


def test_fig6_temperature_traces(benchmark):
    data = run_once(benchmark, fig6_data, cycle="us06", repeat=REPEAT_THERMAL)

    print()
    print("Fig. 6 - Battery temperature by methodology (US06 x%d)" % REPEAT_THERMAL)
    print(f"{'methodology':>14} {'mean T [C]':>12} {'peak T [C]':>12}")
    for m in data.temps_k:
        print(
            f"{METHOD_LABELS[m]:>14} "
            f"{float(kelvin_to_celsius(data.mean_k[m])):>12.1f} "
            f"{float(kelvin_to_celsius(data.peak_k[m])):>12.1f}"
        )

    assert data.mean_k["otem"] < data.mean_k["dual"]
    assert data.mean_k["otem"] < data.mean_k["parallel"]
    assert data.peak_k["otem"] <= SAFE_TEMP_MAX_K + 0.5
    # the trace is a real time series, not a constant
    assert np.std(data.temps_k["otem"]) > 0.1
