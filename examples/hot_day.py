#!/usr/bin/env python
"""Hot-day drive: cabin HVAC and battery cooling compete for energy.

On a 38 C afternoon the HVAC pulls kilowatts for the cabin while the
battery cooler fights pack heat - the scenario the paper's companion HVAC
study (reference [2]) motivates.  This example runs the same route at a
mild and a hot ambient and shows where the energy goes.

Usage::

    python examples/hot_day.py [cycle] [ambient_c]
"""

import sys

import numpy as np

from repro.controllers.cooling_only import CoolingOnlyController
from repro.core.otem import OTEMController
from repro.drivecycle.library import get_cycle
from repro.sim.engine import Simulator
from repro.ultracap.params import UltracapParams
from repro.vehicle.hvac import hvac_load_profile
from repro.vehicle.powertrain import Powertrain
from repro.utils.units import kelvin_to_celsius


def run(controller, request, initial_temp_k):
    preview = (
        controller.required_preview_steps(request.dt)
        if isinstance(controller, OTEMController)
        else 10
    )
    sim = Simulator(
        controller,
        cap_params=UltracapParams(),
        preview_steps=preview,
        initial_temp_k=initial_temp_k,
    )
    return sim.run(request)


def main():
    cycle_name = sys.argv[1] if len(sys.argv) > 1 else "us06"
    ambient_c = float(sys.argv[2]) if len(sys.argv) > 2 else 38.0
    ambient_k = ambient_c + 273.15

    cycle = get_cycle(cycle_name, repeat=2)
    pt = Powertrain()
    plain = pt.power_request(cycle)
    hvac = hvac_load_profile(cycle.duration_s, ambient_k, dt=cycle.dt)
    loaded = pt.power_request(cycle, hvac_load_w=hvac)

    print(
        f"{cycle.name} at {ambient_c:.0f} C: HVAC adds "
        f"{np.mean(hvac) / 1000:.2f} kW average "
        f"({np.trapezoid(hvac, dx=cycle.dt) / 3.6e6:.2f} kWh)"
    )
    print(
        f"{'scenario':>22} {'avg P [kW]':>11} {'Qloss [%]':>10} "
        f"{'peak T [C]':>11} {'cool E [kWh]':>13}"
    )
    for label, request, temp0 in (
        ("mild day, no HVAC", plain, 298.0),
        (f"hot day ({ambient_c:.0f} C)", loaded, min(ambient_k, 309.0)),
    ):
        for controller in (
            CoolingOnlyController(),
            OTEMController(cap_params=UltracapParams()),
        ):
            result = run(controller, request, temp0)
            m = result.metrics
            print(
                f"{label + ' / ' + controller.name.split(' ')[0]:>22} "
                f"{m.average_power_w / 1000:>11.2f} {m.qloss_percent:>10.4f} "
                f"{kelvin_to_celsius(m.peak_temp_k):>11.1f} "
                f"{m.cooling_energy_j / 3.6e6:>13.2f}"
            )

    print()
    print(
        "The hot start costs both managers cooling energy, and the HVAC "
        "rides on top of every kW the storage delivers - range planning "
        "must budget for both."
    )


if __name__ == "__main__":
    main()
