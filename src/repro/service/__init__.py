"""Async sweep service: submit scenario grids over HTTP, query durable results.

Stdlib-only serving layer on top of :func:`repro.sim.batch.run_batch` and
:class:`repro.store.ExperimentStore`:

* :class:`~repro.service.spec.SweepSpec` - the JSON sweep-spec wire format,
  compiled to :class:`~repro.sim.scenario.Scenario` grids with the same
  cross-product + ``perturb_seed`` semantics as ``repro batch``;
* :class:`~repro.service.jobs.JobManager` - background worker pool with
  per-job progress, cancellation, timeout, crash isolation, and
  store-backed resume across restarts;
* :class:`~repro.service.server.SweepServer` - ``ThreadingHTTPServer``
  exposing ``POST /sweeps``, ``GET /sweeps/<id>``, ``GET
  /sweeps/<id>/rows``, ``DELETE /sweeps/<id>``, ``GET /healthz``, and a
  Prometheus-style ``GET /metrics``;
* :class:`~repro.service.client.SweepClient` - urllib client the CLI's
  ``repro submit`` / ``repro query`` ride on.
"""

from repro.service.client import ServiceError, SweepClient
from repro.service.jobs import JOB_STATES, JobManager
from repro.service.server import SweepServer, serve
from repro.service.spec import SweepSpec

__all__ = [
    "JOB_STATES",
    "JobManager",
    "ServiceError",
    "SweepClient",
    "SweepServer",
    "SweepSpec",
    "serve",
]
