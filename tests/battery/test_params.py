"""Cell-parameter validation tests."""

import pytest

from repro.battery.params import NCR18650A, CellParams


class TestDefaults:
    def test_capacity_matches_datasheet(self):
        assert NCR18650A.capacity_ah == pytest.approx(3.1)

    def test_nominal_voltage(self):
        assert NCR18650A.nominal_voltage_v == pytest.approx(3.6)

    def test_aging_exponent_in_physical_band(self):
        assert 1.0 <= NCR18650A.aging_current_exp <= 2.0

    def test_activation_energy_in_literature_band(self):
        # Li-ion capacity-fade activation energies: ~20-80 kJ/mol
        assert 20_000 <= NCR18650A.aging_activation_j_per_mol <= 80_000


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CellParams(capacity_ah=0.0)

    def test_rejects_negative_resistance_base(self):
        with pytest.raises(ValueError):
            CellParams(res_base=-0.01)

    def test_rejects_bad_aging_exponent(self):
        with pytest.raises(ValueError):
            CellParams(aging_current_exp=5.0)

    def test_rejects_negative_heat_capacity(self):
        with pytest.raises(ValueError):
            CellParams(heat_capacity_j_per_k=-1.0)

    def test_rejects_zero_max_current(self):
        with pytest.raises(ValueError):
            CellParams(max_current_a=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            NCR18650A.capacity_ah = 5.0
