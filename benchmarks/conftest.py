"""Benchmark-harness configuration.

Each bench regenerates one table or figure of the paper and prints the same
rows/series the paper reports (pytest -s shows them; they are also asserted
on shape).  Benchmarks run the real simulations once per measurement
(``rounds=1``): the quantity of interest is the experiment output, the
timing is a bonus.

Every :func:`run_once` measurement is also appended to the perf-trajectory
file ``BENCH_suite.json`` (via :mod:`repro.utils.perf`), so successive PRs
leave comparable machine-readable wall-clock records next to the
experiment outputs.  Set ``REPRO_BENCH_DIR`` to redirect the files.

Scale: the paper's temperature analyses drive US06 five times; benches use
the ``REPEAT_*`` constants below (3x for temperature figures, 1x for the
5-cycle and size sweeps) to keep the whole suite within minutes.  The
orderings are established well before the fifth repetition; EXPERIMENTS.md
records a full-scale run.
"""

from __future__ import annotations

import time

from repro.utils.perf import record_timing

#: Repetitions for the temperature-trace figures (paper: 5).
REPEAT_THERMAL = 3

#: Repetitions for the 5-cycle and size sweeps (paper: "multiple").  At a
#: single repetition the pack barely warms on the mild cycles and the
#: thermal methodologies cannot differentiate; two repetitions is the
#: smallest scale where every paper ordering is established.
REPEAT_SWEEP = 2

#: Worker-process count for the batch-parallel sweeps (kept small so the
#: fast-bench CI job fits a 2-core runner).
BATCH_WORKERS = 2


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The wall-clock of the measured call is recorded into
    ``BENCH_suite.json`` under the function's name, building the repo's
    perf trajectory as a side effect of running the bench suite.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    record_timing("suite", fn.__name__, time.perf_counter() - start)
    return result
