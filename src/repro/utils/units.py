"""Unit conversions used throughout the library.

The model equations in the paper mix SI units (kelvin, watt, joule) with
automotive conventions (km/h, Ah, kWh).  Every public model API in this
library is SI-first; these converters live at the boundaries (drive-cycle
input, report rendering).
"""

from __future__ import annotations

import numpy as np

#: Offset between the Celsius and Kelvin scales.
CELSIUS_ZERO = 273.15

#: Kilometres-per-hour in one metre-per-second.
KMH_PER_MPS = 3.6

#: Metres in one mile.
METERS_PER_MILE = 1609.344

#: Seconds in one hour.
SECONDS_PER_HOUR = 3600.0

#: Ideal gas constant [J/(mol K)], used by the aging model (Eq. 5).
GAS_CONSTANT = 8.314462618


def celsius_to_kelvin(temp_c):
    """Convert a temperature from degrees Celsius to kelvin."""
    return np.asarray(temp_c, dtype=float) + CELSIUS_ZERO


def kelvin_to_celsius(temp_k):
    """Convert a temperature from kelvin to degrees Celsius."""
    return np.asarray(temp_k, dtype=float) - CELSIUS_ZERO


def kmh_to_mps(speed_kmh):
    """Convert a speed from km/h to m/s."""
    return np.asarray(speed_kmh, dtype=float) / KMH_PER_MPS


def mps_to_kmh(speed_mps):
    """Convert a speed from m/s to km/h."""
    return np.asarray(speed_mps, dtype=float) * KMH_PER_MPS


def mph_to_mps(speed_mph):
    """Convert a speed from miles-per-hour to m/s."""
    return np.asarray(speed_mph, dtype=float) * METERS_PER_MILE / SECONDS_PER_HOUR


def kwh_to_joule(energy_kwh):
    """Convert an energy from kilowatt-hours to joules."""
    return np.asarray(energy_kwh, dtype=float) * 3.6e6


def joule_to_kwh(energy_j):
    """Convert an energy from joules to kilowatt-hours."""
    return np.asarray(energy_j, dtype=float) / 3.6e6


def ah_to_coulomb(charge_ah):
    """Convert a charge from ampere-hours to coulombs."""
    return np.asarray(charge_ah, dtype=float) * SECONDS_PER_HOUR


def coulomb_to_ah(charge_c):
    """Convert a charge from coulombs to ampere-hours."""
    return np.asarray(charge_c, dtype=float) / SECONDS_PER_HOUR
