"""Calibration-sensitivity analysis.

DESIGN.md section 6 records the parameters chosen to place the system in
the paper's operating regime.  This module checks how robust the paper's
*orderings* are to those choices: perturb one calibration knob at a time,
re-run the (fast) baseline methodologies, and report whether each headline
ordering still holds.

Used by ``benchmarks/bench_sensitivity.py`` and directly as a library
facility for anyone re-calibrating the models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict

from repro.battery.pack import DEFAULT_PACK, PackConfig
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.sim.scenario import Scenario, run_scenario


@dataclass(frozen=True)
class SensitivityCase:
    """One perturbed configuration.

    Attributes
    ----------
    name:
        Human-readable knob description ("res_base +25%").
    scenario_patch:
        Callable mapping a base :class:`Scenario` to the perturbed one.
    """

    name: str
    scenario_patch: Callable


def _patch_cell(**cell_changes) -> Callable:
    def patch(scenario: Scenario) -> Scenario:
        cell = replace(scenario.pack.cell, **cell_changes)
        pack = PackConfig(
            series=scenario.pack.series, parallel=scenario.pack.parallel, cell=cell
        )
        return replace(scenario, pack=pack)

    return patch


def _patch_coolant(**coolant_changes) -> Callable:
    def patch(scenario: Scenario) -> Scenario:
        return replace(
            scenario, coolant=replace(scenario.coolant, **coolant_changes)
        )

    return patch


def default_cases() -> list:
    """The calibration knobs DESIGN.md flags, perturbed +/-25-50%."""
    cell = DEFAULT_PACK.cell
    coolant = DEFAULT_COOLANT
    return [
        SensitivityCase("nominal", lambda s: s),
        SensitivityCase(
            "res_base +25%", _patch_cell(res_base=cell.res_base * 1.25)
        ),
        SensitivityCase(
            "res_base -25%", _patch_cell(res_base=cell.res_base * 0.75)
        ),
        SensitivityCase(
            "aging Ea +10%",
            _patch_cell(
                aging_activation_j_per_mol=cell.aging_activation_j_per_mol * 1.10
            ),
        ),
        SensitivityCase(
            "aging Ea -10%",
            _patch_cell(
                aging_activation_j_per_mol=cell.aging_activation_j_per_mol * 0.90
            ),
        ),
        SensitivityCase(
            "passive h +50%",
            _patch_coolant(passive_h_w_per_k=coolant.passive_h_w_per_k * 1.5),
        ),
        SensitivityCase(
            "passive h -50%",
            _patch_coolant(passive_h_w_per_k=coolant.passive_h_w_per_k * 0.5),
        ),
        SensitivityCase(
            "cooler eff +25%",
            _patch_coolant(cooler_efficiency=coolant.cooler_efficiency * 1.25),
        ),
    ]


@dataclass(frozen=True)
class OrderingCheck:
    """Ordering results for one perturbed configuration.

    Attributes
    ----------
    case:
        The perturbation name.
    qloss_percent:
        methodology -> capacity loss [%].
    avg_power_w:
        methodology -> average power [W].
    dual_beats_parallel_qloss / cooling_beats_parallel_qloss /
    parallel_cheapest / cooling_priciest:
        The paper-shape orderings on the fast baseline set.
    """

    case: str
    qloss_percent: Dict[str, float]
    avg_power_w: Dict[str, float]

    @property
    def dual_beats_parallel_qloss(self) -> bool:
        """Fig. 8 ordering (baseline pair)."""
        return self.qloss_percent["dual"] < self.qloss_percent["parallel"]

    @property
    def cooling_beats_parallel_qloss(self) -> bool:
        """Fig. 8 ordering (cooling pair)."""
        return self.qloss_percent["cooling"] < self.qloss_percent["parallel"]

    @property
    def parallel_cheapest(self) -> bool:
        """Fig. 9 ordering."""
        return self.avg_power_w["parallel"] == min(self.avg_power_w.values())

    @property
    def cooling_priciest(self) -> bool:
        """Fig. 9 ordering."""
        return self.avg_power_w["cooling"] == max(self.avg_power_w.values())

    @property
    def all_hold(self) -> bool:
        """Whether every checked ordering survives this perturbation."""
        return (
            self.dual_beats_parallel_qloss
            and self.cooling_beats_parallel_qloss
            and self.parallel_cheapest
            and self.cooling_priciest
        )


def check_orderings(
    cases=None,
    cycle: str = "us06",
    repeat: int = 3,
    methodologies=("parallel", "cooling", "dual"),
    runner: Callable = run_scenario,
) -> list:
    """Run the baseline set under each perturbation; return ordering checks.

    OTEM is excluded by default (it re-optimizes per configuration, so its
    win is even more robust than the baselines' - and it is 100x slower to
    sweep; include it explicitly if wanted).
    """
    cases = default_cases() if cases is None else cases
    base = Scenario(methodology="parallel", cycle=cycle, repeat=repeat)
    out = []
    for case in cases:
        qloss = {}
        power = {}
        for m in methodologies:
            scenario = case.scenario_patch(replace(base, methodology=m))
            result = runner(scenario)
            qloss[m] = result.metrics.qloss_percent
            power[m] = result.metrics.average_power_w
        out.append(
            OrderingCheck(case=case.name, qloss_percent=qloss, avg_power_w=power)
        )
    return out
