"""SweepSpec: grid compilation, validation, and the JSON wire format."""

import json

import pytest

from repro.service.spec import SWEEPABLE_FIELDS, SweepSpec
from repro.sim.batch import scenario_grid
from repro.sim.scenario import Scenario


class TestCompile:
    def test_single_cell_without_axes(self):
        spec = SweepSpec(base=Scenario(cycle="nycc"))
        assert spec.scenarios() == [Scenario(cycle="nycc")]
        assert spec.cell_count() == 1

    def test_cross_product_matches_scenario_grid(self):
        axes = {
            "methodology": ["parallel", "dual"],
            "ucap_farads": [5_000.0, 25_000.0],
        }
        spec = SweepSpec(base=Scenario(cycle="nycc"), axes=axes)
        assert spec.scenarios() == scenario_grid(Scenario(cycle="nycc"), **axes)
        assert spec.cell_count() == 4

    def test_seeds_append_perturb_axis(self):
        spec = SweepSpec(
            base=Scenario(cycle="nycc"),
            axes={"methodology": ["parallel", "dual"]},
            seeds=3,
        )
        scenarios = spec.scenarios()
        assert len(scenarios) == spec.cell_count() == 6
        assert sorted({s.perturb_seed for s in scenarios}) == [0, 1, 2]
        # seeds axis varies fastest (appended last)
        assert [s.perturb_seed for s in scenarios[:3]] == [0, 1, 2]

    def test_explicit_perturb_axis_still_works(self):
        spec = SweepSpec(axes={"perturb_seed": [4, 9]})
        assert [s.perturb_seed for s in spec.scenarios()] == [4, 9]


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec(axes={"warp_factor": [9]})

    def test_axes_must_be_nonempty_lists(self):
        with pytest.raises(ValueError, match="non-empty list"):
            SweepSpec(axes={"methodology": []})
        with pytest.raises(ValueError, match="non-empty list"):
            SweepSpec(axes={"methodology": "dual"})

    def test_seeds_and_perturb_axis_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec(axes={"perturb_seed": [0, 1]}, seeds=2)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(seeds=-1)
        with pytest.raises(ValueError):
            SweepSpec(workers=-1)
        with pytest.raises(ValueError):
            SweepSpec(timeout_s=0.0)

    def test_unknown_execution_mode_rejected(self):
        with pytest.raises(ValueError, match="execution mode"):
            SweepSpec(execution="ludicrous")

    def test_sweepable_fields_cover_scenario(self):
        assert "methodology" in SWEEPABLE_FIELDS
        assert "perturb_seed" in SWEEPABLE_FIELDS


class TestWireFormat:
    def test_json_roundtrip(self):
        spec = SweepSpec(
            base=Scenario(cycle="nycc", repeat=2),
            axes={"methodology": ["parallel", "dual"]},
            seeds=2,
            workers=1,
            execution="lockstep",
            timeout_s=60.0,
            tag="smoke",
        )
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_from_dict_accepts_partial_documents(self):
        spec = SweepSpec.from_dict(
            {
                "base": {"cycle": "nycc"},
                "axes": {"methodology": ["parallel"]},
            }
        )
        assert spec.base.cycle == "nycc"
        assert spec.base.repeat == Scenario().repeat
        assert spec.execution == "auto"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown sweep-spec field"):
            SweepSpec.from_dict({"axez": {}})
        with pytest.raises(ValueError, match="must be an object"):
            SweepSpec.from_dict(["not", "a", "dict"])

    def test_spec_hash_is_content_addressed(self):
        a = SweepSpec(axes={"methodology": ["parallel"]})
        b = SweepSpec.from_json(a.to_json())
        assert a.spec_hash() == b.spec_hash()
        c = SweepSpec(axes={"methodology": ["dual"]})
        assert a.spec_hash() != c.spec_hash()

    def test_canonical_json_is_sorted(self):
        doc = json.loads(SweepSpec().to_json())
        assert list(doc) == sorted(doc)
