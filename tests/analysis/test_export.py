"""CSV-export tests."""

import csv

import numpy as np
import pytest

from repro.analysis.export import (
    write_fig1_csv,
    write_fig6_csv,
    write_fig7_csv,
    write_trace_csv,
)
from repro.analysis.figures import Fig1Data, Fig6Data, Fig7Data
from repro.sim.trace import CHANNELS, Trace


def make_trace(n=5):
    arrays = {name: np.arange(n, dtype=float) for name in CHANNELS}
    return Trace(**arrays)


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.reader(f))


class TestTraceCsv:
    def test_header_and_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(make_trace(5), str(path))
        rows = read_csv(path)
        assert rows[0] == list(CHANNELS)
        assert len(rows) == 6

    def test_values_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(make_trace(3), str(path))
        rows = read_csv(path)
        assert float(rows[2][0]) == 1.0


class TestFig1Csv:
    def test_columns_per_size(self, tmp_path):
        data = Fig1Data(
            sizes_f=(5_000, 25_000),
            time_s=np.arange(3, dtype=float),
            temps_k=(np.full(3, 300.0), np.full(3, 299.0)),
            safe_limit_k=313.15,
            violation_s=(10.0, 0.0),
        )
        path = tmp_path / "fig1.csv"
        write_fig1_csv(data, str(path))
        rows = read_csv(path)
        assert rows[0] == ["time_s", "temp_k_5000F", "temp_k_25000F"]
        assert len(rows) == 4
        assert float(rows[1][1]) == 300.0


class TestFig6Csv:
    def test_columns_per_methodology(self, tmp_path):
        data = Fig6Data(
            time_s=np.arange(2, dtype=float),
            temps_k={"otem": np.full(2, 300.0), "dual": np.full(2, 305.0)},
            peak_k={"otem": 300.0, "dual": 305.0},
            mean_k={"otem": 300.0, "dual": 305.0},
        )
        path = tmp_path / "fig6.csv"
        write_fig6_csv(data, str(path))
        rows = read_csv(path)
        assert rows[0] == ["time_s", "temp_k_dual", "temp_k_otem"]
        assert float(rows[1][1]) == 305.0


class TestFig7Csv:
    def test_overlay_signals(self, tmp_path):
        n = 4
        data = Fig7Data(
            time_s=np.arange(n, dtype=float),
            battery_temp_k=np.full(n, 300.0),
            cap_soe_percent=np.full(n, 80.0),
            request_w=np.full(n, 10_000.0),
            teb=np.full(n, 0.7),
            upcoming_demand_w=np.full(n, 9_000.0),
            preparation_score=0.3,
        )
        path = tmp_path / "fig7.csv"
        write_fig7_csv(data, str(path))
        rows = read_csv(path)
        assert len(rows) == n + 1
        assert rows[0][4] == "teb"
        assert float(rows[1][4]) == pytest.approx(0.7)
