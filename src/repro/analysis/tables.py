"""Table I generator: ultracapacitor size analysis.

The paper's Table I reports, for each bank size in {5,000; 10,000; 20,000;
25,000} F and each of {Parallel [15], Dual [16], OTEM}, the average power
[W] and the capacity loss normalized to the parallel architecture at
25,000 F (= 100%), on the US06 cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.sim.batch import ResultCache, run_batch
from repro.sim.scenario import Scenario

#: The paper's Table I sweep.
TABLE1_SIZES_F = (5_000.0, 10_000.0, 20_000.0, 25_000.0)
TABLE1_METHODS = ("parallel", "dual", "otem")

#: Paper values for EXPERIMENTS.md side-by-side (size -> method -> value).
PAPER_AVG_POWER_W = {
    5_000.0: {"parallel": 16_919, "dual": 15_239, "otem": 22_391},
    10_000.0: {"parallel": 16_893, "dual": 14_381, "otem": 22_274},
    20_000.0: {"parallel": 16_856, "dual": 13_891, "otem": 21_094},
    25_000.0: {"parallel": 16_846, "dual": 14_156, "otem": 20_662},
}
PAPER_CAPACITY_LOSS_PCT = {
    5_000.0: {"parallel": 175.24, "dual": 85.53, "otem": 49.03},
    10_000.0: {"parallel": 136.02, "dual": 82.84, "otem": 48.61},
    20_000.0: {"parallel": 107.21, "dual": 78.30, "otem": 44.40},
    25_000.0: {"parallel": 100.00, "dual": 84.70, "otem": 42.85},
}


@dataclass(frozen=True)
class Table1Row:
    """One size row of Table I.

    Attributes
    ----------
    size_f:
        Bank size [F].
    avg_power_w:
        methodology -> average power [W].
    capacity_loss_pct:
        methodology -> capacity loss normalized to parallel@25kF [%].
    """

    size_f: float
    avg_power_w: Dict[str, float]
    capacity_loss_pct: Dict[str, float]


@dataclass(frozen=True)
class Table1Data:
    """The full Table I."""

    cycle: str
    repeat: int
    rows: tuple

    def row(self, size_f: float) -> Table1Row:
        """Look up the row for a bank size."""
        for r in self.rows:
            if abs(r.size_f - size_f) < 1e-6:
                return r
        raise KeyError(f"no row for size {size_f}")


def table1_data(
    sizes_f: Sequence[float] = TABLE1_SIZES_F,
    methods: Sequence[str] = TABLE1_METHODS,
    cycle: str = "us06",
    repeat: int = 2,
    workers: int = 0,
    cache: ResultCache | None = None,
) -> Table1Data:
    """Regenerate Table I on the US06 cycle.

    Capacity losses are normalized to the parallel architecture at the
    largest swept size, exactly as in the paper.  The (size x method) grid
    runs through :func:`repro.sim.batch.run_batch`: pass ``workers`` to
    fan it out over processes and ``cache`` to reuse stored cells.
    """
    scenarios = [
        Scenario(methodology=m, cycle=cycle, repeat=repeat, ucap_farads=size)
        for size in sizes_f
        for m in methods
    ]
    batch = run_batch(scenarios, workers=workers, cache=cache).raise_on_failure()

    raw_qloss: Dict[float, Dict[str, float]] = {s: {} for s in sizes_f}
    raw_power: Dict[float, Dict[str, float]] = {s: {} for s in sizes_f}
    for cell in batch.cells:
        s = cell.scenario
        raw_qloss[s.ucap_farads][s.methodology] = cell.metrics.qloss_percent
        raw_power[s.ucap_farads][s.methodology] = cell.metrics.average_power_w

    reference = raw_qloss[max(sizes_f)].get("parallel")
    rows = []
    for size in sizes_f:
        normalized = {
            m: (100.0 * raw_qloss[size][m] / reference if reference else float("nan"))
            for m in methods
        }
        rows.append(
            Table1Row(
                size_f=float(size),
                avg_power_w=dict(raw_power[size]),
                capacity_loss_pct=normalized,
            )
        )
    return Table1Data(cycle=cycle, repeat=repeat, rows=tuple(rows))
