"""Traffic-variation ensemble tests."""

import numpy as np
import pytest

from repro.drivecycle.cycle import DriveCycle
from repro.drivecycle.library import get_cycle
from repro.drivecycle.perturb import ensemble, perturbed


@pytest.fixture(scope="module")
def base():
    return get_cycle("udds")


class TestPerturbed:
    def test_deterministic_per_seed(self, base):
        a = perturbed(base, 3)
        b = perturbed(base, 3)
        assert np.array_equal(a.speed_mps, b.speed_mps)

    def test_different_seeds_differ(self, base):
        a = perturbed(base, 0)
        b = perturbed(base, 1)
        min_len = min(len(a), len(b))
        assert not np.array_equal(a.speed_mps[:min_len], b.speed_mps[:min_len])

    def test_name_tagged(self, base):
        assert perturbed(base, 7).name == "UDDS~7"

    def test_invariants_preserved(self, base):
        for seed in range(5):
            var = perturbed(base, seed)
            assert isinstance(var, DriveCycle)
            assert np.all(var.speed_mps >= 0.0)
            assert var.speed_mps[0] == 0.0
            assert var.speed_mps[-1] == 0.0

    def test_acceleration_capped(self, base):
        var = perturbed(base, 2, max_accel_ms2=4.0)
        steps = np.abs(np.diff(var.speed_mps))
        assert np.max(steps) <= 4.0 * var.dt + 1e-9

    def test_gross_statistics_close_to_base(self, base):
        base_stats = base.stats()
        for seed in range(4):
            var_stats = perturbed(base, seed).stats()
            assert var_stats.distance_km == pytest.approx(
                base_stats.distance_km, rel=0.20
            )
            assert var_stats.duration_s == pytest.approx(
                base_stats.duration_s, rel=0.15
            )

    def test_zero_sigmas_still_valid(self, base):
        var = perturbed(
            base, 0, speed_scale_sigma=0.0, stop_jitter_s=0.0, ripple_sigma_mps=0.0
        )
        # stop jitter off, scale off, ripple off -> essentially the base;
        # only crawl samples below the stop threshold (0.3 m/s) may be
        # snapped to zero by the stop-segment rebuild
        assert len(var) == len(base)
        assert np.allclose(var.speed_mps, base.speed_mps, atol=0.35)

    def test_rejects_bad_sigma(self, base):
        with pytest.raises(ValueError):
            perturbed(base, 0, speed_scale_sigma=0.9)

    def test_powertrain_accepts_variants(self, base):
        from repro.vehicle.powertrain import Powertrain

        pr = Powertrain().power_request(perturbed(base, 1))
        assert np.all(np.isfinite(pr.power_w))


class TestEnsemble:
    def test_member_count(self, base):
        members = ensemble(base, 4)
        assert len(members) == 4
        assert members[0].name.endswith("~0")

    def test_rejects_zero_members(self, base):
        with pytest.raises(ValueError):
            ensemble(base, 0)

    def test_members_distinct(self, base):
        members = ensemble(base, 3)
        lengths = {len(m) for m in members}
        speeds = {float(np.sum(m.speed_mps)) for m in members}
        assert len(speeds) == 3 or len(lengths) > 1
