"""Battery cell parameter sets.

The coefficients implement the functional forms of the paper's Eq. 2 (open
circuit voltage), Eq. 3 (internal resistance) and Eq. 5 (capacity loss), with
values chosen so the curves sit inside the Panasonic NCR18650A datasheet
envelope the paper references: 3.0-4.2 V across SoC, ~50 mOhm mid-SoC
resistance that roughly doubles from 25 C to 0 C, 3.1 Ah rated capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CellParams:
    """Parameters of one Li-ion cell.

    Electrical (Eq. 2-3)
    --------------------
    ``voc_*`` implement Eq. 2 with SoC in percent:
        Voc = voc_exp_a * exp(voc_exp_b * SoC)
              + voc_p4*SoC^4 + voc_p3*SoC^3 + voc_p2*SoC^2 + voc_p1*SoC + voc_p0
    ``res_*`` implement Eq. 3 plus an Arrhenius temperature factor:
        R = (res_exp_a * exp(res_exp_b * SoC) + res_base)
            * exp(res_temp_k * (1/T - 1/T_ref))

    Thermal (Eq. 4)
    ---------------
    ``entropy_coeff_v_per_k`` is the constant dVoc/dT of Eq. 4.
    ``heat_capacity_j_per_k`` is the lumped heat capacity of one cell.

    Aging (Eq. 5)
    -------------
    ``aging_prefactor``/``aging_activation_j_per_mol``/``aging_current_exp``
    are l1, l2, l3:  dQloss/dt = l1 * exp(-l2 / (R_gas T)) * |I|^l3  in
    percent-of-capacity per second per cell.

    Ratings
    -------
    ``capacity_ah`` rated capacity; ``nominal_voltage_v`` label voltage;
    ``max_current_a`` discharge-current ceiling used by constraint C6.
    """

    # electrical: Eq. 2 coefficients (SoC in percent)
    voc_exp_a: float = -0.25
    voc_exp_b: float = -0.045
    voc_p4: float = 2.5e-9
    voc_p3: float = 0.0
    voc_p2: float = 0.0
    voc_p1: float = 0.007
    voc_p0: float = 3.25
    # electrical: Eq. 3 coefficients + temperature sensitivity
    res_exp_a: float = 0.040
    res_exp_b: float = -0.10
    res_base: float = 0.080
    res_temp_k: float = 2000.0
    res_ref_temp_k: float = 298.15
    # thermal: Eq. 4
    entropy_coeff_v_per_k: float = -2.0e-4
    heat_capacity_j_per_k: float = 41.0
    # aging: Eq. 5 (percent capacity per second)
    aging_prefactor: float = 1.9e5
    aging_activation_j_per_mol: float = 60_000.0
    aging_current_exp: float = 1.50
    # ratings
    capacity_ah: float = 3.1
    nominal_voltage_v: float = 3.6
    max_current_a: float = 15.0

    def __post_init__(self):
        check_positive(self.capacity_ah, "capacity_ah")
        check_positive(self.nominal_voltage_v, "nominal_voltage_v")
        check_positive(self.max_current_a, "max_current_a")
        check_positive(self.heat_capacity_j_per_k, "heat_capacity_j_per_k")
        check_positive(self.res_base, "res_base")
        check_positive(self.aging_prefactor, "aging_prefactor")
        check_positive(self.aging_activation_j_per_mol, "aging_activation_j_per_mol")
        check_in_range(self.aging_current_exp, 0.1, 3.0, "aging_current_exp")
        check_in_range(self.res_temp_k, 0.0, 10_000.0, "res_temp_k")


    def aged(self, loss_percent: float) -> "CellParams":
        """Parameters of this cell after ``loss_percent`` capacity fade.

        Aging shrinks usable capacity proportionally and thickens the SEI
        layer, growing the internal resistance; the standard first-order
        coupling is ~1.5-2x resistance at the 20% end-of-life point, i.e.
        about +4% resistance per percent of capacity lost.  The feedback
        matters because a faded cell runs hotter at the same load, which
        accelerates further fading (used by ``repro.battery.lifetime``).
        """
        from dataclasses import replace

        loss = check_in_range(loss_percent, 0.0, 100.0, "loss_percent")
        capacity_scale = 1.0 - loss / 100.0
        resistance_scale = 1.0 + 0.04 * loss
        if capacity_scale <= 0.0:
            raise ValueError("cell fully degraded; no capacity left")
        return replace(
            self,
            capacity_ah=self.capacity_ah * capacity_scale,
            res_exp_a=self.res_exp_a * resistance_scale,
            res_base=self.res_base * resistance_scale,
        )


#: Panasonic-NCR18650A-class cell (the cell the paper's Tesla pack uses).
NCR18650A = CellParams()
