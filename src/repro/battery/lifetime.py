"""Battery-LifeTime (BLT) projection with aging feedback.

The paper's headline metric is BLT: the battery is end-of-life at 20%
capacity loss (Section I).  A single-route simulation yields a per-route
loss, but extrapolating routes-to-EOL linearly ignores the feedback that
makes aging super-linear in time: a faded cell has less capacity (higher
C-rate at the same power) and more resistance (more heat), both of which
accelerate further fading.

:func:`project_lifetime` integrates that feedback piecewise: it simulates
the route at a handful of degradation stages (0%, 5%, ... of capacity
lost) with the cell parameters derated via
:meth:`repro.battery.params.CellParams.aged`, measures the per-route loss
at each stage, and integrates stage-by-stage to end-of-life.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.battery.aging import END_OF_LIFE_LOSS_PERCENT
from repro.battery.pack import PackConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids battery<->sim cycle)
    from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class LifetimeProjection:
    """Outcome of a BLT projection.

    Attributes
    ----------
    methodology / cycle:
        What was projected.
    stage_loss_percent:
        Degradation stages simulated [% capacity lost at stage start].
    stage_rate_percent_per_route:
        Measured per-route loss at each stage.
    routes_to_eol:
        Integrated routes until 20% loss, with feedback.
    routes_to_eol_naive:
        Linear extrapolation from the fresh-battery rate (what a
        single-route analysis would report).
    acceleration_factor:
        naive / with-feedback - how much the feedback shortens life.
    """

    methodology: str
    cycle: str
    stage_loss_percent: tuple
    stage_rate_percent_per_route: tuple
    routes_to_eol: float
    routes_to_eol_naive: float

    @property
    def acceleration_factor(self) -> float:
        """How much aging feedback shortens the naive lifetime estimate."""
        if self.routes_to_eol <= 0:
            return float("inf")
        return self.routes_to_eol_naive / self.routes_to_eol


def project_lifetime(
    scenario: "Scenario",
    stages: int = 4,
    eol_percent: float = END_OF_LIFE_LOSS_PERCENT,
    runner: Callable | None = None,
) -> LifetimeProjection:
    """Project routes-to-end-of-life for a scenario, with aging feedback.

    Parameters
    ----------
    scenario:
        The route + methodology to project (its ``pack`` is re-derated per
        stage).
    stages:
        Number of degradation stages to simulate (>= 2; more stages =
        smoother integration, one full simulation each).
    eol_percent:
        End-of-life capacity-loss threshold [%] (paper: 20).
    runner:
        Scenario runner (defaults to :func:`repro.sim.scenario.run_scenario`;
        injectable for tests).
    """
    if runner is None:
        from repro.sim.scenario import run_scenario

        runner = run_scenario
    if stages < 2:
        raise ValueError("stages must be >= 2")
    if eol_percent <= 0:
        raise ValueError("eol_percent must be positive")

    stage_edges = [eol_percent * k / stages for k in range(stages)]
    rates = []
    for stage_loss in stage_edges:
        aged_cell = scenario.pack.cell.aged(stage_loss)
        aged_pack = PackConfig(
            series=scenario.pack.series,
            parallel=scenario.pack.parallel,
            cell=aged_cell,
        )
        result = runner(replace(scenario, pack=aged_pack))
        rates.append(max(result.metrics.qloss_percent, 1e-12))

    # integrate: each stage spans eol/stages percent of loss at its
    # measured rate
    span = eol_percent / stages
    routes = sum(span / rate for rate in rates)
    naive = eol_percent / rates[0]
    return LifetimeProjection(
        methodology=scenario.methodology,
        cycle=scenario.cycle,
        stage_loss_percent=tuple(stage_edges),
        stage_rate_percent_per_route=tuple(rates),
        routes_to_eol=routes,
        routes_to_eol_naive=naive,
    )


def blt_improvement_percent(
    candidate: LifetimeProjection, reference: LifetimeProjection
) -> float:
    """BLT improvement of ``candidate`` over ``reference`` [%].

    This is the paper's abstract metric ("improvement in BLT, on average
    16.8%"): how many more routes the candidate methodology gets out of
    the same battery.
    """
    if reference.routes_to_eol <= 0:
        raise ValueError("reference lifetime must be positive")
    return 100.0 * (candidate.routes_to_eol / reference.routes_to_eol - 1.0)
