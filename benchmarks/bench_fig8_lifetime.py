"""Fig. 8 - battery lifetime (capacity loss) comparison.

Paper: on {US06, UDDS, HWFET, NYCC, LA92}, capacity loss relative to the
parallel baseline; OTEM reduces it on every cycle (16.38% on average in the
paper's figure; ~57% on US06 per Table I).

Expected shape: OTEM ratio < 1 on every cycle and OTEM's ratio is the best
(smallest) of the managed methodologies per cycle.
"""

from benchmarks.conftest import REPEAT_SWEEP, run_once
from repro.analysis.figures import ALL_CYCLES, fig8_data
from repro.analysis.report import render_fig8


def test_fig8_lifetime_comparison(benchmark):
    data = run_once(benchmark, fig8_data, cycles=ALL_CYCLES, repeat=REPEAT_SWEEP)
    print()
    print(render_fig8(data))

    for cycle in data.cycles:
        ratios = data.qloss_ratio_vs_parallel[cycle]
        # OTEM always improves on parallel
        assert ratios["otem"] < 1.0, f"OTEM worse than parallel on {cycle}"
        # and is the best methodology on every cycle
        others = [ratios[m] for m in data.methodologies if m != "otem"]
        assert ratios["otem"] <= min(others) + 1e-9, f"OTEM not best on {cycle}"

    # average reduction in the paper's ballpark (paper: 16.38% across
    # cycles; our simulator shows larger gains on the aggressive cycles)
    assert data.mean_qloss_reduction_vs_parallel("otem") > 10.0
