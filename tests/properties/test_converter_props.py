"""Property-based tests for the DC/DC converter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hees.converter import ConverterParams, DCDCConverter

CONV = DCDCConverter(ConverterParams())

voltage = st.floats(min_value=0.0, max_value=20.0)
power = st.floats(min_value=-60_000.0, max_value=60_000.0)


class TestEfficiencyInvariants:
    @given(voltage)
    def test_efficiency_bounded(self, v):
        eta = float(CONV.efficiency(v))
        assert CONV.params.eta_min <= eta <= CONV.params.eta_max

    @given(st.floats(min_value=0.0, max_value=16.0))
    def test_efficiency_nondecreasing_toward_vref(self, v):
        assert CONV.efficiency(v + 0.2) >= CONV.efficiency(v) - 1e-12


class TestTransferInvariants:
    @given(power, st.floats(min_value=1.0, max_value=16.2))
    def test_energy_conservation_direction(self, p, v):
        """Converters only lose energy: the receiving side gets less.

        Discharge (port -> bus): |bus| <= |port|.
        Charge (bus -> port): |port| <= |bus| (unless the bus demand was
        clipped at the rating first).
        """
        port = CONV.port_power_for_bus(p, v)
        bus = CONV.bus_power_for_port(port, v)
        if p >= 0:
            assert abs(bus) <= abs(port) + 1e-9
        elif abs(port) < CONV.params.max_power_w - 1e-9:
            assert abs(port) <= abs(p) + 1e-9

    @given(power, st.floats(min_value=1.0, max_value=16.2))
    def test_roundtrip_identity_within_rating(self, p, v):
        port = CONV.port_power_for_bus(p, v)
        if abs(port) < CONV.params.max_power_w:  # not clipped
            assert CONV.bus_power_for_port(port, v) == pytest.approx(p, rel=1e-9)

    @given(power, st.floats(min_value=1.0, max_value=16.2))
    def test_sign_preserved(self, p, v):
        port = CONV.port_power_for_bus(p, v)
        assert port * p >= 0.0

    @given(power, st.floats(min_value=1.0, max_value=16.2))
    def test_port_clipped_at_rating(self, p, v):
        port = CONV.port_power_for_bus(p, v)
        assert abs(port) <= CONV.params.max_power_w + 1e-9

    @given(st.floats(min_value=0.0, max_value=50_000.0), st.floats(min_value=1.0, max_value=16.2))
    def test_loss_nonnegative(self, p, v):
        assert CONV.loss_w(p, v) >= -1e-9
