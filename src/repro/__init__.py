"""OTEM reproduction: joint thermal + energy management for EV hybrid storage.

Reproduces Vatanparvar & Al Faruque, "OTEM: Optimized Thermal and Energy
Management for Hybrid Electrical Energy Storage in Electric Vehicles",
DATE 2016.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quick start
-----------
>>> from repro import Scenario, run_scenario
>>> result = run_scenario(Scenario(methodology="otem", cycle="us06"))
>>> result.metrics.qloss_percent  # doctest: +SKIP

Subpackages
-----------
``repro.core``
    OTEM itself: the MPC formulation and the TEB metric.
``repro.battery`` / ``repro.ultracap`` / ``repro.hees`` / ``repro.cooling``
    The storage and thermal substrates (paper Section II).
``repro.vehicle`` / ``repro.drivecycle``
    Power-request estimation (the ADVISOR substitute).
``repro.controllers``
    The state-of-the-art baselines (paper Section IV-B).
``repro.sim``
    The discrete-time engine (Algorithm 1) and metrics.
``repro.analysis``
    Generators for every table and figure of the evaluation.
"""

from repro.controllers import (
    CoolingOnlyController,
    DualThresholdController,
    ParallelPassiveController,
)
from repro.core import CostWeights, OTEMController
from repro.sim import (
    BatchResult,
    Scenario,
    SimulationResult,
    Simulator,
    run_batch,
    run_scenario,
    scenario_grid,
)

__version__ = "1.0.0"

__all__ = [
    "CoolingOnlyController",
    "DualThresholdController",
    "ParallelPassiveController",
    "CostWeights",
    "OTEMController",
    "Scenario",
    "SimulationResult",
    "Simulator",
    "BatchResult",
    "run_batch",
    "run_scenario",
    "scenario_grid",
    "__version__",
]
