"""OTEM controller tests."""

import numpy as np
import pytest

from repro.controllers.base import Architecture, Observation
from repro.core.otem import OTEMController


def make_obs(step=0, temp_k=298.0, soe=100.0, soc=95.0, power=15_000.0, preview_len=60):
    return Observation(
        step_index=step,
        time_s=float(step),
        dt=1.0,
        power_request_w=power,
        preview_w=np.full(preview_len, power),
        battery_soc_percent=soc,
        battery_temp_k=temp_k,
        coolant_temp_k=temp_k,
        cap_soe_percent=soe,
    )


@pytest.fixture()
def otem():
    return OTEMController(horizon=6, mpc_step_s=5.0, max_function_evals=60)


class TestInterface:
    def test_declares_hybrid_with_cooling(self, otem):
        assert otem.architecture is Architecture.HYBRID
        assert otem.uses_cooling
        assert otem.name == "OTEM"

    def test_required_preview(self, otem):
        assert otem.required_preview_steps(1.0) == 30
        assert otem.required_preview_steps(5.0) == 6


class TestPreviewAggregation:
    def test_constant_preview(self, otem):
        coarse = otem._aggregate_preview(np.full(30, 10_000.0), 1.0)
        assert coarse.shape == (6,)
        assert np.allclose(coarse, 10_000.0)

    def test_short_preview_padded(self, otem):
        coarse = otem._aggregate_preview(np.full(10, 10_000.0), 1.0)
        assert coarse[0] == pytest.approx(10_000.0)
        assert coarse[-1] == 0.0

    def test_bin_means(self, otem):
        fine = np.arange(30, dtype=float)
        coarse = otem._aggregate_preview(fine, 1.0)
        assert coarse[0] == pytest.approx(np.mean(fine[:5]))


class TestMoveBlocking:
    def test_replans_on_schedule(self, otem):
        d0 = otem.control(make_obs(step=0))
        assert d0.info["replanned"]
        d1 = otem.control(make_obs(step=1))
        assert not d1.info["replanned"]
        d5 = otem.control(make_obs(step=5))
        assert d5.info["replanned"]

    def test_held_command_constant_between_replans(self, otem):
        d0 = otem.control(make_obs(step=0))
        d1 = otem.control(make_obs(step=1))
        assert d1.cap_bus_w == d0.cap_bus_w

    def test_reset_forces_replan(self, otem):
        otem.control(make_obs(step=0))
        otem.reset()
        d = otem.control(make_obs(step=1))
        assert d.info["replanned"]


class TestBehaviour:
    def test_cooling_engages_when_hot(self, otem):
        d = otem.control(make_obs(temp_k=312.0, power=20_000.0))
        assert d.cooling_active
        assert d.inlet_temp_k < 312.0 - 0.05

    def test_no_cooler_command_when_cold(self, otem):
        d = otem.control(make_obs(temp_k=290.0, power=5_000.0))
        # inlet at coolant temperature = cooler idle (pump may run)
        assert d.inlet_temp_k >= 290.0 - 0.1

    def test_solver_diagnostics_exposed(self, otem):
        d = otem.control(make_obs())
        assert "solver_cost" in d.info
        assert "solver_iterations" in d.info

    def test_large_peak_in_preview_prepares_cap_discharge(self):
        otem = OTEMController(horizon=6, mpc_step_s=5.0, max_function_evals=120)
        preview = np.concatenate([np.full(10, 5_000.0), np.full(20, 90_000.0)])
        obs = Observation(
            step_index=0,
            time_s=0.0,
            dt=1.0,
            power_request_w=5_000.0,
            preview_w=preview,
            battery_soc_percent=95.0,
            battery_temp_k=300.0,
            coolant_temp_k=300.0,
            cap_soe_percent=100.0,
        )
        d = otem.control(obs)
        # the plan must discharge the cap during the previewed peak steps
        assert np.max(otem._plan.cap_bus_w[1:]) > 10_000.0
