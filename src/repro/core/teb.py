"""Thermal and Energy Budget (TEB) - the paper's quality metric.

The paper introduces TEB as the headroom the manager prepares before power
requests arrive: a pre-cooled battery (thermal budget: distance to the C1
limit) and a pre-charged ultracapacitor (energy budget: stored energy above
the C5 floor).  We quantify it as a weighted, normalized sum:

    TEB(t) =  alpha * (T_max - T_b(t)) / (T_max - T_ref)
            + (1 - alpha) * (SoE(t) - SoE_min) / (SoE_max - SoE_min)

so TEB = 1 means "battery fully cooled to the reference and bank full";
TEB = 0 means "no headroom at all" (hot battery, empty bank).  Fig. 7's
qualitative claim - OTEM raises TEB ahead of large requests - becomes
measurable: correlate TEB against the upcoming-demand signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.trace import Trace
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class TEBParams:
    """Normalization constants of the TEB metric.

    Attributes
    ----------
    temp_max_k:
        C1 safety limit (zero thermal budget) [K].
    temp_ref_k:
        Fully pre-cooled reference (full thermal budget) [K].
    soe_min_percent / soe_max_percent:
        C5 window (zero / full energy budget) [%].
    alpha:
        Weight of the thermal component [-].
    """

    temp_max_k: float = 313.15
    temp_ref_k: float = 295.15
    soe_min_percent: float = 20.0
    soe_max_percent: float = 100.0
    alpha: float = 0.5

    def __post_init__(self):
        if self.temp_ref_k >= self.temp_max_k:
            raise ValueError("temp_ref_k must be below temp_max_k")
        if self.soe_min_percent >= self.soe_max_percent:
            raise ValueError("soe_min_percent must be below soe_max_percent")
        check_in_range(self.alpha, 0.0, 1.0, "alpha")


def teb_trace(trace: Trace, params: TEBParams = TEBParams()) -> np.ndarray:
    """Per-step TEB values for a simulation trace, clipped to [0, 1]."""
    thermal = (params.temp_max_k - trace.battery_temp_k) / (
        params.temp_max_k - params.temp_ref_k
    )
    energy = (trace.cap_soe_percent - params.soe_min_percent) / (
        params.soe_max_percent - params.soe_min_percent
    )
    thermal = np.clip(thermal, 0.0, 1.0)
    energy = np.clip(energy, 0.0, 1.0)
    return params.alpha * thermal + (1.0 - params.alpha) * energy


def upcoming_demand_w(trace: Trace, lookahead_steps: int = 30) -> np.ndarray:
    """Mean positive power demand over the next ``lookahead_steps`` steps.

    Used to test Fig. 7's claim: TEB should be elevated where this signal is
    about to be large.
    """
    if lookahead_steps < 1:
        raise ValueError("lookahead_steps must be >= 1")
    demand = np.clip(trace.request_w, 0.0, None)
    n = demand.size
    out = np.empty(n)
    # suffix cumulative sums make each window O(1)
    csum = np.concatenate([[0.0], np.cumsum(demand)])
    for i in range(n):
        j = min(n, i + lookahead_steps)
        width = max(1, j - i)
        out[i] = (csum[j] - csum[i]) / width
    return out


def teb_preparation_score(trace: Trace, lookahead_steps: int = 30) -> float:
    """Correlation between TEB and upcoming demand (Fig. 7 quantified).

    A *positive* score means the manager holds more budget when big requests
    are imminent - the TEB-preparation behaviour OTEM claims.  Purely
    reactive policies tend to score near zero or negative (their budget is
    depleted exactly when demand arrives).
    """
    teb = teb_trace(trace)
    demand = upcoming_demand_w(trace, lookahead_steps)
    if np.std(teb) < 1e-12 or np.std(demand) < 1e-12:
        return 0.0
    return float(np.corrcoef(teb, demand)[0, 1])
