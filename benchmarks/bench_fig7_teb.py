"""Fig. 7 - TEB preparation (temporal analysis of OTEM).

Paper: OTEM allocates charge to the ultracapacitor and/or pre-cools the
battery when it notices large power requests in the near future, so the
HEES is in its most efficient state when they arrive.

Quantified here as the correlation between the TEB metric and upcoming
demand: OTEM must score clearly above the reactive dual baseline.
"""

import numpy as np

from benchmarks.conftest import REPEAT_THERMAL, run_once
from repro.analysis.figures import fig7_data
from repro.core.teb import teb_preparation_score
from repro.sim.scenario import Scenario, run_scenario


def test_fig7_teb_preparation(benchmark):
    data = run_once(benchmark, fig7_data, cycle="us06", repeat=REPEAT_THERMAL)

    dual = run_scenario(
        Scenario(methodology="dual", cycle="us06", repeat=REPEAT_THERMAL)
    )
    dual_score = teb_preparation_score(dual.trace)

    print()
    print("Fig. 7 - TEB preparation (US06 x%d)" % REPEAT_THERMAL)
    print(f"  OTEM preparation score: {data.preparation_score:+.3f}")
    print(f"  Dual preparation score: {dual_score:+.3f}")
    print(f"  OTEM mean TEB: {np.mean(data.teb):.3f}")
    print(f"  OTEM SoE range: {data.cap_soe_percent.min():.1f}"
          f" - {data.cap_soe_percent.max():.1f} %")

    # shape: OTEM prepares budget ahead of demand, the reactive baseline
    # does not
    assert data.preparation_score > dual_score
    # OTEM actively cycles the bank (it is managing, not idling)
    assert data.cap_soe_percent.max() - data.cap_soe_percent.min() > 20.0
