"""Heuristic manager for the hybrid architecture (no optimization).

An engineering-common-sense policy on exactly OTEM's plant (hybrid HEES +
active cooling), used to isolate the value of the MPC itself
(``benchmarks/bench_ablation_mpc_vs_heuristic.py``):

* **peak shaving**: the ultracapacitor serves whatever the request exceeds
  an exponential moving average of recent demand, and recharges from the
  bus when the request is below it;
* **thermostat cooling**: fixed-setpoint hysteresis, full-cold inlet.

No preview, no cost function, no coupling between the thermal and energy
halves - the two things OTEM adds.
"""

from __future__ import annotations

from repro.controllers.base import Architecture, Decision, Observation
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.utils.validation import check_in_range, check_positive


class HybridHeuristicController:
    """EMA peak-shaving + thermostat on the hybrid architecture.

    Parameters
    ----------
    smoothing:
        EMA coefficient per step in (0, 1); smaller = smoother battery
        power (the capacitor works harder).
    recharge_power_w:
        Bus power used to top the bank back up when demand is below the
        average [W].
    soe_target_percent:
        Bank SoE the recharge path aims for [%].
    temp_on_k / temp_off_k:
        Thermostat hysteresis thresholds [K].
    coolant:
        Loop parameters (supplies the full-cold inlet).
    """

    name = "Heuristic hybrid"
    architecture = Architecture.HYBRID
    uses_cooling = True

    def __init__(
        self,
        smoothing: float = 0.05,
        recharge_power_w: float = 6_000.0,
        soe_target_percent: float = 90.0,
        temp_on_k: float = 302.15,
        temp_off_k: float = 299.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        check_in_range(smoothing, 1e-4, 1.0, "smoothing")
        check_positive(recharge_power_w, "recharge_power_w")
        check_in_range(soe_target_percent, 0.0, 100.0, "soe_target_percent")
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._alpha = smoothing
        self._recharge_w = recharge_power_w
        self._soe_target = soe_target_percent
        self._t_on = temp_on_k
        self._t_off = temp_off_k
        self._coolant = coolant
        self._ema_w: float | None = None
        self._cooling = False

    @property
    def ema_w(self) -> float | None:
        """Current demand average [W] (None before the first step)."""
        return self._ema_w

    def control(self, obs: Observation) -> Decision:
        """Shave peaks above the EMA; thermostat the cooler."""
        if self._ema_w is None:
            self._ema_w = max(obs.power_request_w, 0.0)
        else:
            self._ema_w += self._alpha * (obs.power_request_w - self._ema_w)

        surplus = obs.power_request_w - self._ema_w
        if surplus > 0:
            cap_bus = surplus
        elif obs.cap_soe_percent < self._soe_target:
            # demand lull: recharge, at most back to the average level
            cap_bus = -min(self._recharge_w, max(0.0, -surplus))
        else:
            cap_bus = 0.0

        if self._cooling:
            if obs.battery_temp_k <= self._t_off:
                self._cooling = False
        elif obs.battery_temp_k >= self._t_on:
            self._cooling = True

        return Decision(
            cap_bus_w=cap_bus,
            cooling_active=self._cooling,
            inlet_temp_k=self._coolant.min_inlet_temp_k,
            info={"ema_w": self._ema_w, "thermostat_on": self._cooling},
        )

    def reset(self):
        """Clear the EMA and disengage the thermostat."""
        self._ema_w = None
        self._cooling = False
