"""Extension - environment-temperature sweep.

The paper's experimental setup evaluates "different environment
temperatures" (Section IV-A) without showing a dedicated figure.  This
bench sweeps the initial battery/ambient temperature and checks the
physical couplings the models encode:

* starting hot, OTEM spends more cooling energy than starting cool;
* starting cold, the battery is less efficient (higher internal
  resistance), so the passive baseline consumes more energy than at the
  reference temperature;
* OTEM keeps the battery inside the safe zone at every start temperature.
"""

from benchmarks.conftest import BATCH_WORKERS, run_once
from repro.sim.batch import ResultCache, run_batch, scenario_grid
from repro.sim.scenario import Scenario
from repro.utils.units import kelvin_to_celsius

START_TEMPS_K = (278.15, 298.15, 310.15)  # 5 C, 25 C, 37 C


def sweep():
    """The (temperature x methodology) grid as one parallel cached batch."""
    grid = scenario_grid(
        Scenario(cycle="us06", repeat=1),
        initial_temp_k=START_TEMPS_K,
        methodology=("parallel", "otem"),
    )
    batch = run_batch(
        grid, workers=BATCH_WORKERS, cache=ResultCache()
    ).raise_on_failure()
    out = {t0: {} for t0 in START_TEMPS_K}
    for cell in batch.cells:
        out[cell.scenario.initial_temp_k][cell.scenario.methodology] = cell.metrics
    return out


def test_ambient_temperature_sweep(benchmark):
    results = run_once(benchmark, sweep)

    print()
    print("Extension - environment temperature sweep (US06 x1)")
    print(
        f"{'start [C]':>10} {'par P [kW]':>11} {'par Q [%]':>10} "
        f"{'otem P [kW]':>12} {'otem Q [%]':>11} {'otem cool [kWh]':>16}"
    )
    for t0 in START_TEMPS_K:
        par = results[t0]["parallel"]
        otem = results[t0]["otem"]
        print(
            f"{kelvin_to_celsius(t0):>10.0f} {par.average_power_w / 1000:>11.2f} "
            f"{par.qloss_percent:>10.4f} {otem.average_power_w / 1000:>12.2f} "
            f"{otem.qloss_percent:>11.4f} {otem.cooling_energy_j / 3.6e6:>16.2f}"
        )

    cold, ref, hot = START_TEMPS_K
    # cold start: higher resistance -> the passive baseline burns more energy
    assert (
        results[cold]["parallel"].hees_energy_j
        > results[ref]["parallel"].hees_energy_j
    )
    # hot start: OTEM pays more for cooling than at the reference
    assert (
        results[hot]["otem"].cooling_energy_j
        > results[ref]["otem"].cooling_energy_j * 0.9
    )
    # hot start ages the passive baseline hardest
    assert (
        results[hot]["parallel"].qloss_percent
        > results[ref]["parallel"].qloss_percent
    )
    # OTEM stays safe everywhere
    for t0 in START_TEMPS_K:
        assert results[t0]["otem"].time_above_safe_s < 30.0
