"""Built-in reconstructions of the standard EPA drive cycles.

The official per-second data files are not available offline, so each cycle
is encoded as a deterministic segment program (see
:mod:`repro.drivecycle.synth`) tuned so that duration, distance, maximum and
mean speed, and the stop/go structure match the published statistics:

=========  =========  ==========  ============  ============  ==========
cycle      duration   distance    max speed     mean speed    character
=========  =========  ==========  ============  ============  ==========
US06          596 s    12.89 km   129.2 km/h     77.9 km/h    aggressive highway
UDDS         1369 s    12.07 km    91.2 km/h     31.5 km/h    urban stop-and-go
HWFET         765 s    16.45 km    96.4 km/h     77.7 km/h    steady highway
NYCC          598 s     1.90 km    44.6 km/h     11.4 km/h    dense city crawl
LA92         1435 s    15.80 km   108.1 km/h     39.6 km/h    modern mixed urban
=========  =========  ==========  ============  ============  ==========

These targets are checked by ``tests/drivecycle/test_library.py`` with a
+/-12% tolerance on duration, distance and mean speed (exact per-second shape
is not reproducible and not needed; see DESIGN.md section 3).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.drivecycle.cycle import DriveCycle
from repro.drivecycle.synth import accel, cruise, decel, idle, synthesize

#: Published reference statistics used by the tests:
#: (duration_s, distance_km, max_speed_kmh, mean_speed_kmh)
REFERENCE_STATS = {
    "us06": (596.0, 12.89, 129.2, 77.9),
    "udds": (1369.0, 12.07, 91.2, 31.5),
    "hwfet": (765.0, 16.45, 96.4, 77.7),
    "nycc": (598.0, 1.90, 44.6, 11.4),
    "la92": (1435.0, 15.80, 108.1, 39.6),
    # beyond the paper's set: the modern homologation cycles
    "wltc3": (1800.0, 23.27, 131.3, 46.5),
    "jc08": (1204.0, 8.17, 81.6, 24.4),
    "artemis_urban": (993.0, 4.87, 57.3, 17.7),
}


def _us06() -> DriveCycle:
    """Aggressive supplemental FTP cycle: hard launches and a 129 km/h burst."""
    program = [
        idle(6),
        accel(95, 2.7),
        cruise(30, ripple_kmh=8, ripple_period_s=18),
        decel(45, 1.8),
        cruise(14, ripple_kmh=4, ripple_period_s=10),
        accel(105, 2.2),
        cruise(45, ripple_kmh=6, ripple_period_s=25),
        decel(0, 2.4),
        idle(18),
        accel(129.2, 2.0),
        cruise(110, ripple_kmh=0),
        decel(88, 1.2),
        cruise(80, ripple_kmh=8, ripple_period_s=22),
        accel(112, 1.8),
        cruise(40, ripple_kmh=5, ripple_period_s=30),
        decel(0, 2.2),
        idle(24),
        accel(72, 2.5),
        cruise(45, ripple_kmh=10, ripple_period_s=20),
        decel(0, 2.0),
        idle(30),
        accel(48, 2.0),
        cruise(20, ripple_kmh=5, ripple_period_s=15),
        decel(0, 1.8),
        idle(16),
    ]
    return synthesize("US06", program)


def _udds() -> DriveCycle:
    """Urban dynamometer cycle: 1369 s of stop-and-go with one 91 km/h hill."""
    program = [idle(20)]
    # one fast arterial hill near the start (the famous UDDS "hill 2")
    program += [
        accel(91.2, 1.2),
        cruise(80, ripple_kmh=0),
        decel(0, 1.0),
        idle(18),
    ]
    # repeating low-speed urban hills; (peak km/h, cruise s, idle s)
    hills = [
        (38, 35, 15),
        (45, 45, 20),
        (30, 25, 12),
        (52, 55, 18),
        (38, 30, 22),
        (45, 40, 14),
        (30, 20, 16),
        (52, 60, 20),
        (38, 35, 12),
        (45, 50, 18),
        (30, 25, 25),
        (52, 45, 15),
        (38, 30, 17),
        (45, 35, 20),
        (38, 30, 30),
    ]
    for peak, hold, wait in hills:
        program += [
            accel(peak, 0.9),
            cruise(hold, ripple_kmh=5, ripple_period_s=25),
            decel(0, 0.9),
            idle(wait),
        ]
    return synthesize("UDDS", program)


def _hwfet() -> DriveCycle:
    """Highway fuel-economy cycle: one long moderate-speed cruise, no stops."""
    program = [
        idle(6),
        accel(78, 1.1),
        cruise(95, ripple_kmh=5, ripple_period_s=45),
        accel(88, 0.5),
        cruise(120, ripple_kmh=4, ripple_period_s=50),
        decel(70, 0.5),
        cruise(85, ripple_kmh=5, ripple_period_s=40),
        accel(96.4, 0.7),
        cruise(95, ripple_kmh=0),
        decel(78, 0.4),
        cruise(270, ripple_kmh=6, ripple_period_s=60),
        decel(0, 1.2),
        idle(5),
    ]
    return synthesize("HWFET", program)


def _nycc() -> DriveCycle:
    """New York City cycle: crawling traffic, frequent long stops."""
    program = [idle(15)]
    hops = [
        (25, 12, 25, 3.0),
        (18, 8, 28, 3.0),
        (30, 15, 20, 3.0),
        (44.6, 22, 26, 0.0),
        (22, 10, 32, 3.0),
        (28, 14, 24, 3.0),
        (16, 6, 28, 3.0),
        (35, 18, 22, 3.0),
        (24, 10, 30, 3.0),
        (30, 12, 24, 3.0),
        (20, 8, 22, 3.0),
    ]
    for peak, hold, wait, ripple in hops:
        program += [
            accel(peak, 0.8),
            cruise(hold, ripple_kmh=ripple, ripple_period_s=12),
            decel(0, 1.0),
            idle(wait),
        ]
    return synthesize("NYCC", program)


def _la92() -> DriveCycle:
    """LA92 "unified" cycle: faster, harder-accelerating urban driving."""
    program = [idle(15)]
    hills = [
        (52, 40, 26, 5.0),
        (66, 60, 30, 5.0),
        (40, 30, 22, 5.0),
        (108.1, 85, 32, 0.0),
        (56, 45, 26, 5.0),
        (78, 65, 34, 5.0),
        (44, 32, 24, 5.0),
        (85, 75, 30, 5.0),
        (50, 36, 28, 5.0),
        (62, 50, 32, 5.0),
        (36, 24, 26, 5.0),
        (74, 60, 30, 5.0),
        (48, 32, 32, 5.0),
    ]
    for peak, hold, wait, ripple in hills:
        program += [
            accel(peak, 1.4),
            cruise(hold, ripple_kmh=ripple, ripple_period_s=30),
            decel(0, 1.2),
            idle(wait),
        ]
    return synthesize("LA92", program)


def _wltc3() -> DriveCycle:
    """WLTC class 3: four phases from urban crawl to a 131 km/h motorway leg."""
    program = [idle(12)]
    # low phase: stop-and-go
    for peak, hold, wait in [
        (35, 30, 30),
        (48, 40, 35),
        (25, 18, 28),
        (40, 30, 30),
        (30, 22, 26),
        (56.5, 45, 35),
        (28, 20, 30),
        (45, 35, 32),
    ]:
        program += [
            accel(peak, 1.2),
            cruise(hold, ripple_kmh=4, ripple_period_s=20),
            decel(0, 1.1),
            idle(wait),
        ]
    # medium phase
    for peak, hold, wait in [(55, 45, 22), (65, 60, 24), (76.6, 75, 26)]:
        program += [
            accel(peak, 1.0),
            cruise(hold, ripple_kmh=5, ripple_period_s=30),
            decel(0, 1.0),
            idle(wait),
        ]
    # high phase
    program += [
        accel(97.4, 0.9),
        cruise(170, ripple_kmh=6, ripple_period_s=45),
        decel(0, 0.9),
        idle(14),
    ]
    # extra-high phase: the motorway leg
    program += [
        accel(131.3, 0.8),
        cruise(150, ripple_kmh=0),
        decel(90, 0.6),
        cruise(90, ripple_kmh=5, ripple_period_s=40),
        decel(0, 1.0),
        idle(10),
    ]
    return synthesize("WLTC3", program)


def _jc08() -> DriveCycle:
    """JC08: the Japanese urban cycle - slow, gentle, long idles."""
    program = [idle(22)]
    hops = [
        (30, 25, 28),
        (40, 35, 32),
        (24, 15, 26),
        (52, 50, 34),
        (34, 25, 30),
        (81.6, 70, 36),
        (45, 40, 30),
        (60, 55, 34),
        (28, 18, 28),
        (50, 45, 34),
        (22, 12, 26),
        (38, 25, 30),
    ]
    for peak, hold, wait in hops:
        ripple = 0.0 if peak > 80 else 3.0
        program += [
            accel(peak, 0.7),
            cruise(hold, ripple_kmh=ripple, ripple_period_s=18),
            decel(0, 0.8),
            idle(wait),
        ]
    return synthesize("JC08", program)


def _artemis_urban() -> DriveCycle:
    """Artemis Urban: real-traffic European city driving, dense stops."""
    program = [idle(14)]
    hops = [
        (28, 14, 24, 3.0),
        (38, 20, 28, 4.0),
        (22, 10, 22, 3.0),
        (46, 28, 30, 4.0),
        (32, 16, 26, 3.0),
        (57.3, 35, 32, 0.0),
        (26, 12, 24, 3.0),
        (42, 24, 28, 4.0),
        (30, 15, 26, 3.0),
        (48, 28, 30, 4.0),
        (24, 12, 24, 3.0),
        (36, 18, 28, 4.0),
        (20, 10, 22, 3.0),
        (34, 16, 26, 3.0),
        (44, 24, 28, 4.0),
    ]
    for peak, hold, wait, ripple in hops:
        program += [
            accel(peak, 1.1),
            cruise(hold, ripple_kmh=ripple, ripple_period_s=14),
            decel(0, 1.2),
            idle(wait),
        ]
    return synthesize("ARTEMIS-URBAN", program)


_BUILDERS: Dict[str, Callable[[], DriveCycle]] = {
    "us06": _us06,
    "udds": _udds,
    "hwfet": _hwfet,
    "nycc": _nycc,
    "la92": _la92,
    "wltc3": _wltc3,
    "jc08": _jc08,
    "artemis_urban": _artemis_urban,
}

_CACHE: Dict[str, DriveCycle] = {}


def available_cycles():
    """Names of all built-in drive cycles, sorted."""
    return sorted(_BUILDERS)


def get_cycle(name: str, repeat: int = 1) -> DriveCycle:
    """Return a built-in drive cycle by name.

    Parameters
    ----------
    name:
        One of :func:`available_cycles` (case-insensitive).
    repeat:
        Concatenate the cycle with itself this many times (the paper drives
        US06 five times for the temperature analyses).
    """
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown drive cycle {name!r}; available: {', '.join(available_cycles())}"
        )
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[key]()
    cycle = _CACHE[key]
    return cycle.repeat(repeat) if repeat > 1 else cycle
