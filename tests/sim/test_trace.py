"""Trace recording tests."""

import numpy as np
import pytest

from repro.sim.trace import CHANNELS, Trace, TraceRecorder


def full_record(**overrides):
    rec = {name: 0.0 for name in CHANNELS}
    rec.update(overrides)
    return rec


class TestRecorder:
    def test_record_and_freeze(self):
        rec = TraceRecorder()
        rec.record(**full_record(time_s=0.0, request_w=5.0))
        rec.record(**full_record(time_s=1.0, request_w=6.0))
        trace = rec.freeze()
        assert len(trace) == 2
        assert trace.request_w.tolist() == [5.0, 6.0]

    def test_missing_channel_rejected(self):
        rec = TraceRecorder()
        bad = full_record()
        del bad["heat_w"]
        with pytest.raises(ValueError, match="heat_w"):
            rec.record(**bad)

    def test_extra_channel_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError, match="bogus"):
            rec.record(**full_record(), bogus=1.0)

    def test_len_tracks_records(self):
        rec = TraceRecorder()
        assert len(rec) == 0
        rec.record(**full_record())
        assert len(rec) == 1


class TestTrace:
    def test_channels_readonly(self):
        rec = TraceRecorder()
        rec.record(**full_record())
        trace = rec.freeze()
        with pytest.raises(ValueError):
            trace.request_w[0] = 99.0

    def test_mismatched_lengths_rejected(self):
        arrays = {name: np.zeros(3) for name in CHANNELS}
        arrays["heat_w"] = np.zeros(2)
        with pytest.raises(ValueError, match="heat_w"):
            Trace(**arrays)

    def test_dt_from_time_axis(self):
        arrays = {name: np.zeros(3) for name in CHANNELS}
        arrays["time_s"] = np.array([0.0, 2.0, 4.0])
        assert Trace(**arrays).dt == 2.0

    def test_channel_lookup(self):
        arrays = {name: np.zeros(2) for name in CHANNELS}
        trace = Trace(**arrays)
        assert trace.channel("heat_w") is trace.heat_w

    def test_channel_lookup_unknown(self):
        arrays = {name: np.zeros(2) for name in CHANNELS}
        with pytest.raises(KeyError):
            Trace(**arrays).channel("nope")
