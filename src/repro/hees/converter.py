"""DC/DC converter with voltage-dependent efficiency (Section II-C.2).

The paper's key observation: converter efficiency drops as the port voltage
sags - overusing the ultracapacitor (deep SoE, low Vcap) makes every
transferred joule more expensive.  OTEM sees this through the efficiency
model below; the baselines do not.

Model:  eta(V) = eta_max - droop * (1 - V / V_ref)^2, clipped at eta_min.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class ConverterParams:
    """Efficiency-curve parameters of one DC/DC converter port.

    Attributes
    ----------
    eta_max:
        Peak efficiency, reached at V = V_ref [-].
    eta_min:
        Efficiency floor [-].
    droop:
        Quadratic sensitivity to relative voltage sag [-].
    v_ref:
        Reference (rated) port voltage [V].
    max_power_w:
        Converter power rating [W] (both directions).
    """

    eta_max: float = 0.95
    eta_min: float = 0.80
    droop: float = 0.40
    v_ref: float = 16.2
    max_power_w: float = 60_000.0

    def __post_init__(self):
        check_in_range(self.eta_max, 0.5, 1.0, "eta_max")
        check_in_range(self.eta_min, 0.3, self.eta_max, "eta_min")
        check_in_range(self.droop, 0.0, 5.0, "droop")
        check_positive(self.v_ref, "v_ref")
        check_positive(self.max_power_w, "max_power_w")


class DCDCConverter:
    """One converter port between a storage element and the DC bus."""

    def __init__(self, params: ConverterParams):
        self._p = params

    @property
    def params(self) -> ConverterParams:
        """Converter parameters in use."""
        return self._p

    def efficiency(self, port_voltage_v):
        """Conversion efficiency eta_DC [-] at the given port voltage."""
        p = self._p
        v = np.asarray(port_voltage_v, dtype=float)
        sag = 1.0 - v / p.v_ref
        eta = p.eta_max - p.droop * sag**2
        return np.clip(eta, p.eta_min, p.eta_max)

    def port_power_for_bus(self, bus_power_w: float, port_voltage_v: float) -> float:
        """Storage-side power needed to realize ``bus_power_w`` at the bus.

        Positive = storage discharging into the bus (storage supplies
        ``bus / eta``); negative = bus charging the storage (storage receives
        ``bus * eta``); clipped at the converter rating on the port side.
        """
        eta = float(self.efficiency(port_voltage_v))
        if bus_power_w >= 0:
            port = bus_power_w / eta
        else:
            port = bus_power_w * eta
        return float(np.clip(port, -self._p.max_power_w, self._p.max_power_w))

    def bus_power_for_port(self, port_power_w: float, port_voltage_v: float) -> float:
        """Bus-side power realized by ``port_power_w`` at the storage port."""
        eta = float(self.efficiency(port_voltage_v))
        port = float(np.clip(port_power_w, -self._p.max_power_w, self._p.max_power_w))
        if port >= 0:
            return port * eta
        return port / eta

    # ------------------------------------------------------------------ #
    # lockstep (struct-of-arrays) variants

    def port_power_for_bus_batch(self, bus_power_w, port_voltage_v) -> np.ndarray:
        """Vectorized :meth:`port_power_for_bus` over column arrays."""
        eta = self.efficiency(port_voltage_v)
        port = np.where(bus_power_w >= 0, bus_power_w / eta, bus_power_w * eta)
        return np.clip(port, -self._p.max_power_w, self._p.max_power_w)

    def bus_power_for_port_batch(self, port_power_w, port_voltage_v) -> np.ndarray:
        """Vectorized :meth:`bus_power_for_port` over column arrays."""
        eta = self.efficiency(port_voltage_v)
        port = np.clip(port_power_w, -self._p.max_power_w, self._p.max_power_w)
        return np.where(port >= 0, port * eta, port / eta)

    def loss_w(self, port_power_w: float, port_voltage_v: float) -> float:
        """Power dissipated in the converter [W] for a port-side flow."""
        bus = self.bus_power_for_port(port_power_w, port_voltage_v)
        return abs(port_power_w - bus) if port_power_w * bus >= 0 else abs(port_power_w) + abs(bus)
