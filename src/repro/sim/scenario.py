"""One-call experiment scenarios.

Everything the paper's evaluation varies - methodology, drive cycle, number
of repetitions, ultracapacitor size, ambient/initial temperature - is a
:class:`Scenario` field; :func:`run_scenario` builds the whole stack
(cycle -> powertrain -> controller -> simulator) and returns the
:class:`repro.sim.engine.SimulationResult`.  The benchmark harness and the
examples are thin layers over this module.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace

from repro.battery.pack import DEFAULT_PACK, PackConfig
from repro.battery.params import CellParams
from repro.controllers.base import Controller
from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.dual_threshold import DualThresholdController
from repro.controllers.parallel_passive import ParallelPassiveController
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.core.cost import CostWeights
from repro.core.mpc import MPCPlanner
from repro.core.otem import OTEMController
from repro.drivecycle.library import get_cycle
from repro.sim.engine import SimulationResult, Simulator
from repro.ultracap.params import UltracapParams, bank_of_farads
from repro.vehicle.params import MODEL_S_LIKE, VehicleParams
from repro.vehicle.powertrain import Powertrain

#: Methodology identifiers accepted by :func:`build_controller`.  The first
#: four are the paper's evaluation set (Section IV-B); "heuristic" is the
#: beyond-paper peak-shaving manager used by the MPC-value ablation.
METHODOLOGIES = ("parallel", "cooling", "dual", "otem", "heuristic")


@dataclass(frozen=True)
class Scenario:
    """A fully specified experiment.

    Attributes
    ----------
    methodology:
        One of :data:`METHODOLOGIES`.
    cycle:
        Drive-cycle name (see :func:`repro.drivecycle.available_cycles`).
    repeat:
        Number of back-to-back cycle repetitions.
    ucap_farads:
        Ultracapacitor bank size [F] (the paper sweeps 5,000-25,000).
    initial_temp_k:
        Initial battery/coolant temperature [K] (Algorithm 1 uses 298).
    pack:
        Battery pack layout.
    vehicle:
        Vehicle parameters for the powertrain.
    coolant:
        Cooling-loop parameters.
    weights:
        OTEM objective weights (ignored by baselines).
    mpc_horizon / mpc_step_s / mpc_max_evals:
        OTEM planner knobs (ignored by baselines).
    rollout_backend:
        MPC rollout implementation, ``"scalar"`` (reference) or
        ``"vectorized"`` (batched NumPy kernel, several times faster per
        solve; ignored by baselines).
    perturb_seed:
        When not ``None``, the route is the deterministic traffic-perturbed
        variant of ``cycle`` with this seed (see
        :func:`repro.drivecycle.perturb.perturbed`) - Monte-Carlo ensembles
        become plain scenario grids.
    """

    methodology: str = "otem"
    cycle: str = "us06"
    repeat: int = 1
    ucap_farads: float = 25_000.0
    initial_temp_k: float = 298.0
    pack: PackConfig = DEFAULT_PACK
    vehicle: VehicleParams = MODEL_S_LIKE
    coolant: CoolantParams = DEFAULT_COOLANT
    weights: CostWeights = field(default_factory=CostWeights)
    mpc_horizon: int = 12
    mpc_step_s: float = 5.0
    mpc_max_evals: int = 150
    rollout_backend: str = "scalar"
    perturb_seed: int | None = None

    def __post_init__(self):
        if self.methodology not in METHODOLOGIES:
            raise ValueError(
                f"unknown methodology {self.methodology!r}; "
                f"choose from {METHODOLOGIES}"
            )
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.rollout_backend not in MPCPlanner.BACKENDS:
            raise ValueError(
                f"unknown rollout_backend {self.rollout_backend!r}; "
                f"choose from {MPCPlanner.BACKENDS}"
            )

    def with_methodology(self, methodology: str) -> "Scenario":
        """Copy with a different methodology (comparison sweeps)."""
        return replace(self, methodology=methodology)

    def with_ucap(self, farads: float) -> "Scenario":
        """Copy with a different bank size (Table I sweep)."""
        return replace(self, ucap_farads=farads)

    def cap_params(self) -> UltracapParams:
        """The bank parameter set this scenario implies."""
        return bank_of_farads(self.ucap_farads)

    # ------------------------------------------------------------------ #
    # JSON round-trip (the sweep service's wire format)

    def to_dict(self) -> dict:
        """Recursive plain-dict view (JSON-safe; see :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from a (possibly partial) plain dict.

        Missing fields keep their defaults, so sweep specs only name what
        they change; unknown keys raise ``ValueError`` (catches typos in
        hand-written specs).  Nested parameter blocks (``pack``,
        ``vehicle``, ``coolant``, ``weights``) may themselves be partial.
        Round-trips exactly: floats survive JSON via repr-exact encoding,
        and ``perturb_seed`` round-trips ``None`` and ints alike.
        """
        return _dataclass_from_dict(cls, data, "scenario")

    def to_json(self) -> str:
        """Canonical JSON encoding of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Inverse of :meth:`to_json` (accepts partial documents too)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"scenario JSON must be an object, got {data!r}")
        return cls.from_dict(data)


#: Dataclass-valued fields and their types, per dataclass - what
#: :func:`_dataclass_from_dict` needs to rebuild the nested tree (the
#: ``from __future__ import annotations`` string types make introspecting
#: ``dataclasses.fields`` for this unreliable).
_NESTED_FIELD_TYPES: dict = {}


def _dataclass_from_dict(cls, data, label: str):
    """Rebuild ``cls`` from a partial plain dict, recursing into nests."""
    if not isinstance(data, dict):
        raise ValueError(f"{label} must be a mapping, got {type(data).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ValueError(
            f"unknown {label} field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(names))}"
        )
    nested = _NESTED_FIELD_TYPES.get(cls, {})
    kwargs = {}
    for name, value in data.items():
        if name in nested and value is not None:
            value = _dataclass_from_dict(nested[name], value, f"{label}.{name}")
        kwargs[name] = value
    return cls(**kwargs)


_NESTED_FIELD_TYPES.update(
    {
        Scenario: {
            "pack": PackConfig,
            "vehicle": VehicleParams,
            "coolant": CoolantParams,
            "weights": CostWeights,
        },
        PackConfig: {"cell": CellParams},
    }
)


def build_controller(scenario: Scenario) -> Controller:
    """Instantiate the methodology named by the scenario."""
    if scenario.methodology == "parallel":
        return ParallelPassiveController()
    if scenario.methodology == "cooling":
        return CoolingOnlyController(coolant=scenario.coolant)
    if scenario.methodology == "dual":
        return DualThresholdController()
    if scenario.methodology == "heuristic":
        from repro.controllers.heuristic import HybridHeuristicController

        return HybridHeuristicController(coolant=scenario.coolant)
    return OTEMController(
        pack_config=scenario.pack,
        cap_params=scenario.cap_params(),
        coolant=scenario.coolant,
        weights=scenario.weights,
        horizon=scenario.mpc_horizon,
        mpc_step_s=scenario.mpc_step_s,
        max_function_evals=scenario.mpc_max_evals,
        rollout_backend=scenario.rollout_backend,
    )


def run_scenario(scenario: Scenario) -> SimulationResult:
    """Build the stack for ``scenario``, run it, and return the result."""
    cycle = get_cycle(scenario.cycle, repeat=scenario.repeat)
    if scenario.perturb_seed is not None:
        from repro.drivecycle.perturb import perturbed

        cycle = perturbed(cycle, scenario.perturb_seed)
    request = Powertrain(scenario.vehicle).power_request(cycle)
    controller = build_controller(scenario)
    if isinstance(controller, OTEMController):
        preview = controller.required_preview_steps(request.dt)
    else:
        preview = 10
    simulator = Simulator(
        controller,
        pack_config=scenario.pack,
        cap_params=scenario.cap_params(),
        coolant=scenario.coolant,
        initial_temp_k=scenario.initial_temp_k,
        preview_steps=preview,
    )
    return simulator.run(request)
