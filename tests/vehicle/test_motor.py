"""Motor/inverter map tests."""

import numpy as np
import pytest

from repro.vehicle.motor import MotorDrive
from repro.vehicle.params import MODEL_S_LIKE


@pytest.fixture()
def motor():
    return MotorDrive(MODEL_S_LIKE)


class TestEfficiency:
    def test_bounded(self, motor):
        loads = np.linspace(0, MODEL_S_LIKE.max_motor_power_w, 100)
        eta = motor.efficiency(loads)
        assert np.all(eta >= 0.70)
        assert np.all(eta <= 0.93)

    def test_peak_near_configured_load(self, motor):
        peak_power = 0.35 * MODEL_S_LIKE.max_motor_power_w
        eta_peak = motor.efficiency(peak_power)
        assert eta_peak > motor.efficiency(0.02 * MODEL_S_LIKE.max_motor_power_w)
        assert eta_peak >= motor.efficiency(MODEL_S_LIKE.max_motor_power_w)

    def test_poor_at_light_load(self, motor):
        assert motor.efficiency(1_000.0) < 0.85

    def test_symmetric_in_sign(self, motor):
        assert motor.efficiency(-50_000.0) == pytest.approx(motor.efficiency(50_000.0))

    def test_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            MotorDrive(MODEL_S_LIKE, eta_peak=1.2)
        with pytest.raises(ValueError):
            MotorDrive(MODEL_S_LIKE, eta_min=0.99, eta_peak=0.93)


class TestElectricalPower:
    def test_driving_costs_more_than_mechanical(self, motor):
        mech = 50_000.0
        assert motor.electrical_power(mech) > mech

    def test_regen_returns_less_than_mechanical(self, motor):
        mech = -50_000.0
        elec = motor.electrical_power(mech)
        assert elec < 0
        assert abs(elec) < abs(mech)

    def test_regen_capped(self, motor):
        elec = motor.electrical_power(-1e6)
        assert elec == pytest.approx(-MODEL_S_LIKE.max_regen_power_w)

    def test_drive_capped_at_motor_rating(self, motor):
        elec = motor.electrical_power(1e7)
        assert elec <= MODEL_S_LIKE.max_motor_power_w

    def test_zero_power(self, motor):
        assert motor.electrical_power(0.0) == pytest.approx(0.0)

    def test_regen_fraction_applied(self, motor):
        mech = -10_000.0
        eta = float(motor.efficiency(mech))
        expected = mech * eta * MODEL_S_LIKE.regen_fraction
        assert motor.electrical_power(mech) == pytest.approx(expected)

    def test_vectorized(self, motor):
        out = motor.electrical_power(np.array([-20_000.0, 0.0, 20_000.0]))
        assert out.shape == (3,)
        assert out[0] < 0 < out[2]
