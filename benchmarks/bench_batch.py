"""The batch subsystem itself: serial vs parallel, cache behavior.

The fast-bench CI smoke.  Runs the ucap-size sweep (the Table I grid at
smoke scale) three ways - serially, fanned out over worker processes, and
again against a warm cache - asserts the three agree exactly, and writes
the repo's perf-trajectory artifact ``BENCH_batch.json`` with the
serial/parallel wall-clocks, cache hit/miss counts, and per-scenario MPC
solve statistics.

Parallel wall-clock beats serial only when the runner has >= 2 cores; the
assertion here is therefore on *correctness* (bitwise-identical metrics),
while the speedup is recorded for the trajectory and checked by CI on its
2-core runners.
"""

from __future__ import annotations

import os

from benchmarks.conftest import BATCH_WORKERS, run_once
from repro.sim.batch import ResultCache, run_batch, scenario_grid
from repro.sim.scenario import Scenario

#: Smoke-scale ucap-size sweep: both ends of the paper's Table I range,
#: all three Table I methodologies, on the short NYCC route with a reduced
#: solver budget so the whole bench stays within a CI smoke job.
SWEEP = scenario_grid(
    Scenario(cycle="nycc", repeat=1, mpc_max_evals=60),
    ucap_farads=(5_000.0, 25_000.0),
    methodology=("parallel", "dual", "otem"),
)


def test_batch_parallel_matches_serial_and_records_trajectory(benchmark):
    serial = run_batch(SWEEP, workers=0)
    assert serial.ok

    parallel = run_once(benchmark, run_batch, SWEEP, workers=BATCH_WORKERS)
    assert parallel.ok

    # parallel execution must not change a single bit of the results
    assert [c.metrics for c in parallel.cells] == [c.metrics for c in serial.cells]

    # the shared on-disk cache: the first pass may hit (CI restores
    # .repro_cache between runs - that is the point), the second pass must
    # serve every cell without recomputing
    cache = ResultCache()
    warmup = run_batch(SWEEP, workers=0, cache=cache)
    cached = run_batch(SWEEP, workers=0, cache=cache)
    assert warmup.cache_hits + warmup.cache_misses == len(SWEEP)
    assert cached.cache_hits == len(SWEEP) and cached.cache_misses == 0
    assert [c.metrics for c in cached.cells] == [c.metrics for c in serial.cells]

    # the OTEM cells carry MPC solve statistics, the baselines do not
    solver_rows = [c for c in serial.cells if c.scenario.methodology == "otem"]
    assert solver_rows and all(c.solver.solves > 0 for c in solver_rows)
    assert all(
        c.solver is None for c in serial.cells if c.scenario.methodology != "otem"
    )

    from repro.utils.perf import record_bench

    speedup = serial.wall_s / parallel.wall_s if parallel.wall_s else float("nan")
    path = record_bench(
        "batch",
        {
            "sweep": "ucap_size",
            "cells": len(SWEEP),
            "cpu_count": os.cpu_count(),
            "workers": BATCH_WORKERS,
            "serial_wall_s": serial.wall_s,
            "parallel_wall_s": parallel.wall_s,
            "parallel_speedup": speedup,
            # "process-pool", or "serial-fallback" when the host's single
            # CPU makes the fan-out degrade to in-process execution
            "methodology": parallel.methodology,
            "cache": {
                "first_pass_hits": warmup.cache_hits,
                "first_pass_misses": warmup.cache_misses,
                "warm_hits": cached.cache_hits,
                "warm_wall_s": cached.wall_s,
            },
            "rows": serial.rows(),
        },
    )

    print()
    print(
        f"batch sweep ({len(SWEEP)} cells): serial {serial.wall_s:.2f} s, "
        f"parallel x{BATCH_WORKERS} {parallel.wall_s:.2f} s "
        f"({parallel.methodology}, speedup {speedup:.2f}x on "
        f"{os.cpu_count()} core(s)), warm cache {cached.wall_s:.2f} s -> {path}"
    )

    # on a multi-core runner the fan-out must actually pay off
    if (os.cpu_count() or 1) >= 2 and os.environ.get("REPRO_REQUIRE_SPEEDUP"):
        assert parallel.wall_s < serial.wall_s
