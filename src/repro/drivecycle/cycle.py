"""The :class:`DriveCycle` container.

A drive cycle is an immutable, uniformly sampled speed-vs-time trace.  The
vehicle model (``repro.vehicle``) turns it into a power-request trace; the
controllers never see the cycle directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import mps_to_kmh
from repro.utils.validation import check_finite, check_positive


@dataclass(frozen=True)
class CycleStats:
    """Aggregate statistics of a drive cycle.

    Attributes
    ----------
    duration_s:
        Total duration [s].
    distance_km:
        Total distance travelled [km].
    max_speed_kmh:
        Peak speed [km/h].
    mean_speed_kmh:
        Time-averaged speed including idle [km/h].
    mean_moving_speed_kmh:
        Time-averaged speed over samples with speed > 0.3 m/s [km/h].
    stop_count:
        Number of distinct stopped intervals (speed below 0.3 m/s for at
        least 2 s), excluding a leading stop at t=0.
    idle_fraction:
        Fraction of samples with speed below 0.3 m/s.
    max_accel_ms2:
        Peak acceleration [m/s^2].
    max_decel_ms2:
        Peak deceleration magnitude [m/s^2].
    """

    duration_s: float
    distance_km: float
    max_speed_kmh: float
    mean_speed_kmh: float
    mean_moving_speed_kmh: float
    stop_count: int
    idle_fraction: float
    max_accel_ms2: float
    max_decel_ms2: float


class DriveCycle:
    """A uniformly sampled speed trace.

    Parameters
    ----------
    name:
        Human-readable cycle name (e.g. ``"US06"``).
    speed_mps:
        Speed samples [m/s], one per ``dt`` seconds, first sample at t=0.
    dt:
        Sample period [s].
    """

    #: Speeds below this threshold count as "stopped" [m/s].
    STOP_SPEED_MPS = 0.3

    def __init__(self, name: str, speed_mps, dt: float = 1.0):
        self._name = str(name)
        self._dt = check_positive(dt, "dt")
        speed = np.array(speed_mps, dtype=float)
        if speed.ndim != 1 or speed.size < 2:
            raise ValueError("speed_mps must be a 1-D trace with at least 2 samples")
        check_finite(speed, "speed_mps")
        if np.any(speed < 0):
            raise ValueError("speed_mps must be non-negative")
        speed.setflags(write=False)
        self._speed = speed

    # ------------------------------------------------------------------ #
    # basic accessors

    @property
    def name(self) -> str:
        """Cycle name."""
        return self._name

    @property
    def dt(self) -> float:
        """Sample period [s]."""
        return self._dt

    @property
    def speed_mps(self) -> np.ndarray:
        """Read-only speed samples [m/s]."""
        return self._speed

    @property
    def time_s(self) -> np.ndarray:
        """Sample times [s], starting at 0."""
        return np.arange(self._speed.size) * self._dt

    @property
    def duration_s(self) -> float:
        """Total duration [s] (time of the last sample)."""
        return (self._speed.size - 1) * self._dt

    def __len__(self) -> int:
        return self._speed.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DriveCycle({self._name!r}, n={len(self)}, dt={self._dt}, "
            f"duration={self.duration_s:.0f}s)"
        )

    # ------------------------------------------------------------------ #
    # derived quantities

    def acceleration_ms2(self) -> np.ndarray:
        """Central-difference acceleration trace [m/s^2], same length as speed."""
        return np.gradient(self._speed, self._dt)

    def distance_m(self) -> float:
        """Total distance [m] by trapezoidal integration of speed."""
        return float(np.trapezoid(self._speed, dx=self._dt))

    def stats(self) -> CycleStats:
        """Compute :class:`CycleStats` for this cycle."""
        speed = self._speed
        moving = speed > self.STOP_SPEED_MPS
        mean_speed = float(np.mean(speed))
        mean_moving = float(np.mean(speed[moving])) if np.any(moving) else 0.0
        accel = self.acceleration_ms2()
        return CycleStats(
            duration_s=self.duration_s,
            distance_km=self.distance_m() / 1000.0,
            max_speed_kmh=float(mps_to_kmh(np.max(speed))),
            mean_speed_kmh=float(mps_to_kmh(mean_speed)),
            mean_moving_speed_kmh=float(mps_to_kmh(mean_moving)),
            stop_count=self._count_stops(),
            idle_fraction=float(np.mean(~moving)),
            max_accel_ms2=float(np.max(accel)),
            max_decel_ms2=float(-np.min(accel)),
        )

    def _count_stops(self) -> int:
        """Count distinct stopped intervals of at least 2 s, excluding t=0."""
        stopped = self._speed <= self.STOP_SPEED_MPS
        min_samples = max(1, int(round(2.0 / self._dt)))
        count = 0
        run = 0
        run_start = 0
        for i, flag in enumerate(stopped):
            if flag:
                if run == 0:
                    run_start = i
                run += 1
            else:
                if run >= min_samples and run_start > 0:
                    count += 1
                run = 0
        if run >= min_samples and run_start > 0:
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # transformations

    def repeat(self, times: int) -> "DriveCycle":
        """Concatenate this cycle with itself ``times`` times.

        The repeated trace drops the duplicated boundary sample so that the
        joined speed is continuous (the cycles all start and end near zero
        speed, so no splicing ramp is needed).
        """
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if times == 1:
            return self
        pieces = [self._speed]
        for _ in range(times - 1):
            pieces.append(self._speed[1:])
        name = f"{self._name}x{times}"
        return DriveCycle(name, np.concatenate(pieces), self._dt)

    def resample(self, dt: float) -> "DriveCycle":
        """Linearly resample the trace onto a new uniform period ``dt``."""
        dt = check_positive(dt, "dt")
        if abs(dt - self._dt) < 1e-12:
            return self
        old_t = self.time_s
        n_new = int(np.floor(old_t[-1] / dt)) + 1
        new_t = np.arange(n_new) * dt
        new_speed = np.interp(new_t, old_t, self._speed)
        return DriveCycle(self._name, new_speed, dt)

    def scaled(self, factor: float) -> "DriveCycle":
        """Return a copy with all speeds multiplied by ``factor`` (> 0)."""
        factor = check_positive(factor, "factor")
        return DriveCycle(f"{self._name}*{factor:g}", self._speed * factor, self._dt)
