"""Summary-metric tests."""

import numpy as np
import pytest

from repro.sim.metrics import SAFE_TEMP_MAX_K, compute_metrics
from repro.sim.trace import CHANNELS, Trace


def make_trace(n=10, dt=1.0, **overrides):
    arrays = {name: np.zeros(n) for name in CHANNELS}
    arrays["time_s"] = np.arange(n) * dt
    arrays["battery_temp_k"] = np.full(n, 298.0)
    arrays["battery_soc_percent"] = np.full(n, 90.0)
    arrays["cap_soe_percent"] = np.full(n, 80.0)
    for key, val in overrides.items():
        arrays[key] = np.asarray(val, dtype=float)
    return Trace(**arrays)


class TestQloss:
    def test_sums_increments(self):
        trace = make_trace(loss_increment_percent=np.full(10, 0.001))
        assert compute_metrics(trace).qloss_percent == pytest.approx(0.01)

    def test_blt_routes(self):
        trace = make_trace(loss_increment_percent=np.full(10, 0.001))
        assert compute_metrics(trace).blt_routes == pytest.approx(20.0 / 0.01)


class TestEnergy:
    def test_hees_energy_sums_both_stores(self):
        trace = make_trace(
            chem_energy_j=np.full(10, 100.0), cap_energy_j=np.full(10, 50.0)
        )
        assert compute_metrics(trace).hees_energy_j == pytest.approx(1_500.0)

    def test_average_power(self):
        trace = make_trace(chem_energy_j=np.full(10, 1_000.0))
        m = compute_metrics(trace)
        assert m.average_power_w == pytest.approx(10_000.0 / m.duration_s)

    def test_cooling_energy(self):
        trace = make_trace(cooling_power_w=np.full(10, 200.0))
        assert compute_metrics(trace).cooling_energy_j == pytest.approx(2_000.0)

    def test_converter_loss(self):
        trace = make_trace(converter_loss_j=np.full(10, 5.0))
        assert compute_metrics(trace).converter_loss_j == pytest.approx(50.0)

    def test_unmet_energy(self):
        trace = make_trace(unmet_w=np.concatenate([np.zeros(5), np.full(5, 100.0)]))
        assert compute_metrics(trace).unmet_energy_j == pytest.approx(500.0)


class TestThermalSafety:
    def test_peak_temp(self):
        temps = np.full(10, 298.0)
        temps[4] = 320.0
        trace = make_trace(battery_temp_k=temps)
        assert compute_metrics(trace).peak_temp_k == 320.0

    def test_time_above_safe(self):
        temps = np.full(10, 298.0)
        temps[3:6] = SAFE_TEMP_MAX_K + 1.0
        trace = make_trace(battery_temp_k=temps)
        assert compute_metrics(trace).time_above_safe_s == pytest.approx(3.0)

    def test_custom_threshold(self):
        temps = np.full(10, 305.0)
        trace = make_trace(battery_temp_k=temps)
        assert compute_metrics(trace, safe_temp_k=300.0).time_above_safe_s == 10.0


class TestDepletion:
    def test_min_soc(self):
        socs = np.linspace(100, 40, 10)
        trace = make_trace(battery_soc_percent=socs)
        assert compute_metrics(trace).min_soc_percent == pytest.approx(40.0)

    def test_min_soe(self):
        soes = np.linspace(100, 25, 10)
        trace = make_trace(cap_soe_percent=soes)
        assert compute_metrics(trace).min_soe_percent == pytest.approx(25.0)
