#!/usr/bin/env python
"""Methodology shootout: all four managers on the same route, side by side.

Reproduces the core comparison of the paper's evaluation (Fig. 6/8/9) on a
single command.  By default drives US06 twice; pass a cycle name and repeat
count to change the route::

    python examples/methodology_shootout.py udds 3
"""

import sys

import numpy as np

from repro import Scenario, run_scenario
from repro.analysis.figures import METHOD_LABELS
from repro.utils.units import kelvin_to_celsius


def main():
    cycle = sys.argv[1] if len(sys.argv) > 1 else "us06"
    repeat = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    results = {}
    for m in ("parallel", "cooling", "dual", "otem"):
        print(f"Running {METHOD_LABELS[m]} on {cycle} x{repeat} ...")
        results[m] = run_scenario(
            Scenario(methodology=m, cycle=cycle, repeat=repeat)
        )

    base = results["parallel"].qloss_percent
    print()
    print(
        f"{'methodology':>14} {'Qloss [%]':>10} {'vs parallel':>12} "
        f"{'avg P [kW]':>11} {'peak T [C]':>11} {'mean T [C]':>11} {'cool [kWh]':>11}"
    )
    for m, result in results.items():
        metrics = result.metrics
        print(
            f"{METHOD_LABELS[m]:>14} "
            f"{metrics.qloss_percent:>10.4f} "
            f"{100 * metrics.qloss_percent / base:>11.1f}% "
            f"{metrics.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(metrics.peak_temp_k):>11.1f} "
            f"{float(kelvin_to_celsius(np.mean(result.trace.battery_temp_k))):>11.1f} "
            f"{metrics.cooling_energy_j / 3.6e6:>11.2f}"
        )

    otem = results["otem"].metrics
    cooling = results["cooling"].metrics
    print()
    print(
        f"OTEM vs parallel:     {100 * (1 - otem.qloss_percent / base):.1f}% "
        f"less capacity loss (paper: 16.4% across cycles, ~57% on US06)"
    )
    print(
        f"OTEM vs cooling-only: "
        f"{100 * (1 - otem.average_power_w / cooling.average_power_w):.1f}% "
        f"less average power (paper: 12.1%)"
    )


if __name__ == "__main__":
    main()
