"""Integration-helper tests."""

import numpy as np
import pytest

from repro.utils.integrate import (
    cumulative_trapezoid,
    euler_step,
    rk4_step,
    trapezoid,
)


class TestEulerStep:
    def test_constant_rhs(self):
        assert euler_step(lambda t, y: 2.0, 1.0, 0.0, 0.5) == pytest.approx(2.0)

    def test_zero_rhs(self):
        assert euler_step(lambda t, y: 0.0, 3.0, 0.0, 1.0) == pytest.approx(3.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            euler_step(lambda t, y: 0.0, 0.0, 0.0, 0.0)

    def test_vector_state(self):
        y = np.array([1.0, 2.0])
        out = euler_step(lambda t, y: -y, y, 0.0, 0.1)
        assert np.allclose(out, [0.9, 1.8])


class TestRK4Step:
    def test_exponential_decay_accuracy(self):
        # dy/dt = -y over one big step h=1: RK4 truncates the Taylor series
        # at h^4/24, giving 0.375 vs e^-1 ~ 0.3679 (error ~ 7e-3)
        y1 = rk4_step(lambda t, y: -y, 1.0, 0.0, 1.0)
        assert y1 == pytest.approx(np.exp(-1.0), abs=1e-2)

    def test_exponential_decay_small_steps(self):
        y = 1.0
        for k in range(10):
            y = rk4_step(lambda t, y: -y, y, k * 0.1, 0.1)
        assert y == pytest.approx(np.exp(-1.0), abs=1e-5)

    def test_beats_euler(self):
        exact = np.exp(-1.0)
        e = euler_step(lambda t, y: -y, 1.0, 0.0, 1.0)
        r = rk4_step(lambda t, y: -y, 1.0, 0.0, 1.0)
        assert abs(r - exact) < abs(e - exact)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            rk4_step(lambda t, y: 0.0, 0.0, 0.0, -1.0)

    def test_time_dependent_rhs(self):
        # dy/dt = t -> y(1) = 0.5 exactly (RK4 is exact for polynomials <= 3)
        assert rk4_step(lambda t, y: t, 0.0, 0.0, 1.0) == pytest.approx(0.5)


class TestTrapezoid:
    def test_constant(self):
        assert trapezoid([2.0, 2.0, 2.0], dt=1.0) == pytest.approx(4.0)

    def test_linear(self):
        assert trapezoid([0.0, 1.0, 2.0], dt=1.0) == pytest.approx(2.0)

    def test_with_times(self):
        assert trapezoid([0.0, 2.0], times=[0.0, 4.0]) == pytest.approx(4.0)

    def test_requires_exactly_one_grid(self):
        with pytest.raises(ValueError):
            trapezoid([1.0, 2.0])
        with pytest.raises(ValueError):
            trapezoid([1.0, 2.0], dt=1.0, times=[0.0, 1.0])

    def test_single_sample_is_zero(self):
        assert trapezoid([5.0], dt=1.0) == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            trapezoid(np.ones((2, 2)), dt=1.0)

    def test_mismatched_times(self):
        with pytest.raises(ValueError):
            trapezoid([1.0, 2.0], times=[0.0, 1.0, 2.0])


class TestCumulativeTrapezoid:
    def test_leading_zero(self):
        out = cumulative_trapezoid([1.0, 1.0, 1.0], dt=2.0)
        assert out[0] == 0.0

    def test_matches_trapezoid_total(self):
        vals = np.sin(np.linspace(0, 3, 50))
        out = cumulative_trapezoid(vals, dt=0.1)
        assert out[-1] == pytest.approx(trapezoid(vals, dt=0.1))

    def test_monotone_for_positive(self):
        out = cumulative_trapezoid([1.0, 2.0, 3.0, 4.0], dt=1.0)
        assert np.all(np.diff(out) > 0)

    def test_empty(self):
        assert cumulative_trapezoid([], dt=1.0).size == 0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            cumulative_trapezoid([1.0, 2.0], dt=0.0)
