"""Vehicle-parameter validation tests."""

import pytest

from repro.vehicle.params import MODEL_S_LIKE, VehicleParams


class TestDefaults:
    def test_model_s_like_mass(self):
        assert MODEL_S_LIKE.mass_kg == pytest.approx(2100.0)

    def test_model_s_like_drag(self):
        assert MODEL_S_LIKE.drag_coefficient == pytest.approx(0.24)

    def test_regen_fraction_in_unit_interval(self):
        assert 0.0 <= MODEL_S_LIKE.regen_fraction <= 1.0


class TestValidation:
    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            VehicleParams(mass_kg=0.0)

    def test_rejects_negative_drag(self):
        with pytest.raises(ValueError):
            VehicleParams(drag_coefficient=-0.1)

    def test_rejects_inertia_factor_below_one(self):
        with pytest.raises(ValueError):
            VehicleParams(wheel_inertia_factor=0.9)

    def test_rejects_regen_fraction_above_one(self):
        with pytest.raises(ValueError):
            VehicleParams(regen_fraction=1.5)

    def test_rejects_negative_aux(self):
        with pytest.raises(ValueError):
            VehicleParams(auxiliary_power_w=-10.0)


class TestWithMass:
    def test_changes_only_mass(self):
        heavier = MODEL_S_LIKE.with_mass(2500.0)
        assert heavier.mass_kg == 2500.0
        assert heavier.drag_coefficient == MODEL_S_LIKE.drag_coefficient

    def test_original_unchanged(self):
        MODEL_S_LIKE.with_mass(2500.0)
        assert MODEL_S_LIKE.mass_kg == 2100.0
