"""Thermal Kalman filter tests."""

import numpy as np
import pytest

from repro.battery.pack import DEFAULT_PACK
from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.wrappers import NoisyObservations
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop
from repro.core.estimator import FilteredObservations, ThermalKalmanFilter
from tests.controllers.test_baselines import make_obs

CB = DEFAULT_PACK.heat_capacity_j_per_k


def simulate_with_noise(filter_, sigma, steps=400, heat=2_000.0, seed=0):
    """Drive the true thermal plant, feed the filter noisy measurements."""
    rng = np.random.default_rng(seed)
    loop = CoolingLoop(DEFAULT_COOLANT, CB)
    tb, tc = 298.0, 298.0
    raw_err = []
    filt_err = []
    for _ in range(steps):
        r = loop.step(tb, tc, 298.0, heat, 1.0, cooling_active=False)
        tb, tc = r.battery_temp_k, r.coolant_temp_k
        z_tb = tb + rng.normal(0, sigma)
        z_tc = tc + rng.normal(0, sigma)
        est_tb, _ = filter_.update(z_tb, z_tc, heat_w=heat)
        raw_err.append(abs(z_tb - tb))
        filt_err.append(abs(est_tb - tb))
    return float(np.mean(raw_err)), float(np.mean(filt_err))


class TestFilterCore:
    def test_initializes_from_first_measurement(self):
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB)
        est = kf.update(305.0, 303.0)
        assert est == (305.0, 303.0)

    def test_gain_shape_and_stability(self):
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB)
        assert kf.gain.shape == (2, 2)
        assert np.all(np.abs(np.linalg.eigvals(kf.gain)) < 1.0)

    def test_reset(self):
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB)
        kf.update(305.0, 303.0)
        kf.reset()
        assert kf.state is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ThermalKalmanFilter(DEFAULT_COOLANT, CB, dt=0.0)
        with pytest.raises(ValueError):
            ThermalKalmanFilter(DEFAULT_COOLANT, CB, measurement_sigma_k=0.0)

    def test_reduces_measurement_error(self):
        """The headline property: filtered error << raw sensor error."""
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB, measurement_sigma_k=1.5)
        raw, filt = simulate_with_noise(kf, sigma=1.5)
        assert filt < 0.5 * raw

    def test_tracks_without_bias(self):
        """No systematic offset while the pack heats."""
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB, measurement_sigma_k=1.0)
        loop = CoolingLoop(DEFAULT_COOLANT, CB)
        rng = np.random.default_rng(1)
        tb, tc = 298.0, 298.0
        errors = []
        for _ in range(600):
            r = loop.step(tb, tc, 298.0, 2_500.0, 1.0, cooling_active=False)
            tb, tc = r.battery_temp_k, r.coolant_temp_k
            est_tb, _ = kf.update(
                tb + rng.normal(0, 1.0), tc + rng.normal(0, 1.0), heat_w=2_500.0
            )
            errors.append(est_tb - tb)
        assert abs(float(np.mean(errors[100:]))) < 0.3

    def test_noise_free_measurements_pass_through(self):
        kf = ThermalKalmanFilter(DEFAULT_COOLANT, CB, measurement_sigma_k=1.0)
        loop = CoolingLoop(DEFAULT_COOLANT, CB)
        tb, tc = 300.0, 300.0
        for _ in range(200):
            r = loop.step(tb, tc, 300.0, 1_000.0, 1.0, cooling_active=False)
            tb, tc = r.battery_temp_k, r.coolant_temp_k
            est_tb, est_tc = kf.update(tb, tc, heat_w=1_000.0)
        assert est_tb == pytest.approx(tb, abs=0.2)
        assert est_tc == pytest.approx(tc, abs=0.2)


class TestFilteredObservations:
    def test_preserves_declaration(self):
        wrapped = FilteredObservations(CoolingOnlyController())
        assert wrapped.uses_cooling
        assert "kf" in wrapped.name

    def test_smooths_thermostat_chatter(self):
        """On-threshold noise flips a raw thermostat; the filter steadies it."""
        noisy_flips = 0
        filtered_flips = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            raw = CoolingOnlyController()
            filt = FilteredObservations(CoolingOnlyController())
            last_raw = last_filt = None
            for k in range(40):
                temp = 299.15 + rng.normal(0, 1.5)
                obs = make_obs(temp_k=temp)
                d_raw = raw.control(obs).cooling_active
                d_filt = filt.control(obs).cooling_active
                if last_raw is not None and d_raw != last_raw:
                    noisy_flips += 1
                if last_filt is not None and d_filt != last_filt:
                    filtered_flips += 1
                last_raw, last_filt = d_raw, d_filt
        assert filtered_flips < noisy_flips

    def test_composes_with_noise_wrapper(self, short_request):
        from repro.sim.engine import Simulator

        controller = NoisyObservations(
            FilteredObservations(CoolingOnlyController()),
            temp_sigma_k=1.5,
            seed=0,
        )
        result = Simulator(controller).run(short_request)
        assert np.all(np.isfinite(result.trace.battery_temp_k))

    def test_reset_chains(self):
        wrapped = FilteredObservations(CoolingOnlyController())
        wrapped.control(make_obs(temp_k=305.0))
        wrapped.reset()
        assert wrapped._filter.state is None
