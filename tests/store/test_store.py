"""The experiment store: durability, corruption quarantine, eviction,
migration, and the run_batch(store=...) no-recompute guarantee."""

import dataclasses
import json
import os

import numpy as np
import pytest

import repro.sim.batch as batch_mod
from repro.sim.batch import (
    CellPayload,
    ResultCache,
    run_batch,
    scenario_fingerprint,
    scenario_grid,
)
from repro.sim.scenario import Scenario, run_scenario
from repro.store import ExperimentStore
from repro.store.experiment import BLOB_DIR, QUARANTINE_DIR

#: Fast baseline grid on the shortest cycle (two lockstep groups of two).
GRID = scenario_grid(
    Scenario(cycle="nycc"),
    methodology=("parallel", "dual"),
    ucap_farads=(5_000.0, 25_000.0),
)


def _payload(scenario=GRID[0]) -> CellPayload:
    result = run_scenario(scenario)
    return CellPayload(
        controller_name=result.controller_name,
        cycle_name=result.cycle_name,
        metrics=result.metrics,
        solver=result.solver,
        wall_s=0.25,
    )


class TestRoundTrip:
    def test_payload_roundtrip_is_exact(self, tmp_path):
        store = ExperimentStore(tmp_path)
        payload = _payload()
        store.put("k1", payload)
        loaded = store.get("k1")
        # floats survive the JSON encoding bit-for-bit (repr round-trip)
        assert loaded == payload
        assert store.hits == 1 and store.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path)
        assert store.get("nope") is None
        assert store.misses == 1

    def test_solver_stats_roundtrip(self, tmp_path):
        scenario = Scenario(
            methodology="otem",
            cycle="nycc",
            mpc_horizon=4,
            mpc_step_s=30.0,
            mpc_max_evals=10,
        )
        store = ExperimentStore(tmp_path)
        payload = _payload(scenario)
        assert payload.solver is not None
        store.put("otem", payload)
        assert store.get("otem").solver == payload.solver

    def test_trace_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_scenario(GRID[0])
        payload = _payload()
        store.put("with-trace", payload, trace=result.trace)
        trace = store.get_trace("with-trace")
        assert np.array_equal(trace.battery_temp_k, result.trace.battery_temp_k)
        assert np.array_equal(trace.time_s, result.trace.time_s)

    def test_get_trace_none_when_stored_without(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("no-trace", _payload())
        assert store.get_trace("no-trace") is None

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("k1", _payload())
        blob_root = tmp_path / BLOB_DIR
        leftovers = [
            p for p in blob_root.rglob("*") if ".tmp" in p.name
        ]
        assert leftovers == []

    def test_contains_and_len(self, tmp_path):
        store = ExperimentStore(tmp_path)
        assert not store.contains("k1") and len(store) == 0
        store.put("k1", _payload())
        assert store.contains("k1") and len(store) == 1


class TestCorruption:
    """Truncated/garbage blobs are quarantined and recomputed, never raised."""

    def test_truncated_blob_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("k1", _payload())
        blob = store._blob_path("k1")
        with open(blob, "r+b") as fh:
            fh.truncate(16)
        assert store.get("k1") is None
        assert store.quarantined == 1 and store.misses == 1
        assert not os.path.exists(blob)
        assert os.path.exists(
            os.path.join(tmp_path, QUARANTINE_DIR, "k1.npz")
        )
        assert not store.contains("k1")

    def test_garbage_blob_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("k1", _payload())
        with open(store._blob_path("k1"), "wb") as fh:
            fh.write(b"not an npz archive")
        assert store.get("k1") is None
        assert store.quarantined == 1

    def test_missing_blob_behind_index_row_quarantined(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("k1", _payload())
        os.remove(store._blob_path("k1"))
        assert store.get("k1") is None
        assert not store.contains("k1")

    def test_corrupt_cell_is_recomputed_by_run_batch(self, tmp_path):
        """The acceptance path: truncate a blob on disk, assert the cell is
        quarantined and recomputed rather than raising."""
        store = ExperimentStore(tmp_path)
        first = run_batch(GRID, store=store)
        assert first.ok and first.cache_misses == len(GRID)
        key = scenario_fingerprint(GRID[1], engine_backend="lockstep")
        with open(store._blob_path(key), "r+b") as fh:
            fh.truncate(10)
        rerun = run_batch(GRID, store=store)
        assert rerun.ok
        assert rerun.cache_hits == len(GRID) - 1
        assert rerun.cache_misses == 1
        assert store.quarantined == 1
        # the recompute landed back in the store
        final = run_batch(GRID, store=store)
        assert final.cache_hits == len(GRID)
        assert [c.metrics for c in final.cells] == [c.metrics for c in first.cells]


class TestSchemaInvalidation:
    """Mirrors the CACHE_SCHEMA tests of tests/sim/test_batch.py: the
    fingerprint embeds the schema, so a bump makes every old key unreachable."""

    def test_schema_bump_invalidates_old_entries(self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path)
        run_batch(GRID[:1], store=store)
        monkeypatch.setattr("repro.sim.batch.CACHE_SCHEMA", 99)
        stale = run_batch(GRID[:1], store=store)
        assert stale.cache_hits == 0 and stale.cache_misses == 1

    def test_backend_switch_never_serves_stale_rows(self, tmp_path):
        store = ExperimentStore(tmp_path)
        first = run_batch(GRID, store=store)  # auto: all lockstep
        assert first.cache_misses == len(GRID)
        forced = run_batch(GRID, store=store, execution="scalar")
        assert forced.cache_hits == 0 and forced.cache_misses == len(GRID)


class TestEviction:
    def test_lru_eviction_drops_oldest(self, tmp_path):
        store = ExperimentStore(tmp_path)
        payload = _payload()
        store.put("old", payload)
        store.put("newer", payload)
        store.get("old")  # refresh recency: "newer" is now the LRU victim
        per_blob = store.total_bytes() // 2
        dropped = store.evict(max_bytes=per_blob)
        assert dropped == 1
        assert store.contains("old") and not store.contains("newer")
        assert store.evicted == 1

    def test_byte_budget_auto_evicts_on_put(self, tmp_path):
        probe = ExperimentStore(tmp_path / "probe")
        probe.put("k", _payload())
        blob_bytes = probe.total_bytes()
        store = ExperimentStore(tmp_path / "real", max_bytes=2 * blob_bytes)
        for i in range(4):
            store.put(f"k{i}", _payload())
        assert len(store) <= 2
        assert store.contains("k3")  # the newest always survives
        assert store.total_bytes() <= 2 * blob_bytes

    def test_zero_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentStore(tmp_path, max_bytes=0)


class TestMigration:
    def test_pickle_cache_migrates_wholesale(self, tmp_path):
        cache = ResultCache(tmp_path / "pickles")
        run_batch(GRID, cache=cache, execution="scalar")
        store = ExperimentStore(tmp_path / "store")
        imported = store.migrate_pickle_cache(tmp_path / "pickles")
        assert imported == len(GRID)
        # the migrated entries serve the same sweep without recompute
        served = run_batch(GRID, store=store, execution="scalar")
        assert served.cache_hits == len(GRID)
        assert all(c.cached for c in served.cells)

    def test_corrupt_pickles_skipped(self, tmp_path):
        cache_dir = tmp_path / "pickles"
        cache = ResultCache(cache_dir)
        run_batch(GRID[:1], cache=cache, execution="scalar")
        (cache_dir / "deadbeef.pkl").write_bytes(b"junk")
        store = ExperimentStore(tmp_path / "store")
        assert store.migrate_pickle_cache(cache_dir) == 1

    def test_missing_cache_dir_is_empty_migration(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        assert store.migrate_pickle_cache(tmp_path / "no-such-dir") == 0


class TestRunBatchIntegration:
    def test_store_and_cache_are_mutually_exclusive(self, tmp_path):
        store = ExperimentStore(tmp_path)
        with pytest.raises(ValueError, match="store or cache"):
            run_batch(GRID[:1], store=store, cache=ResultCache(tmp_path))
        with pytest.raises(ValueError, match="store or cache"):
            run_batch(GRID[:1], store=store, cache_dir=tmp_path)

    def test_second_run_recomputes_nothing_and_rows_are_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion, with a recompute-counter spy: a sweep
        submitted twice returns byte-identical rows and the second run
        never enters a cell runner."""
        from repro.service.jobs import service_row

        store = ExperimentStore(tmp_path)
        grid = GRID + [
            Scenario(
                methodology="otem",
                cycle="nycc",
                mpc_horizon=4,
                mpc_step_s=30.0,
                mpc_max_evals=10,
            )
        ]
        first = run_batch(grid, store=store)
        assert first.ok and first.cache_misses == len(grid)

        compute_calls = {"scalar": 0, "lockstep": 0}
        real_execute = batch_mod._execute_cell
        real_lockstep = batch_mod.run_lockstep

        def spy_execute(scenario):
            compute_calls["scalar"] += 1
            return real_execute(scenario)

        def spy_lockstep(scenarios):
            compute_calls["lockstep"] += 1
            return real_lockstep(scenarios)

        monkeypatch.setattr(batch_mod, "_execute_cell", spy_execute)
        monkeypatch.setattr(batch_mod, "run_lockstep", spy_lockstep)

        second = run_batch(grid, store=store)
        assert compute_calls == {"scalar": 0, "lockstep": 0}
        assert second.cache_hits == len(grid) and second.cache_misses == 0

        rows_first = json.dumps(
            [service_row(c) for c in first.cells], sort_keys=True
        )
        rows_second = json.dumps(
            [service_row(c) for c in second.cells], sort_keys=True
        )
        assert rows_first.encode() == rows_second.encode()

    def test_store_counts_reported_per_batch(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_batch(GRID[:2], store=store)
        second = run_batch(GRID, store=store)
        assert second.cache_hits == 2 and second.cache_misses == 2


class TestSweepRecords:
    def test_sweep_record_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path)
        record = {"sweep_id": "abc", "status": "queued", "total": 4}
        store.put_sweep("abc", record)
        assert store.get_sweep("abc") == record
        record["status"] = "done"
        store.put_sweep("abc", record)
        assert store.get_sweep("abc")["status"] == "done"
        assert store.get_sweep("missing") is None

    def test_rows_roundtrip(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put_sweep("abc", {"sweep_id": "abc", "status": "done"})
        rows = [{"index": 0, "qloss_percent": 0.01}]
        store.put_rows("abc", rows)
        assert store.get_rows("abc") == rows
        assert store.get_rows("missing") is None

    def test_rows_require_known_sweep(self, tmp_path):
        store = ExperimentStore(tmp_path)
        with pytest.raises(KeyError):
            store.put_rows("nope", [])

    def test_list_sweeps_oldest_first(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put_sweep("a", {"sweep_id": "a", "status": "done"})
        store.put_sweep("b", {"sweep_id": "b", "status": "queued"})
        assert [r["sweep_id"] for r in store.list_sweeps()] == ["a", "b"]


class TestStats:
    def test_stats_shape(self, tmp_path):
        store = ExperimentStore(tmp_path)
        store.put("k1", _payload())
        store.get("k1")
        store.get("missing")
        stats = store.stats()
        assert stats.cells == 1
        assert stats.total_bytes > 0
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_hit_rate_zero_before_lookups(self, tmp_path):
        assert ExperimentStore(tmp_path).stats().hit_rate == 0.0


def test_fingerprint_compat_with_result_cache():
    """The store keys are the batch runner's fingerprints - identical to
    what the pickle cache uses, which is what makes migration lossless."""
    s = dataclasses.replace(GRID[0], perturb_seed=7)
    assert scenario_fingerprint(s) == scenario_fingerprint(s)
    assert scenario_fingerprint(s) != scenario_fingerprint(GRID[0])
