"""Ultracapacitor models (paper Section II-B, Eq. 6-9).

Public API
----------
``UltracapParams`` / ``bank_of_farads``
    Bank parameters; the paper sweeps total capacitance in
    {5,000; 10,000; 20,000; 25,000} F at a 16.2 V module rating (Maxwell
    BC-series economics, see DESIGN.md).
``UltracapBank``
    SoE state, voltage law Vcap = Vr sqrt(SoE/100), power transfer with
    current/power limits.
"""

from repro.ultracap.params import UltracapParams, bank_of_farads
from repro.ultracap.bank import UltracapBank, UltracapStepResult

__all__ = [
    "UltracapParams",
    "bank_of_farads",
    "UltracapBank",
    "UltracapStepResult",
]
