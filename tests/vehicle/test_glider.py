"""Road-load model tests."""

import numpy as np
import pytest

from repro.vehicle.glider import GRAVITY, Glider
from repro.vehicle.params import MODEL_S_LIKE, VehicleParams


@pytest.fixture()
def glider():
    return Glider(MODEL_S_LIKE)


class TestRollingForce:
    def test_zero_at_standstill(self, glider):
        assert glider.rolling_force(0.0) == 0.0

    def test_constant_when_moving(self, glider):
        f1 = glider.rolling_force(5.0)
        f2 = glider.rolling_force(30.0)
        assert f1 == pytest.approx(f2)

    def test_magnitude(self, glider):
        expected = 0.009 * 2100.0 * GRAVITY
        assert glider.rolling_force(10.0) == pytest.approx(expected)

    def test_grade_reduces_normal_force(self, glider):
        flat = glider.rolling_force(10.0, grade_rad=0.0)
        hill = glider.rolling_force(10.0, grade_rad=0.1)
        assert hill < flat


class TestAeroForce:
    def test_zero_at_standstill(self, glider):
        assert glider.aero_force(0.0) == 0.0

    def test_quadratic_in_speed(self, glider):
        assert glider.aero_force(20.0) == pytest.approx(4 * glider.aero_force(10.0))

    def test_magnitude_at_highway_speed(self, glider):
        # 0.5 * 1.2 * 0.24 * 2.34 * 30^2 ~ 303 N
        assert glider.aero_force(30.0) == pytest.approx(303.3, rel=0.01)


class TestGradeForce:
    def test_zero_on_flat(self, glider):
        assert glider.grade_force(0.0) == pytest.approx(0.0)

    def test_positive_uphill(self, glider):
        assert glider.grade_force(0.05) > 0

    def test_negative_downhill(self, glider):
        assert glider.grade_force(-0.05) < 0


class TestInertiaForce:
    def test_includes_rotating_mass_factor(self, glider):
        assert glider.inertia_force(1.0) == pytest.approx(1.05 * 2100.0)

    def test_negative_while_braking(self, glider):
        assert glider.inertia_force(-2.0) < 0


class TestWheelPower:
    def test_zero_at_standstill(self, glider):
        assert glider.wheel_power(0.0, 0.0) == 0.0

    def test_negative_under_hard_braking(self, glider):
        assert glider.wheel_power(20.0, -3.0) < 0

    def test_positive_cruising(self, glider):
        assert glider.wheel_power(30.0, 0.0) > 0

    def test_vectorized(self, glider):
        speeds = np.array([0.0, 10.0, 20.0])
        accels = np.zeros(3)
        out = glider.wheel_power(speeds, accels)
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[2] > out[1]

    def test_heavier_vehicle_needs_more_power(self):
        light = Glider(MODEL_S_LIKE)
        heavy = Glider(VehicleParams(mass_kg=3000.0))
        assert heavy.wheel_power(20.0, 1.0) > light.wheel_power(20.0, 1.0)
