"""Controller wrappers for robustness and failure-injection studies.

The paper assumes clean state measurements and a healthy cooling actuator.
These wrappers stress both assumptions without touching the wrapped
policy:

* :class:`NoisyObservations` - deterministic (seeded) Gaussian noise on
  the measured temperature and SoE before the policy sees them, modelling
  sensor error in the BMS.
* :class:`CoolingFailure` - the cooler actuator dies at a given route
  time; the policy's cooling commands are silently dropped afterwards,
  modelling a compressor/pump failure the policy is unaware of.

Both preserve the wrapped controller's ``architecture``/``uses_cooling``
declaration so the simulator builds the same plant.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.controllers.base import Controller, Decision, Observation
from repro.utils.validation import check_in_range, check_positive


class NoisyObservations:
    """Feed a policy noisy temperature / SoE / SoC measurements.

    Parameters
    ----------
    inner:
        The wrapped policy.
    temp_sigma_k:
        Standard deviation of the temperature measurement error [K]
        (applied to battery and coolant temperature independently).
    soe_sigma_percent / soc_sigma_percent:
        Standard deviations of the SoE / SoC measurement errors [%].
    seed:
        RNG seed; the noise sequence is deterministic per run.
    """

    def __init__(
        self,
        inner: Controller,
        temp_sigma_k: float = 1.0,
        soe_sigma_percent: float = 2.0,
        soc_sigma_percent: float = 1.0,
        seed: int = 0,
    ):
        check_in_range(temp_sigma_k, 0.0, 20.0, "temp_sigma_k")
        check_in_range(soe_sigma_percent, 0.0, 50.0, "soe_sigma_percent")
        check_in_range(soc_sigma_percent, 0.0, 50.0, "soc_sigma_percent")
        self._inner = inner
        self._temp_sigma = temp_sigma_k
        self._soe_sigma = soe_sigma_percent
        self._soc_sigma = soc_sigma_percent
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        """Wrapped name with a noise tag."""
        return f"{self._inner.name}+noise"

    @property
    def architecture(self):
        """Same plant as the wrapped policy."""
        return self._inner.architecture

    @property
    def uses_cooling(self) -> bool:
        """Same cooling declaration as the wrapped policy."""
        return self._inner.uses_cooling

    def control(self, obs: Observation) -> Decision:
        """Perturb the measured states, then delegate."""
        noisy = Observation(
            step_index=obs.step_index,
            time_s=obs.time_s,
            dt=obs.dt,
            power_request_w=obs.power_request_w,
            preview_w=obs.preview_w,
            battery_soc_percent=float(
                np.clip(
                    obs.battery_soc_percent + self._rng.normal(0, self._soc_sigma),
                    0.0,
                    100.0,
                )
            ),
            battery_temp_k=obs.battery_temp_k + self._rng.normal(0, self._temp_sigma),
            coolant_temp_k=obs.coolant_temp_k + self._rng.normal(0, self._temp_sigma),
            cap_soe_percent=float(
                np.clip(
                    obs.cap_soe_percent + self._rng.normal(0, self._soe_sigma),
                    0.0,
                    100.0,
                )
            ),
        )
        return self._inner.control(noisy)

    def reset(self):
        """Reset the wrapped policy and restart the noise sequence."""
        self._inner.reset()
        self._rng = np.random.default_rng(self._seed)


class CoolingFailure:
    """Kill the cooling actuator at ``fail_at_s`` seconds into the route.

    The wrapped policy keeps issuing cooling commands (it does not know
    about the failure); this wrapper drops them, which is what a failed
    compressor looks like from the plant side.  The pump is assumed dead
    too (no flow).
    """

    def __init__(self, inner: Controller, fail_at_s: float = 0.0):
        check_positive(fail_at_s + 1e-9, "fail_at_s")
        self._inner = inner
        self._fail_at = fail_at_s

    @property
    def name(self) -> str:
        """Wrapped name with a failure tag."""
        return f"{self._inner.name}+cooling-failure@{self._fail_at:.0f}s"

    @property
    def architecture(self):
        """Same plant as the wrapped policy."""
        return self._inner.architecture

    @property
    def uses_cooling(self) -> bool:
        """Same cooling declaration as the wrapped policy."""
        return self._inner.uses_cooling

    @property
    def failed(self) -> bool:
        """Whether the failure time has been passed in the current route."""
        return self._tripped

    _tripped = False

    def control(self, obs: Observation) -> Decision:
        """Delegate, then drop cooling commands after the failure time."""
        decision = self._inner.control(obs)
        if obs.time_s >= self._fail_at:
            self._tripped = True
            return replace(
                decision, cooling_active=False, inlet_temp_k=obs.coolant_temp_k
            )
        return decision

    def reset(self):
        """Reset the wrapped policy and re-arm the failure."""
        self._inner.reset()
        self._tripped = False
