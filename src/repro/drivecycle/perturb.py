"""Deterministic traffic-variation ensembles of a drive cycle.

Real drivers never trace a cycle exactly; robustness studies need an
ensemble of plausible variations.  :func:`perturbed` produces a variant of
a cycle by (seeded, reproducible) random modulation of three traffic-like
degrees of freedom:

* **speed scaling** - a slowly varying multiplicative factor (traffic
  density ebbing and flowing),
* **stop jitter** - existing stops stretched or shortened (lights),
* **micro-ripple** - small band-limited speed flutter.

The perturbation preserves the cycle's gross structure: starts and ends
stopped, non-negative speeds, accelerations bounded by a physical cap.
"""

from __future__ import annotations

import numpy as np

from repro.drivecycle.cycle import DriveCycle
from repro.utils.validation import check_in_range


def _smooth_noise(rng: np.random.Generator, n: int, period_s: int, dt: float) -> np.ndarray:
    """Band-limited unit-variance noise via coarse samples + interpolation."""
    knots = max(3, int(round(n * dt / period_s)) + 2)
    coarse = rng.standard_normal(knots)
    x_knots = np.linspace(0, n - 1, knots)
    return np.interp(np.arange(n), x_knots, coarse)


def perturbed(
    cycle: DriveCycle,
    seed: int,
    speed_scale_sigma: float = 0.06,
    stop_jitter_s: float = 8.0,
    ripple_sigma_mps: float = 0.25,
    max_accel_ms2: float = 4.0,
) -> DriveCycle:
    """A traffic-variation variant of ``cycle`` (deterministic per seed).

    Parameters
    ----------
    cycle:
        The base cycle.
    seed:
        Ensemble member index; the same seed always yields the same trace.
    speed_scale_sigma:
        Standard deviation of the slow multiplicative speed modulation.
    stop_jitter_s:
        Up to this many seconds added to (or removed from, where possible)
        each stopped interval.
    ripple_sigma_mps:
        Standard deviation of the micro-ripple [m/s].
    max_accel_ms2:
        Physical acceleration cap re-imposed after perturbation.
    """
    check_in_range(speed_scale_sigma, 0.0, 0.5, "speed_scale_sigma")
    check_in_range(stop_jitter_s, 0.0, 120.0, "stop_jitter_s")
    check_in_range(ripple_sigma_mps, 0.0, 5.0, "ripple_sigma_mps")
    rng = np.random.default_rng(seed)
    speed = cycle.speed_mps.copy()
    n = speed.size
    dt = cycle.dt

    # 1. slow multiplicative modulation
    scale = 1.0 + speed_scale_sigma * _smooth_noise(rng, n, period_s=120, dt=dt)
    speed = speed * np.clip(scale, 0.5, 1.5)

    # 2. stop jitter: rebuild the trace with stretched/compressed stops
    stopped = speed <= DriveCycle.STOP_SPEED_MPS
    pieces = []
    i = 0
    while i < n:
        j = i
        while j < n and stopped[j] == stopped[i]:
            j += 1
        segment = speed[i:j]
        if stopped[i] and i > 0 and j < n:
            delta = int(round(rng.uniform(-stop_jitter_s, stop_jitter_s) / dt))
            new_len = max(1, segment.size + delta)
            segment = np.zeros(new_len)
        pieces.append(segment)
        i = j
    speed = np.concatenate(pieces)

    # 3. micro-ripple on moving samples only
    ripple = ripple_sigma_mps * _smooth_noise(rng, speed.size, period_s=15, dt=dt)
    moving = speed > DriveCycle.STOP_SPEED_MPS
    speed = np.where(moving, speed + ripple, speed)

    # restore invariants: non-negative, bounded acceleration, stopped ends
    speed = np.clip(speed, 0.0, None)
    speed[0] = 0.0
    speed[-1] = 0.0
    cap = max_accel_ms2 * dt
    for k in range(1, speed.size):  # forward pass caps accelerations
        if speed[k] > speed[k - 1] + cap:
            speed[k] = speed[k - 1] + cap
    for k in range(speed.size - 2, -1, -1):  # backward pass caps decelerations
        if speed[k] > speed[k + 1] + cap:
            speed[k] = speed[k + 1] + cap

    return DriveCycle(f"{cycle.name}~{seed}", speed, dt)


def ensemble(cycle: DriveCycle, members: int, **kwargs) -> list:
    """``members`` deterministic variants of ``cycle`` (seeds 0..members-1)."""
    if members < 1:
        raise ValueError("members must be >= 1")
    return [perturbed(cycle, seed, **kwargs) for seed in range(members)]
