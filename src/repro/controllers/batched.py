"""Lockstep (struct-of-arrays) twins of the simulation controllers.

Each batched policy advances M scenario columns per call and mirrors its
scalar counterpart decision-for-decision: hysteresis latches become boolean
state arrays, mode selection becomes integer-code arrays, and every branch
is re-expressed as a mask over columns.  Because each column's state update
uses exactly the scalar expressions, a column of a lockstep run matches the
corresponding scalar run bitwise.

The four baselines (:data:`BATCHED_CONTROLLERS`) are closed-form per step.
:class:`BatchedOTEM` is the MPC twin: it replans every column's horizon in
one :class:`repro.core.mpc.MPCPlannerVec` wave, so OTEM ensembles ride the
lockstep engine too - provided every scenario runs the vectorized rollout
backend (a lockstep OTEM column is equivalent to the scalar engine with
``rollout_backend="vectorized"``, not to the scalar-backend reference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.base import Architecture
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.hees.dual import DualHEESVec


@dataclass(frozen=True)
class BatchDecision:
    """Vectorized :class:`repro.controllers.base.Decision`.

    Attributes
    ----------
    cap_bus_w:
        Hybrid architecture: per-column ultracap bus-power commands [W].
    dual_mode:
        Dual architecture: per-column switch codes
        (:attr:`repro.hees.dual.DualHEESVec.MODE_BATTERY` & co.).
    recharge_power_w:
        Dual architecture: per-column battery->bank recharge power [W].
    cooling_active:
        Per-column cooling loop engagement flags.
    inlet_temp_k:
        Commanded coolant inlet temperature [K].  A scalar for the
        baselines (they command the loop's full-cold inlet, uniform
        within a lockstep group because the coolant is a group key); a
        per-column array for :class:`BatchedOTEM`, whose MPC plans a
        different inlet per scenario.
    """

    cap_bus_w: np.ndarray
    dual_mode: np.ndarray
    recharge_power_w: np.ndarray
    cooling_active: np.ndarray
    inlet_temp_k: float | np.ndarray = 298.0


def _zeros_decision(m: int, **overrides) -> BatchDecision:
    base = dict(
        cap_bus_w=np.zeros(m),
        dual_mode=np.full(m, DualHEESVec.MODE_BATTERY, dtype=np.int64),
        recharge_power_w=np.zeros(m),
        cooling_active=np.zeros(m, dtype=bool),
    )
    base.update(overrides)
    return BatchDecision(**base)


class BatchedParallelPassive:
    """Lockstep twin of :class:`ParallelPassiveController` (no-op)."""

    name = "Parallel [15]"
    architecture = Architecture.PARALLEL
    uses_cooling = False

    def __init__(self):
        self._m = 0

    def reset(self, m: int) -> None:
        """Size the (stateless) policy for ``m`` columns."""
        self._m = m

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """No commands: the circuit does everything."""
        return _zeros_decision(self._m)


class BatchedCoolingOnly:
    """Lockstep twin of :class:`CoolingOnlyController`."""

    name = "Cooling [25]"
    architecture = Architecture.BATTERY_ONLY
    uses_cooling = True

    def __init__(
        self,
        temp_on_k: float = 299.15,
        temp_off_k: float = 296.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._on = temp_on_k
        self._off = temp_off_k
        self._coolant = coolant
        self._cooling = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Disengage every column's thermostat."""
        self._cooling = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Per-column hysteresis thermostat on battery temperature."""
        was_on = self._cooling
        turn_off = was_on & (battery_temp_k <= self._off)
        turn_on = ~was_on & (battery_temp_k >= self._on)
        self._cooling = (was_on & ~turn_off) | turn_on
        return _zeros_decision(
            len(was_on),
            cooling_active=self._cooling.copy(),
            inlet_temp_k=self._coolant.min_inlet_temp_k,
        )


class BatchedDualThreshold:
    """Lockstep twin of :class:`DualThresholdController`."""

    name = "Dual [16]"
    architecture = Architecture.DUAL
    uses_cooling = False

    def __init__(
        self,
        temp_switch_k: float = 307.15,
        temp_resume_k: float = 303.15,
        soe_floor_percent: float = 22.0,
        soe_target_percent: float = 95.0,
        recharge_power_w: float = 3_000.0,
        recharge_temp_max_k: float = 306.15,
    ):
        if temp_resume_k >= temp_switch_k:
            raise ValueError("temp_resume_k must be below temp_switch_k")
        if not 0.0 <= soe_floor_percent < soe_target_percent <= 100.0:
            raise ValueError("need 0 <= soe_floor < soe_target <= 100")
        self._t_switch = temp_switch_k
        self._t_resume = temp_resume_k
        self._soe_floor = soe_floor_percent
        self._soe_target = soe_target_percent
        self._recharge_w = recharge_power_w
        self._recharge_t_max = recharge_temp_max_k
        self._on_cap = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Return every column's switch to the battery position."""
        self._on_cap = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Per-column threshold switching with SoE guard and recharge."""
        was_on = self._on_cap
        leave = was_on & (
            (battery_temp_k <= self._t_resume)
            | (cap_soe_percent <= self._soe_floor)
        )
        enter = (
            ~was_on
            & (battery_temp_k >= self._t_switch)
            & (cap_soe_percent > self._soe_floor)
        )
        self._on_cap = (was_on & ~leave) | enter

        recharging = (
            ~self._on_cap
            & (cap_soe_percent < self._soe_target)
            & (battery_temp_k < self._recharge_t_max)
        )
        mode = np.where(
            self._on_cap,
            DualHEESVec.MODE_ULTRACAP,
            np.where(
                recharging, DualHEESVec.MODE_RECHARGE, DualHEESVec.MODE_BATTERY
            ),
        )
        recharge = np.where(recharging, self._recharge_w, 0.0)
        return _zeros_decision(
            len(was_on), dual_mode=mode, recharge_power_w=recharge
        )


class BatchedHybridHeuristic:
    """Lockstep twin of :class:`HybridHeuristicController`."""

    name = "Heuristic hybrid"
    architecture = Architecture.HYBRID
    uses_cooling = True

    def __init__(
        self,
        smoothing: float = 0.05,
        recharge_power_w: float = 6_000.0,
        soe_target_percent: float = 90.0,
        temp_on_k: float = 302.15,
        temp_off_k: float = 299.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._alpha = smoothing
        self._recharge_w = recharge_power_w
        self._soe_target = soe_target_percent
        self._t_on = temp_on_k
        self._t_off = temp_off_k
        self._coolant = coolant
        self._ema_w: np.ndarray | None = None
        self._cooling = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Clear every column's EMA and disengage the thermostats."""
        self._ema_w = None
        self._cooling = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Shave peaks above the EMA; thermostat the cooler, per column.

        All columns start the route together, so the scalar policy's
        first-call EMA seeding happens batch-wide on step 0.
        """
        if self._ema_w is None:
            self._ema_w = np.maximum(request_w, 0.0).astype(float)
        else:
            self._ema_w = self._ema_w + self._alpha * (request_w - self._ema_w)

        surplus = request_w - self._ema_w
        recharge_bus = -np.minimum(
            self._recharge_w, np.maximum(0.0, -surplus)
        )
        cap_bus = np.where(
            surplus > 0,
            surplus,
            np.where(cap_soe_percent < self._soe_target, recharge_bus, 0.0),
        )

        was_on = self._cooling
        turn_off = was_on & (battery_temp_k <= self._t_off)
        turn_on = ~was_on & (battery_temp_k >= self._t_on)
        self._cooling = (was_on & ~turn_off) | turn_on

        return _zeros_decision(
            len(was_on),
            cap_bus_w=cap_bus,
            cooling_active=self._cooling.copy(),
            inlet_temp_k=self._coolant.min_inlet_temp_k,
        )


class BatchedOTEM:
    """Lockstep twin of :class:`repro.core.otem.OTEMController`.

    Where the baseline twins are stateless formulas over columns, this one
    carries the full receding-horizon machinery: per-column prediction
    models (the bank energy may differ per scenario), a shared replan
    cadence, move blocking, and the per-step cooling mask - each mirroring
    the scalar controller expression-for-expression.  The S horizon
    problems of a replan wave are solved in lockstep by
    :class:`repro.core.mpc.MPCPlannerVec`, whose plans are equivalent to
    per-scenario ``MPCPlanner(rollout_backend="vectorized")`` solves; a
    column of a lockstep OTEM run therefore matches the scalar engine
    running that scenario with the vectorized rollout backend.

    Unlike the baseline twins, the MPC needs route context before the
    step loop: call :meth:`begin_route` with the group's (zero-padded)
    power matrix, then :meth:`control_mpc` once per step.
    """

    name = "OTEM"
    architecture = Architecture.HYBRID
    uses_cooling = True
    #: engine marker: this twin takes the full state via control_mpc()
    is_mpc = True

    @classmethod
    def from_scenarios(cls, scenarios) -> "BatchedOTEM":
        """Build the twin for a lockstep group of OTEM scenarios.

        Every scenario contributes its own prediction model (its bank
        energy); the solver shape (horizon, step, budget, weights) is
        shared - the lockstep grouping key guarantees it.
        """
        # imported here: repro.core pulls in repro.sim, which circles back
        # to this module through the lockstep engine
        from repro.battery.pack import BatteryPack
        from repro.core.mpc import MPCPlannerVec
        from repro.core.rollout import PredictionModel
        from repro.hees.hybrid import default_battery_converter, default_cap_converter
        from repro.ultracap.bank import UltracapBank

        first = scenarios[0]
        models = []
        for s in scenarios:
            cap_params = s.cap_params()
            # converters identical to the plant's defaults so predictions
            # match - same probes the scalar OTEMController builds
            pack_probe = BatteryPack(s.pack)
            bank_probe = UltracapBank(cap_params)
            models.append(
                PredictionModel(
                    s.pack,
                    cap_params,
                    s.coolant,
                    default_battery_converter(pack_probe),
                    default_cap_converter(bank_probe),
                    s.weights,
                )
            )
        planner = MPCPlannerVec(
            models,
            horizon=first.mpc_horizon,
            step_s=first.mpc_step_s,
            max_function_evals=first.mpc_max_evals,
        )
        return cls(planner)

    def __init__(self, planner: MPCPlannerVec):
        self._planner = planner
        self._m = planner.scenarios
        self._power_ext: np.ndarray | None = None
        self._dt = 0.0
        self._per_bin = 1
        self._needed = 0
        self._preview_steps = 0
        self._steps_per_replan = 1
        self._plan_k = -1
        self._cap0: np.ndarray | None = None
        self._inlet0: np.ndarray | None = None

    @property
    def planner(self) -> MPCPlannerVec:
        """The underlying lockstep MPC planner."""
        return self._planner

    def solver_stats(self) -> tuple:
        """Per-column :class:`repro.core.mpc.SolverStats`, input order."""
        return self._planner.stats

    def reset(self, m: int) -> None:
        """Forget every column's plan and warm start (fresh route)."""
        if m != self._m:
            raise ValueError(
                f"BatchedOTEM was built for {self._m} scenarios, got {m}"
            )
        self._planner.reset()
        self._power_ext = None
        self._plan_k = -1
        self._cap0 = None
        self._inlet0 = None

    def begin_route(
        self,
        power: np.ndarray,
        dt: float,
        lengths: np.ndarray | None = None,
    ) -> None:
        """Store the route's power matrix and derive the replan geometry.

        Parameters
        ----------
        power:
            ``(T, M)`` per-column power requests [W], zero-padded to the
            longest route (the lockstep engine's layout).  Zero padding
            matches ``PowerRequest.window``'s past-the-end behaviour, so
            ragged columns see exactly the scalar preview.
        dt:
            Plant sample period [s].
        lengths:
            Per-column true route lengths [steps] (default: ``T`` for
            all).  A column replans only while ``step < length`` - the
            scalar engine stops at its own route end, so solves in the
            padded tail would diverge from the per-scenario reference.
        """
        if power.ndim != 2 or power.shape[1] != self._m:
            raise ValueError(f"power must be (T, {self._m}), got {power.shape}")
        t_max = power.shape[0]
        if lengths is None:
            self._lengths = np.full(self._m, t_max)
        else:
            self._lengths = np.asarray(lengths, dtype=int)
            if self._lengths.shape != (self._m,):
                raise ValueError(
                    f"lengths must be ({self._m},), got {self._lengths.shape}"
                )
        n = self._planner.horizon
        step_s = self._planner.step_s
        self._dt = dt
        self._per_bin = max(1, int(round(step_s / dt)))
        self._needed = self._per_bin * n
        self._preview_steps = int(np.ceil(n * step_s / dt))
        self._steps_per_replan = max(1, int(round(step_s / dt)))
        # zero-extend so a preview slice near the route end never runs
        # short (mirrors PowerRequest.window + _aggregate_preview padding)
        ext = np.zeros((t_max + self._preview_steps, self._m))
        ext[:t_max] = power
        self._power_ext = ext
        self._plan_k = -1
        self._cap0 = None
        self._inlet0 = None

    def control_mpc(
        self,
        step_index: int,
        battery_temp_k: np.ndarray,
        coolant_temp_k: np.ndarray,
        soc_percent: np.ndarray,
        soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Receding-horizon control with move blocking, all columns at once.

        Mirrors :meth:`repro.core.otem.OTEMController.control`: replan on
        the shared cadence, hold each column's first-step commands until
        the next replan, and re-evaluate the cooling mask *every* step
        against the current coolant temperature.
        """
        if self._power_ext is None:
            raise RuntimeError("call begin_route() before control_mpc()")
        m = self._m
        n = self._planner.horizon
        due = (
            self._cap0 is None
            or (step_index - self._plan_k) >= self._steps_per_replan
        )
        # ragged groups: a column past its own route end keeps its stale
        # plan (those trace rows are truncated) so its solve sequence
        # matches the scalar engine's exactly
        active = np.flatnonzero(step_index < self._lengths)
        if due and active.size:
            if self._cap0 is None:
                self._cap0 = np.zeros(m)
                self._inlet0 = np.asarray(coolant_temp_k, dtype=float).copy()
            # coarse preview: window -> pad/truncate to per_bin*n -> bin
            # means.  The (m_active, n, per_bin) layout reduces the
            # innermost contiguous axis, the same pairwise summation the
            # scalar (n, per_bin) mean performs per element.
            span = min(self._needed, self._preview_steps)
            fine = np.zeros((active.size, self._needed))
            window = self._power_ext[step_index : step_index + span]
            fine[:, :span] = window[:, active].T
            coarse = fine.reshape(active.size, n, self._per_bin).mean(axis=2)
            states = np.column_stack(
                [battery_temp_k, coolant_temp_k, soc_percent, soe_percent]
            )[active]
            plans = self._planner.plan_batch(states, coarse, indices=active)
            self._cap0[active] = [float(p.cap_bus_w[0]) for p in plans]
            self._inlet0[active] = [float(p.inlet_temp_k[0]) for p in plans]
            self._plan_k = step_index

        # cooling engages only where the plan asks for a colder inlet; a
        # hair below T_c means "pump only" (per column, per step)
        cooling = self._inlet0 < coolant_temp_k - 0.05
        inlet = np.where(cooling, self._inlet0, coolant_temp_k)
        return BatchDecision(
            cap_bus_w=self._cap0.copy(),
            dual_mode=np.full(m, DualHEESVec.MODE_BATTERY, dtype=np.int64),
            recharge_power_w=np.zeros(m),
            cooling_active=np.ones(m, dtype=bool),
            inlet_temp_k=inlet,
        )


#: methodology name -> batched policy factory (baselines only)
BATCHED_CONTROLLERS = {
    "parallel": lambda coolant: BatchedParallelPassive(),
    "cooling": lambda coolant: BatchedCoolingOnly(coolant=coolant),
    "dual": lambda coolant: BatchedDualThreshold(),
    "heuristic": lambda coolant: BatchedHybridHeuristic(coolant=coolant),
}


def build_batched_controller(methodology: str, coolant: CoolantParams):
    """Instantiate the batched policy for a baseline methodology."""
    try:
        factory = BATCHED_CONTROLLERS[methodology]
    except KeyError:
        raise ValueError(
            f"no batched policy for methodology {methodology!r}; "
            f"lockstep supports {sorted(BATCHED_CONTROLLERS)}"
        ) from None
    return factory(coolant)
