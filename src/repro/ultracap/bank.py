"""Ultracapacitor bank state and stepping (Eq. 6-9).

The bank tracks State-of-Energy (SoE); voltage follows
``Vcap = V_r sqrt(SoE/100)`` (Eq. 8) and energy integrates
``Vcap * Icap`` (Eq. 9).  Power transfer is limited by the rated power
(constraint C7) and by the C5 SoE window - a depleted bank delivers
nothing, a full bank accepts nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ultracap.params import UltracapParams
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class UltracapStepResult:
    """Outcome of one step of the bank.

    Attributes
    ----------
    power_w:
        Power actually transferred at the bank terminals [W]
        (positive = discharge).
    current_a:
        Bank current [A] at the step's mean voltage.
    energy_j:
        Energy removed from the bank this step [J]; this is the ``dE_cap``
        of the paper's Eq. 19 (negative while recharging).
    clipped:
        True when a power or SoE limit reduced the transfer.
    """

    power_w: float
    current_a: float
    energy_j: float
    clipped: bool


class UltracapBank:
    """Ultracapacitor bank with SoE state.

    Parameters
    ----------
    params:
        Bank parameters.
    initial_soe_percent:
        Starting SoE [%] (Algorithm 1 initializes at 100).
    """

    def __init__(self, params: UltracapParams, initial_soe_percent: float = 100.0):
        check_in_range(initial_soe_percent, 0.0, 100.0, "initial_soe_percent")
        self._p = params
        self._soe = float(initial_soe_percent)

    @property
    def params(self) -> UltracapParams:
        """Bank parameters in use."""
        return self._p

    @property
    def soe_percent(self) -> float:
        """State of energy [%]."""
        return self._soe

    @property
    def energy_j(self) -> float:
        """Stored energy [J]."""
        return self._soe / 100.0 * self._p.energy_capacity_j

    def voltage(self, soe_percent: float | None = None) -> float:
        """Terminal voltage Vcap [V] (Eq. 8) at the given (or current) SoE."""
        soe = self._soe if soe_percent is None else soe_percent
        return self._p.rated_voltage_v * float(np.sqrt(max(soe, 0.0) / 100.0))

    def headroom_j(self) -> float:
        """Energy the bank can still absorb before hitting SoE-max [J]."""
        return (
            max(0.0, self._p.soe_max_percent - self._soe)
            / 100.0
            * self._p.energy_capacity_j
        )

    def available_j(self) -> float:
        """Energy deliverable before the C5 floor [J] (management view).

        Zero (not negative) when the bank already sits below the floor -
        a below-floor bank must never turn a discharge request into a
        phantom charge.
        """
        return (
            max(0.0, self._soe - self._p.soe_min_percent)
            / 100.0
            * self._p.energy_capacity_j
        )

    def reserve_j(self) -> float:
        """Emergency energy between the C5 floor and the hard floor [J]."""
        floor = min(self._soe, self._p.soe_min_percent)
        return (
            max(0.0, floor - self._p.soe_hard_min_percent)
            / 100.0
            * self._p.energy_capacity_j
        )

    def max_discharge_power_w(self, dt: float) -> float:
        """Largest sustainable discharge power for a step of ``dt`` [W]."""
        return min(self._p.max_power_w, self.available_j() / dt if dt > 0 else 0.0)

    def max_charge_power_w(self, dt: float) -> float:
        """Largest sustainable charge power for a step of ``dt`` [W] (positive)."""
        return min(self._p.max_power_w, self.headroom_j() / dt if dt > 0 else 0.0)

    def apply_power(
        self, power_w: float, dt: float, tap_reserve: bool = False
    ) -> UltracapStepResult:
        """Transfer ``power_w`` for ``dt`` seconds (positive = discharge).

        The transfer is clipped at the rated power (C7) and at the SoE
        window (C5).  Energy bookkeeping uses Eq. 9; the bank's small series
        resistance is neglected here as in the paper.

        ``tap_reserve`` lets a discharge dip below the C5 floor down to the
        physical hard floor - the emergency path the hybrid plant uses so a
        management constraint never starves the EV load.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self._p
        requested = power_w
        power = float(np.clip(power_w, -p.max_power_w, p.max_power_w))
        if power > 0:
            deliverable = self.available_j()
            if tap_reserve:
                deliverable += self.reserve_j()
            power = min(power, deliverable / dt)
        elif power < 0:
            power = -min(-power, self.headroom_j() / dt)
        energy = power * dt
        new_energy_j = self.energy_j - energy
        mean_voltage = 0.5 * (
            self.voltage() + self.voltage(100.0 * new_energy_j / p.energy_capacity_j)
        )
        current = power / mean_voltage if mean_voltage > 1e-9 else 0.0
        self._soe = 100.0 * new_energy_j / p.energy_capacity_j
        return UltracapStepResult(
            power_w=power,
            current_a=current,
            energy_j=energy,
            clipped=abs(power - requested) > 1e-9,
        )

    def reset(self, soe_percent: float = 100.0):
        """Restore initial conditions."""
        check_in_range(soe_percent, 0.0, 100.0, "soe_percent")
        self._soe = float(soe_percent)
