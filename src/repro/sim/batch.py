"""Parallel batch execution of scenario grids, with a result cache.

Every sweep in the evaluation - Table I's bank sizes, the ambient
temperature extension, the Monte-Carlo robustness ensemble - is an
embarrassingly parallel grid of independent :class:`~repro.sim.scenario.
Scenario` cells.  :func:`run_batch` fans such a grid out across worker
processes and aggregates the per-cell :class:`~repro.sim.metrics.
SummaryMetrics` into a :class:`BatchResult`:

* **deterministic ordering** - cell ``i`` of the result is always scenario
  ``i`` of the input, regardless of which worker finished first;
* **crash isolation** - a diverging solve (or any exception) fails *that
  cell* (``cell.error``) instead of the sweep;
* **per-scenario timeout** - a best-effort wall-clock budget per cell
  (a cell that exceeds it is marked failed and abandoned);
* **content-addressed caching** - an on-disk store keyed by a fingerprint
  of the full scenario (controller, pack, vehicle, coolant, weights, MPC
  knobs) plus the engine backend assigned to the cell, so repeated sweeps
  and CI re-runs skip already-computed cells; pass ``store=`` (a
  :class:`repro.store.ExperimentStore`) instead of ``cache=`` for the
  durable SQLite+npz variant the sweep service resumes from;
* **lockstep vectorization** - cells that share an architecture (and,
  for OTEM, a solver shape) are batched onto the struct-of-arrays engine
  (:mod:`repro.sim.engine_vec`), advancing the whole group per NumPy step
  instead of per-cell Python loops.  This covers the four baselines *and*
  OTEM cells running the vectorized rollout backend, whose replan waves
  are solved in lockstep by :class:`repro.core.mpc.MPCPlannerVec`;
  scalar-backend OTEM cells and singleton groups stay on the scalar
  engine (``execution="auto"``).

Serial execution (``workers=0``) goes through exactly the same cell
runner, so parallel results are bitwise identical to serial ones (see
tests/sim/test_batch.py).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.mpc import SolverStats
from repro.sim.engine_vec import lockstep_key, lockstep_supported, run_lockstep
from repro.sim.metrics import SummaryMetrics
from repro.sim.scenario import Scenario, run_scenario

#: Bump when the cached payload layout or the simulation semantics change
#: in a way that must invalidate existing cache entries.
#: 2: SolverStats gained ``backend``; Scenario gained ``rollout_backend``.
#: 3: CellPayload gained ``engine_backend``; fingerprints include the
#:    engine backend assigned to the cell (lockstep engine added).
#: 4: OTEM cells may be lockstep-assigned (batched MPC); SolverStats
#:    gained warm-start winner attribution (``wins_*``).
CACHE_SCHEMA = 4

#: Accepted ``run_batch(execution=...)`` modes.
EXECUTION_MODES = ("auto", "lockstep", "scalar")

#: Default cache directory (created on first use; gitignored).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Error string marking cells skipped by a :func:`run_batch` ``cancel``
#: hook (the sweep service matches on the ``"cancelled"`` prefix).
_CANCELLED_ERROR = "cancelled: sweep cancelled before this cell ran"


# ---------------------------------------------------------------------- #
# fingerprinting


def scenario_fingerprint(scenario: Scenario, engine_backend: str = "scalar") -> str:
    """Content hash of everything that determines a scenario's result.

    Recursively serializes the scenario's dataclass tree (pack, vehicle,
    coolant, weights, MPC knobs included) into canonical JSON and hashes
    it together with the cache schema, the package version, and the engine
    backend the cell is assigned to, so any parameter change - however
    deep - yields a different key.  The backend is part of the key because
    lockstep results match scalar ones only to ~1e-15 relative (transcen-
    dental SIMD kernels), and a cache must never blur which engine
    produced a number.  Assignment is decided from the full input grid
    *before* any cache lookup, so fingerprints are deterministic for a
    given ``run_batch`` call regardless of cache state.
    """
    import repro  # late: repro/__init__ may still be executing at import time

    payload = {
        "schema": CACHE_SCHEMA,
        "version": repro.__version__,
        "engine_backend": engine_backend,
        "scenario": dataclasses.asdict(scenario),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------- #
# the per-cell payload (what workers return and the cache stores)


@dataclass(frozen=True)
class CellPayload:
    """Picklable result of one scenario run (no trace - summaries only).

    ``engine_backend`` records which engine computed the cell
    (``"scalar"`` or ``"lockstep"``); lockstep cells report their share of
    the group wall time (group wall / group size) as ``wall_s``.
    """

    controller_name: str
    cycle_name: str
    metrics: SummaryMetrics
    solver: SolverStats | None
    wall_s: float
    engine_backend: str = "scalar"


@dataclass(frozen=True)
class BatchCell:
    """One grid cell of a :class:`BatchResult`.

    ``metrics`` is ``None`` exactly when ``error`` is set; ``cached`` marks
    cells served from the result cache (their ``wall_s`` is the original
    compute time, not the lookup time).  ``engine_backend`` names the
    engine that computed the cell (``"scalar"`` or ``"lockstep"``).
    """

    index: int
    scenario: Scenario
    metrics: SummaryMetrics | None = None
    solver: SolverStats | None = None
    controller_name: str = ""
    cycle_name: str = ""
    wall_s: float = 0.0
    cached: bool = False
    error: str | None = None
    engine_backend: str = "scalar"

    @property
    def ok(self) -> bool:
        """Whether the cell computed successfully."""
        return self.error is None


# ---------------------------------------------------------------------- #
# the cache


class ResultCache:
    """Content-addressed on-disk store of :class:`CellPayload` pickles.

    One file per fingerprint under ``directory``; corrupt or unreadable
    entries count as misses and are overwritten.  Instances track their
    own hit/miss counters (reported per batch).
    """

    def __init__(self, directory: str | os.PathLike = DEFAULT_CACHE_DIR):
        self._dir = os.fspath(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> str:
        """Root directory of the store."""
        return self._dir

    def _path(self, key: str) -> str:
        return os.path.join(self._dir, f"{key}.pkl")

    def get(self, key: str) -> CellPayload | None:
        """Look a payload up; ``None`` (and a miss) when absent/corrupt."""
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(payload, CellPayload):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: CellPayload) -> None:
        """Store a payload (atomic rename so readers never see partials)."""
        os.makedirs(self._dir, exist_ok=True)
        tmp = self._path(key) + f".tmp{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self._path(key))


# ---------------------------------------------------------------------- #
# the runner


def _execute_cell(scenario: Scenario) -> CellPayload:
    """Run one scenario and reduce it to a picklable payload.

    Module-level so worker processes can import it under any start method.
    """
    start = time.perf_counter()
    result = run_scenario(scenario)
    return CellPayload(
        controller_name=result.controller_name,
        cycle_name=result.cycle_name,
        metrics=result.metrics,
        solver=result.solver,
        wall_s=time.perf_counter() - start,
    )


def _guarded_cell(scenario: Scenario) -> tuple[CellPayload | None, str | None]:
    """Crash-isolation wrapper: exceptions become an error string."""
    try:
        return _execute_cell(scenario), None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return None, f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class BatchResult:
    """Aggregated output of one :func:`run_batch` call.

    ``cells`` is index-aligned with the input scenarios.  The tidy-row
    accessors feed :mod:`repro.analysis` and the perf-trajectory JSON.
    """

    cells: tuple
    wall_s: float
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    #: How the cells actually executed: ``"serial"`` (requested),
    #: ``"process-pool"``, or ``"serial-fallback"`` (parallel requested but
    #: degraded because the host has a single CPU).  When the lockstep
    #: engine handled cells, the string is ``"lockstep"`` (every cell
    #: lockstep-assigned) or a ``"lockstep+<scalar mode>"`` composition
    #: (mixed grids, or lockstep groups that fell back to scalar cells).
    methodology: str = "serial"

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def ok(self) -> bool:
        """Whether every cell computed successfully."""
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> tuple:
        """The failed cells (empty on a clean sweep)."""
        return tuple(cell for cell in self.cells if not cell.ok)

    def metrics(self) -> list:
        """Index-aligned ``SummaryMetrics`` list (``None`` for failures)."""
        return [cell.metrics for cell in self.cells]

    def raise_on_failure(self) -> "BatchResult":
        """Raise ``RuntimeError`` listing failed cells, else return self."""
        if not self.ok:
            lines = [
                f"  cell {c.index} ({c.scenario.methodology}/{c.scenario.cycle}): "
                f"{c.error}"
                for c in self.failures
            ]
            raise RuntimeError(
                f"{len(self.failures)} of {len(self)} batch cells failed:\n"
                + "\n".join(lines)
            )
        return self

    def rows(self) -> list:
        """Tidy rows (one dict per cell): scenario knobs + metrics + stats.

        The flat format :mod:`repro.analysis.tables`/``figures`` and the
        ``BENCH_*.json`` trajectory files consume.
        """
        return [cell_row(cell) for cell in self.cells]

    def bench_payload(self) -> dict:
        """The ``BENCH_batch.json`` fragment describing this run."""
        return {
            "cells": len(self.cells),
            "failures": len(self.failures),
            "wall_s": self.wall_s,
            "workers": self.workers,
            "methodology": self.methodology,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "rows": self.rows(),
        }


def cell_row(cell: BatchCell) -> dict:
    """One tidy row for ``cell``: scenario knobs + metrics + solver stats.

    Module-level so incremental consumers (the sweep service's progress
    callback) can build rows cell-by-cell as a batch completes, instead of
    waiting for the whole :class:`BatchResult`.
    """
    s = cell.scenario
    row = {
        "index": cell.index,
        "methodology": s.methodology,
        "cycle": s.cycle,
        "repeat": s.repeat,
        "ucap_farads": s.ucap_farads,
        "initial_temp_k": s.initial_temp_k,
        "rollout_backend": s.rollout_backend,
        "perturb_seed": s.perturb_seed,
        "controller": cell.controller_name,
        "wall_s": cell.wall_s,
        "cached": cell.cached,
        "engine_backend": cell.engine_backend,
        "error": cell.error,
    }
    if cell.metrics is not None:
        for f in dataclasses.fields(cell.metrics):
            row[f.name] = getattr(cell.metrics, f.name)
    if cell.solver is not None:
        row["solver_solves"] = cell.solver.solves
        row["solver_iterations"] = cell.solver.total_iterations
        # None (JSON null), never NaN: a controller that never replanned
        # leaves last_cost at its NaN sentinel, which json.dumps emits as
        # bare `NaN` - invalid JSON to strict consumers.
        row["solver_last_cost"] = cell.solver.last_cost_or_none
        # pre-schema-2 pickles lack the field
        row["solver_backend"] = getattr(cell.solver, "backend", "scalar")
        # winner attribution (schema 4+; getattr for old pickles):
        # which start seed won each replan race
        row["solver_wins_warm"] = getattr(cell.solver, "wins_warm", 0)
        row["solver_wins_neutral"] = getattr(cell.solver, "wins_neutral", 0)
        row["solver_wins_full_cool"] = getattr(
            cell.solver, "wins_full_cool", 0
        )
    return row


def _lockstep_assignment(scenarios: list, execution: str) -> set:
    """Indices of the cells the lockstep engine should compute.

    ``"scalar"`` assigns none; ``"lockstep"`` assigns every supported cell;
    ``"auto"`` assigns supported cells whose group (architecture, and for
    OTEM the full solver shape - see :func:`~repro.sim.engine_vec.
    lockstep_key`) has at least two members - a singleton group gains
    nothing from vectorization, so it stays on the scalar engine.  OTEM
    cells are supported when they run the vectorized rollout backend;
    scalar-backend MPC cells always stay scalar (routing them would
    silently switch solver backends).  The decision uses only the input
    grid, never the cache state, so the per-cell fingerprints are
    deterministic.
    """
    if execution == "scalar":
        return set()
    supported = [i for i, s in enumerate(scenarios) if lockstep_supported(s)]
    if execution == "lockstep":
        return set(supported)
    groups: dict = {}
    for i in supported:
        groups.setdefault(lockstep_key(scenarios[i]), []).append(i)
    return {i for idx in groups.values() if len(idx) >= 2 for i in idx}


def run_batch(
    scenarios: Iterable[Scenario] | Sequence[Scenario],
    workers: int = 0,
    cache: ResultCache | None = None,
    cache_dir: str | os.PathLike | None = None,
    store=None,
    timeout_s: float | None = None,
    on_cell: Callable[[BatchCell], None] | None = None,
    on_cell_done: Callable[[BatchCell], None] | None = None,
    cancel: Callable[[], bool] | None = None,
    execution: str = "auto",
) -> BatchResult:
    """Run a grid of scenarios, optionally in parallel and cached.

    Parameters
    ----------
    scenarios:
        The grid, in the order results should come back.
    workers:
        ``0`` or ``1`` runs serially in-process; ``n >= 2`` fans out over a
        ``ProcessPoolExecutor`` with ``n`` workers.  Parallel cells produce
        bitwise-identical ``SummaryMetrics`` to serial ones.  On a
        single-CPU host a parallel request auto-degrades to in-process
        serial execution (pool spawn overhead cannot pay off there - see
        the sub-1.0 "parallel_speedup" it produced in BENCH_batch.json);
        the degradation is visible as ``BatchResult.methodology ==
        "serial-fallback"``.  Workers only ever compute scalar-assigned
        cells; lockstep groups run in-process (they are one NumPy loop).
    cache / cache_dir:
        Pass a :class:`ResultCache` (or just a directory) to skip cells
        whose fingerprint is already stored and to store fresh results.
        ``None`` (default) disables caching.
    store:
        A :class:`repro.store.ExperimentStore` (or anything with the same
        ``get``/``put``/``hits``/``misses`` surface) used exactly like
        ``cache`` but durable and queryable: previously computed cells are
        skipped across processes, sessions, and service restarts.
        Mutually exclusive with ``cache``/``cache_dir``.
    timeout_s:
        Best-effort per-cell wall-clock budget (scalar pool mode only): a
        cell still pending that long after its turn comes up is marked
        failed with a timeout error and abandoned.
    on_cell / on_cell_done:
        Progress callback invoked with each finished :class:`BatchCell`
        in completion order (serial mode: submission order; lockstep
        groups report their cells when the group completes).
        ``on_cell_done`` is the canonical name; ``on_cell`` remains as a
        back-compat alias and at most one may be passed.
    cancel:
        Cooperative cancellation hook: a zero-argument callable polled
        before each pending cell (and each lockstep group) starts.  Once
        it returns True, every not-yet-computed cell is marked failed
        with a ``"cancelled: ..."`` error instead of being computed;
        already-finished cells and cache hits are unaffected.
    execution:
        Engine selection: ``"auto"`` (default) routes supported cells
        with at least one group-mate onto the lockstep struct-of-arrays
        engine - the four baselines grouped by architecture, and OTEM
        cells running the vectorized rollout backend grouped by solver
        shape (MPC ensembles replan in lockstep waves) - and everything
        else onto the scalar engine; ``"lockstep"`` forces every
        supported cell onto the lockstep engine; ``"scalar"`` forces the
        scalar engine for all cells (pre-lockstep behavior).  A lockstep
        group that fails re-routes its cells to the scalar path
        one-by-one, preserving crash isolation.

    Returns
    -------
    BatchResult
        Cells index-aligned with ``scenarios``.
    """
    scenarios = list(scenarios)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if execution not in EXECUTION_MODES:
        raise ValueError(
            f"unknown execution mode {execution!r}; choose from {EXECUTION_MODES}"
        )
    if on_cell is not None and on_cell_done is not None:
        raise ValueError("pass on_cell_done or its alias on_cell, not both")
    on_cell_done = on_cell_done if on_cell_done is not None else on_cell
    if store is not None and (cache is not None or cache_dir is not None):
        raise ValueError("pass store or cache/cache_dir, not both")
    scalar_methodology = "serial"
    if workers >= 2:
        if (os.cpu_count() or 1) <= 1:
            workers = 1
            scalar_methodology = "serial-fallback"
        else:
            scalar_methodology = "process-pool"
    if store is not None:
        cache = store
    elif cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    hits0 = cache.hits if cache else 0
    misses0 = cache.misses if cache else 0
    cancelled = cancel if cancel is not None else (lambda: False)

    lockstep_cells = _lockstep_assignment(scenarios, execution)

    def backend_of(index: int) -> str:
        return "lockstep" if index in lockstep_cells else "scalar"

    start = time.perf_counter()
    cells: list = [None] * len(scenarios)

    def finish(index: int, cell: BatchCell) -> None:
        cells[index] = cell
        if on_cell_done is not None:
            on_cell_done(cell)

    def from_payload(
        index: int, payload: CellPayload, cached: bool
    ) -> BatchCell:
        return BatchCell(
            index=index,
            scenario=scenarios[index],
            metrics=payload.metrics,
            solver=payload.solver,
            controller_name=payload.controller_name,
            cycle_name=payload.cycle_name,
            wall_s=payload.wall_s,
            cached=cached,
            engine_backend=getattr(payload, "engine_backend", "scalar"),
        )

    # serve cache hits first; collect the cells that actually need compute
    pending: list = []
    keys: dict = {}
    for i, scenario in enumerate(scenarios):
        if cache is not None:
            keys[i] = scenario_fingerprint(scenario, engine_backend=backend_of(i))
            payload = cache.get(keys[i])
            if payload is not None:
                finish(i, from_payload(i, payload, cached=True))
                continue
        pending.append(i)

    def complete(index: int, payload: CellPayload | None, error: str | None):
        if payload is None:
            finish(
                index,
                BatchCell(index=index, scenario=scenarios[index], error=error),
            )
            return
        if cache is not None:
            cache.put(keys[index], payload)
        finish(index, from_payload(index, payload, cached=False))

    lock_pending = [i for i in pending if i in lockstep_cells]
    scalar_pending = [i for i in pending if i not in lockstep_cells]

    # lockstep groups first (in-process, one NumPy loop per group); a group
    # that fails re-routes its cells to the scalar path below, where each
    # cell is crash-isolated individually
    if lock_pending:
        groups: dict = {}
        for i in lock_pending:
            groups.setdefault(lockstep_key(scenarios[i]), []).append(i)
        for indices in groups.values():
            if cancelled():
                for i in indices:
                    complete(i, None, _CANCELLED_ERROR)
                continue
            t0 = time.perf_counter()
            try:
                results = run_lockstep([scenarios[i] for i in indices])
            except Exception:  # noqa: BLE001 - fall back, isolate per cell
                for i in indices:
                    lockstep_cells.discard(i)
                    if cache is not None:
                        keys[i] = scenario_fingerprint(
                            scenarios[i], engine_backend="scalar"
                        )
                        payload = cache.get(keys[i])
                        if payload is not None:
                            finish(i, from_payload(i, payload, cached=True))
                            continue
                    scalar_pending.append(i)
                continue
            per_cell_s = (time.perf_counter() - t0) / len(indices)
            for i, result in zip(indices, results):
                complete(
                    i,
                    CellPayload(
                        controller_name=result.controller_name,
                        cycle_name=result.cycle_name,
                        metrics=result.metrics,
                        solver=result.solver,
                        wall_s=per_cell_s,
                        engine_backend="lockstep",
                    ),
                    None,
                )
        scalar_pending.sort()

    if workers <= 1:
        for i in scalar_pending:
            if cancelled():
                complete(i, None, _CANCELLED_ERROR)
                continue
            payload, error = _guarded_cell(scenarios[i])
            complete(i, payload, error)
    elif scalar_pending:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                i: pool.submit(_guarded_cell, scenarios[i])
                for i in scalar_pending
            }
            for i in scalar_pending:
                if cancelled():
                    futures[i].cancel()
                    complete(i, None, _CANCELLED_ERROR)
                    continue
                try:
                    payload, error = futures[i].result(timeout=timeout_s)
                except concurrent.futures.TimeoutError:
                    futures[i].cancel()
                    payload, error = None, f"timeout: exceeded {timeout_s:g} s budget"
                except concurrent.futures.process.BrokenProcessPool as exc:
                    payload, error = None, f"worker died: {exc}"
                complete(i, payload, error)

    if lockstep_cells:
        if len(lockstep_cells) == len(scenarios):
            methodology = "lockstep"
        else:
            methodology = f"lockstep+{scalar_methodology}"
    else:
        methodology = scalar_methodology

    return BatchResult(
        cells=tuple(cells),
        wall_s=time.perf_counter() - start,
        workers=workers,
        cache_hits=(cache.hits - hits0) if cache else 0,
        cache_misses=(cache.misses - misses0) if cache else 0,
        methodology=methodology,
    )


def scenario_grid(base: Scenario, **axes: Sequence) -> list:
    """Cross-product grid of scenarios around ``base``.

    Each keyword names a :class:`Scenario` field and supplies the values
    to sweep; the cross product is enumerated with the *last* axis varying
    fastest (like nested loops in keyword order).

    >>> grid = scenario_grid(
    ...     Scenario(cycle="nycc"),
    ...     methodology=("parallel", "otem"),
    ...     ucap_farads=(5_000.0, 25_000.0),
    ... )
    >>> [(s.methodology, s.ucap_farads) for s in grid]  # doctest: +SKIP
    """
    grid = [base]
    for name, values in axes.items():
        if not list(values):
            raise ValueError(f"axis {name!r} has no values")
        grid = [
            dataclasses.replace(s, **{name: value})
            for s in grid
            for value in values
        ]
    return grid
