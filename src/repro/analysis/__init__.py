"""Experiment harness: regenerate every table and figure of the paper.

Each ``fig*_data`` / ``table1_data`` function runs the required scenarios
and returns a plain data structure with exactly the series/rows the paper
plots or tabulates; ``repro.analysis.report`` renders them as text.  The
``benchmarks/`` directory wraps these in pytest-benchmark entries, and
EXPERIMENTS.md records paper-vs-measured values.

Scale note: the paper drives US06 five times for the temperature analyses;
the generators take a ``repeat`` argument so tests/benches can use shorter
runs (the orderings are established well before the fifth repetition).
"""

from repro.analysis.figures import (
    Fig1Data,
    Fig6Data,
    Fig7Data,
    MethodologyComparison,
    fig1_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
)
from repro.analysis.tables import Table1Data, Table1Row, table1_data
from repro.analysis.report import (
    render_fig1,
    render_fig8,
    render_fig9,
    render_table1,
)
from repro.analysis.sensitivity import (
    OrderingCheck,
    SensitivityCase,
    check_orderings,
    default_cases,
)
from repro.analysis.export import (
    write_fig1_csv,
    write_fig6_csv,
    write_fig7_csv,
    write_trace_csv,
)

__all__ = [
    "Fig1Data",
    "Fig6Data",
    "Fig7Data",
    "MethodologyComparison",
    "fig1_data",
    "fig6_data",
    "fig7_data",
    "fig8_data",
    "fig9_data",
    "Table1Data",
    "Table1Row",
    "table1_data",
    "render_fig1",
    "render_fig8",
    "render_fig9",
    "render_table1",
    "OrderingCheck",
    "SensitivityCase",
    "check_orderings",
    "default_cases",
    "write_fig1_csv",
    "write_fig6_csv",
    "write_fig7_csv",
    "write_trace_csv",
]
