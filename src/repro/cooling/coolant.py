"""Coolant-loop physical parameters.

Values follow the liquid-cooling configuration of Karimi & Li (the paper's
reference [25]): a water/glycol loop at a fixed flow rate.  The paper lump-
models both the cells and the in-pack coolant by their heat capacities
(Eq. 14-15); the flow term ``C_c (T_i - T_c)`` of Eq. 15 is the capacity
rate ``m_dot * c_p`` - we keep the two quantities as separate named fields
to avoid the paper's symbol overloading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CoolantParams:
    """Active-cooling-loop parameters (Eq. 14-16).

    Attributes
    ----------
    h_battery_coolant_w_per_k:
        Heat-transfer coefficient h_cb = h_bc between pack and coolant [W/K].
    coolant_heat_capacity_j_per_k:
        Thermal capacity of the coolant resident in the pack [J/K]
        (the C_c multiplying dT_c/dt in Eq. 15).
    flow_capacity_rate_w_per_k:
        m_dot * c_p of the circulating coolant [W/K]
        (the C_c inside the flow term of Eq. 15 and in Eq. 16).
    cooler_efficiency:
        eta_c of Eq. 16 (effectively a COP-like factor; > 0).
    max_cooler_power_w:
        Constraint C3 ceiling on cooler electrical power [W].
    min_inlet_temp_k:
        Coldest inlet the cooler can produce [K].
    pump_power_w:
        Constant pump power P_m [W] (fixed flow rate per the paper).
    passive_h_w_per_k:
        Pack-surface-to-ambient convection [W/K] for architectures that
        have *no* active cooling system (parallel [15] and dual [16] use
        conventional air-exposed packs); the actively-cooled pack is sealed
        ("completely isolated from outside", Section II-D) and never sees
        this path.
    ambient_temp_k:
        Ambient air temperature for the passive path [K].
    """

    h_battery_coolant_w_per_k: float = 600.0
    coolant_heat_capacity_j_per_k: float = 14_000.0
    flow_capacity_rate_w_per_k: float = 350.0
    cooler_efficiency: float = 0.55
    max_cooler_power_w: float = 8_000.0
    min_inlet_temp_k: float = 288.15
    pump_power_w: float = 50.0
    passive_h_w_per_k: float = 50.0
    ambient_temp_k: float = 298.15

    def __post_init__(self):
        check_positive(self.h_battery_coolant_w_per_k, "h_battery_coolant_w_per_k")
        check_positive(
            self.coolant_heat_capacity_j_per_k, "coolant_heat_capacity_j_per_k"
        )
        check_positive(self.flow_capacity_rate_w_per_k, "flow_capacity_rate_w_per_k")
        check_positive(self.cooler_efficiency, "cooler_efficiency")
        check_positive(self.max_cooler_power_w, "max_cooler_power_w")
        check_positive(self.min_inlet_temp_k, "min_inlet_temp_k")
        check_in_range(self.pump_power_w, 0.0, 10_000.0, "pump_power_w")
        check_in_range(self.passive_h_w_per_k, 0.0, 10_000.0, "passive_h_w_per_k")
        check_positive(self.ambient_temp_k, "ambient_temp_k")

    def max_inlet_drop_k(self, outlet_temp_k: float) -> float:
        """Largest ``T_o - T_i`` the cooler can produce within C3 [K]."""
        return self.cooler_efficiency * self.max_cooler_power_w / self.flow_capacity_rate_w_per_k


#: Default liquid loop per reference [25]'s configuration class.
DEFAULT_COOLANT = CoolantParams()
