"""CSV export of traces and figure data.

The library deliberately has no plotting dependency; these exporters write
the exact series the paper's figures plot so downstream users can render
them with whatever tooling they have.
"""

from __future__ import annotations

import csv

from repro.analysis.figures import Fig1Data, Fig6Data, Fig7Data
from repro.sim.trace import CHANNELS, Trace


def write_trace_csv(trace: Trace, path: str):
    """Write every recorded channel of a simulation trace, one row per step."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CHANNELS)
        for i in range(len(trace)):
            writer.writerow([float(trace.channel(name)[i]) for name in CHANNELS])


def write_fig1_csv(data: Fig1Data, path: str):
    """Fig. 1 series: time plus one temperature column per bank size."""
    header = ["time_s"] + [f"temp_k_{int(size)}F" for size in data.sizes_f]
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for i in range(data.time_s.size):
            writer.writerow(
                [float(data.time_s[i])] + [float(t[i]) for t in data.temps_k]
            )


def write_fig6_csv(data: Fig6Data, path: str):
    """Fig. 6 series: time plus one temperature column per methodology."""
    methods = sorted(data.temps_k)
    header = ["time_s"] + [f"temp_k_{m}" for m in methods]
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for i in range(data.time_s.size):
            writer.writerow(
                [float(data.time_s[i])]
                + [float(data.temps_k[m][i]) for m in methods]
            )


def write_fig7_csv(data: Fig7Data, path: str):
    """Fig. 7 series: the TEB-preparation overlay signals."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["time_s", "request_w", "cap_soe_percent", "battery_temp_k", "teb",
             "upcoming_demand_w"]
        )
        for i in range(data.time_s.size):
            writer.writerow(
                [
                    float(data.time_s[i]),
                    float(data.request_w[i]),
                    float(data.cap_soe_percent[i]),
                    float(data.battery_temp_k[i]),
                    float(data.teb[i]),
                    float(data.upcoming_demand_w[i]),
                ]
            )
