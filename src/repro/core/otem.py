"""The OTEM controller (paper Section III, Algorithm 1).

Drives the hybrid HEES architecture plus the active cooling loop.  Every
``replan_every`` plant steps it aggregates the fine-grained power preview
into the MPC's coarser horizon bins, solves the Eq. 18-19 program, and then
applies the solved first-horizon-step inputs until the next replan (standard
receding-horizon operation with move blocking).
"""

from __future__ import annotations

import numpy as np

from repro.battery.pack import DEFAULT_PACK, BatteryPack, PackConfig
from repro.controllers.base import Architecture, Decision, Observation
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.core.cost import CostWeights
from repro.core.mpc import MPCPlanner, SolverStats
from repro.core.rollout import PredictionModel
from repro.hees.hybrid import default_battery_converter, default_cap_converter
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


class OTEMController:
    """Optimized Thermal and Energy Management.

    Parameters
    ----------
    pack_config:
        Battery pack layout (must match the simulated plant).
    cap_params:
        Ultracapacitor bank parameters (must match the simulated plant).
    coolant:
        Cooling-loop parameters (must match the simulated plant).
    weights:
        Objective weights (Eq. 19).
    horizon:
        MPC control-window length N (coarse steps).
    mpc_step_s:
        Coarse horizon step duration [s].
    max_function_evals:
        Solver budget per replan.
    preview_mode:
        ``"perfect"`` uses the route preview (the paper's assumption: power
        requests predicted from the drive route); ``"persistence"`` assumes
        the current request persists over the window - the no-preview
        ablation (see benchmarks/bench_ablation_preview.py).
    mpc_method:
        Solver formulation, ``"penalty"`` or ``"slsqp"`` (see
        :class:`repro.core.mpc.MPCPlanner`).
    rollout_backend:
        ``"scalar"`` (reference implementation) or ``"vectorized"`` (batched
        NumPy kernel with batched finite-difference gradients - same model
        physics, several times faster per solve; see
        :class:`repro.core.rollout_vec.BatchPredictionModel`).

    Notes
    -----
    The controller replans every ``mpc_step_s`` seconds of plant time; at
    1 Hz plant sampling that is every ``mpc_step_s`` plant steps.  The
    simulator must be built with ``preview_steps >= horizon * mpc_step_s /
    plant_dt`` so the MPC sees its whole window (use
    :func:`OTEMController.required_preview_steps`).
    """

    name = "OTEM"
    architecture = Architecture.HYBRID
    uses_cooling = True

    def __init__(
        self,
        pack_config: PackConfig = DEFAULT_PACK,
        cap_params: UltracapParams | None = None,
        coolant: CoolantParams = DEFAULT_COOLANT,
        weights: CostWeights | None = None,
        horizon: int = 12,
        mpc_step_s: float = 5.0,
        max_function_evals: int = 150,
        preview_mode: str = "perfect",
        mpc_method: str = "penalty",
        rollout_backend: str = "scalar",
    ):
        if preview_mode not in ("perfect", "persistence"):
            raise ValueError(
                f"preview_mode must be 'perfect' or 'persistence', got {preview_mode!r}"
            )
        self._preview_mode = preview_mode
        self._pack_config = pack_config
        self._cap_params = cap_params if cap_params is not None else UltracapParams()
        self._coolant = coolant
        self._weights = weights if weights is not None else CostWeights()

        # converters identical to the plant's defaults so predictions match
        pack_probe = BatteryPack(pack_config)
        bank_probe = UltracapBank(self._cap_params)
        model = PredictionModel(
            pack_config,
            self._cap_params,
            coolant,
            default_battery_converter(pack_probe),
            default_cap_converter(bank_probe),
            self._weights,
        )
        self._planner = MPCPlanner(
            model,
            horizon=horizon,
            step_s=mpc_step_s,
            max_function_evals=max_function_evals,
            method=mpc_method,
            rollout_backend=rollout_backend,
        )
        self._plan = None
        self._plan_step_index = -1

    # ------------------------------------------------------------------ #

    @property
    def planner(self) -> MPCPlanner:
        """The underlying MPC planner."""
        return self._planner

    @property
    def weights(self) -> CostWeights:
        """Objective weights in use."""
        return self._weights

    def solver_stats(self) -> SolverStats:
        """Optimizer effort since the last :meth:`reset` (the simulator
        attaches this to :class:`repro.sim.engine.SimulationResult`)."""
        return self._planner.stats

    def required_preview_steps(self, plant_dt: float) -> int:
        """Preview length the simulator must provide at plant sampling."""
        return int(np.ceil(self._planner.horizon * self._planner.step_s / plant_dt))

    def _aggregate_preview(self, preview_w: np.ndarray, plant_dt: float) -> np.ndarray:
        """Average the fine preview into the MPC's coarse horizon bins."""
        per_bin = max(1, int(round(self._planner.step_s / plant_dt)))
        n = self._planner.horizon
        needed = per_bin * n
        fine = np.asarray(preview_w, dtype=float)
        if fine.size < needed:
            fine = np.concatenate([fine, np.zeros(needed - fine.size)])
        return fine[:needed].reshape(n, per_bin).mean(axis=1)

    def control(self, obs: Observation) -> Decision:
        """Receding-horizon control with move blocking."""
        steps_per_replan = max(1, int(round(self._planner.step_s / obs.dt)))
        due = (
            self._plan is None
            or (obs.step_index - self._plan_step_index) >= steps_per_replan
        )
        if due:
            if self._preview_mode == "persistence":
                fine = np.full_like(
                    np.asarray(obs.preview_w, dtype=float), obs.power_request_w
                )
            else:
                fine = obs.preview_w
            coarse_preview = self._aggregate_preview(fine, obs.dt)
            state = (
                obs.battery_temp_k,
                obs.coolant_temp_k,
                obs.battery_soc_percent,
                obs.cap_soe_percent,
            )
            self._plan = self._planner.plan(state, coarse_preview)
            self._plan_step_index = obs.step_index

        cap_cmd = float(self._plan.cap_bus_w[0])
        inlet_cmd = float(self._plan.inlet_temp_k[0])
        # cooling engages only when the plan actually asks for a colder
        # inlet; a hair below T_c means "pump only"
        cooling = inlet_cmd < obs.coolant_temp_k - 0.05
        return Decision(
            cap_bus_w=cap_cmd,
            cooling_active=True,
            inlet_temp_k=inlet_cmd if cooling else obs.coolant_temp_k,
            info={
                "replanned": due,
                "solver_cost": self._plan.solver_cost,
                "solver_iterations": self._plan.solver_iterations,
            },
        )

    def reset(self):
        """Forget the current plan and warm start (fresh route)."""
        self._plan = None
        self._plan_step_index = -1
        self._planner.reset()
