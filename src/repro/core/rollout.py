"""Fast scalar prediction model for the OTEM MPC (single-shooting rollout).

This mirrors the plant physics - cell electrical model (Eq. 1-3), heat
generation (Eq. 4), aging (Eq. 5), converter efficiencies, and the
trapezoidal thermal update (Eq. 17) - in plain-float arithmetic with all
parameters pre-extracted, because the optimizer evaluates it thousands of
times per control step.  ``tests/core/test_rollout.py`` asserts that a
rollout matches the real plant step-for-step within tight tolerance.

The rollout returns the OTEM objective (Eq. 19) plus hinge penalties for the
softened state constraints and the terminal restoration-cost terms.

This scalar loop is the *semantic reference*;
:class:`repro.core.rollout_vec.BatchPredictionModel` vectorizes the same
physics over a batch of candidate plans for the solver hot path and is
equivalence-tested against it to 1e-9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.battery.pack import PackConfig
from repro.cooling.coolant import CoolantParams
from repro.core.cost import CostWeights
from repro.hees.converter import DCDCConverter
from repro.ultracap.params import UltracapParams
from repro.utils.units import GAS_CONSTANT

#: Constraint C1 upper temperature bound used by the MPC [K] (40 C).
TEMP_MAX_K = 313.15


@dataclass(frozen=True)
class RolloutResult:
    """Detailed outcome of one predicted trajectory.

    Attributes
    ----------
    cost:
        Total objective (Eq. 19 terms + penalties + terminal).
    objective:
        The pure Eq. 19 part.
    penalty:
        The constraint-hinge part.
    terminal:
        The restoration-cost part.
    temps_k / coolant_k / socs / soes:
        Predicted state trajectories, length N+1 (including the initial
        state).
    cooling_j / qloss_percent / hees_j:
        Per-horizon totals of the three Eq. 19 ingredients.
    """

    cost: float
    objective: float
    penalty: float
    terminal: float
    temps_k: tuple
    coolant_k: tuple
    socs: tuple
    soes: tuple
    cooling_j: float
    qloss_percent: float
    hees_j: float


class PredictionModel:
    """Pre-compiled scalar plant model for horizon rollouts.

    Parameters
    ----------
    pack_config:
        Battery pack layout (cell parameters are taken from it).
    cap_params:
        Ultracapacitor bank parameters.
    coolant:
        Cooling-loop parameters.
    battery_converter / cap_converter:
        Converter ports as built by the hybrid plant.
    weights:
        Objective weights.
    """

    def __init__(
        self,
        pack_config: PackConfig,
        cap_params: UltracapParams,
        coolant: CoolantParams,
        battery_converter: DCDCConverter,
        cap_converter: DCDCConverter,
        weights: CostWeights,
    ):
        cell = pack_config.cell
        self.w = weights
        # battery constants
        self.n_cells = pack_config.cell_count
        self.capacity_c = cell.capacity_ah * 3600.0
        self.voc_a = cell.voc_exp_a
        self.voc_b = cell.voc_exp_b
        self.voc_p4 = cell.voc_p4
        self.voc_p3 = cell.voc_p3
        self.voc_p2 = cell.voc_p2
        self.voc_p1 = cell.voc_p1
        self.voc_p0 = cell.voc_p0
        self.res_a = cell.res_exp_a
        self.res_b = cell.res_exp_b
        self.res_c = cell.res_base
        self.res_tk = cell.res_temp_k
        self.res_tref = cell.res_ref_temp_k
        self.entropy = cell.entropy_coeff_v_per_k
        self.aging_l1 = cell.aging_prefactor
        self.aging_l2 = cell.aging_activation_j_per_mol
        self.aging_l3 = cell.aging_current_exp
        self.i_max_cell = cell.max_current_a
        self.pack_pmax = pack_config.max_power_w
        self.pack_series = pack_config.series
        self.cb = pack_config.heat_capacity_j_per_k
        # ultracap constants
        self.ecap = cap_params.energy_capacity_j
        self.vr = cap_params.rated_voltage_v
        self.cap_pmax = cap_params.max_power_w
        self.soe_min = cap_params.soe_min_percent
        self.soe_max = cap_params.soe_max_percent
        # converters
        bp = battery_converter.params
        self.bc_eta_max, self.bc_eta_min = bp.eta_max, bp.eta_min
        self.bc_droop, self.bc_vref = bp.droop, bp.v_ref
        cp = cap_converter.params
        self.cc_eta_max, self.cc_eta_min = cp.eta_max, cp.eta_min
        self.cc_droop, self.cc_vref = cp.droop, cp.v_ref
        # cooling loop
        self.h = coolant.h_battery_coolant_w_per_k
        self.cc_heat = coolant.coolant_heat_capacity_j_per_k
        self.wc = coolant.flow_capacity_rate_w_per_k
        self.eta_cool = coolant.cooler_efficiency
        self.pc_max = coolant.max_cooler_power_w
        self.min_inlet = coolant.min_inlet_temp_k
        self.pump = coolant.pump_power_w

    # ------------------------------------------------------------------ #
    # scalar model pieces (mirror repro.battery / repro.hees / repro.cooling)

    def _voc(self, soc: float) -> float:
        return (
            self.voc_a * math.exp(self.voc_b * soc)
            + self.voc_p4 * soc**4
            + self.voc_p3 * soc**3
            + self.voc_p2 * soc**2
            + self.voc_p1 * soc
            + self.voc_p0
        )

    def _res(self, soc: float, temp_k: float) -> float:
        base = self.res_a * math.exp(self.res_b * soc) + self.res_c
        return base * math.exp(self.res_tk * (1.0 / temp_k - 1.0 / self.res_tref))

    def _cap_eta(self, vcap: float) -> float:
        sag = 1.0 - vcap / self.cc_vref
        eta = self.cc_eta_max - self.cc_droop * sag * sag
        return min(max(eta, self.cc_eta_min), self.cc_eta_max)

    def _bat_eta(self, vpack: float) -> float:
        sag = 1.0 - vpack / self.bc_vref
        eta = self.bc_eta_max - self.bc_droop * sag * sag
        return min(max(eta, self.bc_eta_min), self.bc_eta_max)

    # ------------------------------------------------------------------ #

    def rollout_cost(
        self,
        state: tuple,
        cap_bus,
        inlet,
        preview_w,
        dt: float,
    ) -> float:
        """Objective of the trajectory (fast path: no trajectory storage).

        Parameters
        ----------
        state:
            (T_b, T_c, SoC, SoE) at the start of the horizon.
        cap_bus:
            Ultracap bus-power commands per step [W], length N (any
            indexable sequence, including an ndarray - no copy is taken).
        inlet:
            Coolant inlet commands per step [K], length N.
        preview_w:
            Predicted EV power requests per step [W], length N.
        dt:
            Horizon step duration [s].
        """
        return self._rollout(state, cap_bus, inlet, preview_w, dt, detailed=False)

    def rollout(
        self,
        state: tuple,
        cap_bus,
        inlet,
        preview_w,
        dt: float,
    ) -> RolloutResult:
        """Detailed trajectory (for tests, TEB analysis and diagnostics)."""
        return self._rollout(state, cap_bus, inlet, preview_w, dt, detailed=True)

    def _rollout(self, state, cap_bus, inlet, preview_w, dt, detailed):
        w = self.w
        tb, tc, soc, soe = state
        n = len(cap_bus)
        objective = 0.0
        penalty = 0.0
        cooling_j = 0.0
        qloss = 0.0
        hees_j = 0.0
        if detailed:
            temps = [tb]
            coolants = [tc]
            socs = [soc]
            soes = [soe]

        gas = GAS_CONSTANT
        for k in range(n):
            # --- cooling command (C2/C3 clamps, Eq. 16) ---
            coldest = tc - self.eta_cool * self.pc_max / self.wc
            if coldest < self.min_inlet:
                coldest = self.min_inlet
            ti = inlet[k]
            if ti < coldest:
                ti = coldest
            if ti > tc:
                ti = tc
            p_cool = self.wc * (tc - ti) / self.eta_cool
            total = preview_w[k] + p_cool + self.pump

            # --- ultracapacitor branch ---
            pcb = cap_bus[k]
            if pcb > self.cap_pmax:
                pcb = self.cap_pmax
            elif pcb < -self.cap_pmax:
                pcb = -self.cap_pmax
            soe_before = soe
            soe_floor = max(soe, 1.0)
            vcap = self.vr * math.sqrt(soe_floor / 100.0)
            eta_c = self._cap_eta(vcap)
            cap_port = pcb / eta_c if pcb >= 0.0 else pcb * eta_c
            # hard guard: never predict below 1% stored energy
            max_out = (soe - 1.0) / 100.0 * self.ecap / dt
            if cap_port > max_out:
                cap_port = max(0.0, max_out)
                pcb = cap_port * eta_c
            de_cap = cap_port * dt
            soe = soe - 100.0 * de_cap / self.ecap

            # --- battery branch ---
            vpack = self._voc(soc) * self.pack_series
            eta_b = self._bat_eta(vpack)
            # mirror the plant's guard: charging the bank may not displace
            # load delivery (battery bus power is capped at its C6 limit)
            if pcb < 0.0:
                voc_g = self._voc(soc)
                res_g = self._res(soc, tb)
                bat_max_bus = (
                    self.i_max_cell
                    * (voc_g - self.i_max_cell * res_g)
                    * self.n_cells
                    * eta_b
                )
                headroom = bat_max_bus - (total if total > 0.0 else 0.0)
                if headroom < 0.0:
                    headroom = 0.0
                if -pcb > headroom:
                    pcb = -headroom
                    cap_port = pcb * eta_c
                    # redo the bank bookkeeping with the reduced charge
                    soe = soe_before - 100.0 * cap_port * dt / self.ecap
                    de_cap = cap_port * dt
            bat_bus = total - pcb
            bat_port = bat_bus / eta_b if bat_bus >= 0.0 else bat_bus * eta_b
            per_cell = bat_port / self.n_cells
            voc = self._voc(soc)
            res = self._res(soc, tb)
            disc = voc * voc - 4.0 * res * per_cell
            if disc < 0.0:
                current = voc / (2.0 * res)
            else:
                current = (voc - math.sqrt(disc)) / (2.0 * res)
            if current > self.i_max_cell:
                current = self.i_max_cell
            elif current < -self.i_max_cell:
                current = -self.i_max_cell
            heat_cell = current * current * res + current * tb * self.entropy
            heat = heat_cell * self.n_cells if heat_cell > 0.0 else 0.0
            q_inc = (
                self.aging_l1
                * math.exp(-self.aging_l2 / (gas * tb))
                * abs(current) ** self.aging_l3
                * dt
            )
            de_bat = voc * current * self.n_cells * dt
            soc = soc - 100.0 * current * dt / self.capacity_c

            # --- thermal update (trapezoidal Eq. 17, same as CoolingLoop) ---
            h, cbh, cch, wc2 = self.h, self.cb, self.cc_heat, self.wc
            a11 = cbh / dt + h / 2.0
            a12 = -h / 2.0
            b1 = cbh / dt * tb - h / 2.0 * (tb - tc) + heat
            a21 = -h / 2.0
            a22 = cch / dt + h / 2.0 + wc2 / 2.0
            b2 = cch / dt * tc + h / 2.0 * (tb - tc) + wc2 * ti - wc2 / 2.0 * tc
            det = a11 * a22 - a12 * a21
            tb = (b1 * a22 - a12 * b2) / det
            tc = (a11 * b2 - a21 * b1) / det

            # --- accumulate objective (Eq. 19) ---
            objective += w.w1 * p_cool * dt + w.w2 * q_inc + w.w3 * (de_bat + de_cap)
            cooling_j += p_cool * dt
            qloss += q_inc
            hees_j += de_bat + de_cap

            # --- constraint hinges (C1, C4, C5, C6) ---
            over_t = tb - TEMP_MAX_K
            if over_t > 0.0:
                penalty += w.hinge_temp * over_t * over_t
            under_soc = 20.0 - soc
            if under_soc > 0.0:
                penalty += w.hinge_soc * under_soc * under_soc
            under_soe = self.soe_min - soe
            if under_soe > 0.0:
                penalty += w.hinge_soe * under_soe * under_soe
            over_soe = soe - self.soe_max
            if over_soe > 0.0:
                penalty += w.hinge_soe * over_soe * over_soe
            # C6 with voltage sag: the true deliverable limit is at the cell
            # current rating, not the nameplate power
            bat_max_port = (
                self.i_max_cell * (voc - self.i_max_cell * res) * self.n_cells
            )
            over_p = bat_port - bat_max_port
            if over_p > 0.0:
                penalty += w.hinge_power * over_p * over_p

            if detailed:
                temps.append(tb)
                coolants.append(tc)
                socs.append(soc)
                soes.append(soe)

        # --- terminal restoration costs ---
        soe_deficit = w.terminal_soe_ref - soe
        terminal = 0.0
        if soe_deficit > 0.0:
            deficit_j = soe_deficit / 100.0 * self.ecap
            terminal += w.w3 * w.terminal_energy_gain * deficit_j
            # aging price of the post-horizon refill: the battery will push
            # deficit_j at the assumed refill power, incurring Eq. 5 loss at
            # the horizon-end temperature - so draining the bank is never a
            # free way to rest the battery
            refill_i = w.terminal_refill_power_w / (
                self.n_cells * self._voc(soc)
            )
            refill_time = deficit_j / w.terminal_refill_power_w
            refill_qloss = (
                self.aging_l1
                * math.exp(-self.aging_l2 / (gas * tb))
                * abs(refill_i) ** self.aging_l3
                * refill_time
            )
            terminal += w.w2 * refill_qloss
        temp_excess = tb - w.terminal_temp_ref
        if temp_excess > 0.0:
            # cooling-energy price of restoring the reference temperature
            terminal += (
                w.w1
                * w.terminal_thermal_gain
                * self.cb
                * temp_excess
                / self.eta_cool
            )
            # aging price of driving on with a hot pack: extra Eq. 5 rate at
            # the horizon-end temperature vs the reference, over the assumed
            # future driving time - this is what makes pre-cooling rational
            # inside a horizon too short to see its own aging payoff
            i_typ = w.terminal_typical_current_a**self.aging_l3
            rate_hot = self.aging_l1 * math.exp(-self.aging_l2 / (gas * tb)) * i_typ
            rate_ref = (
                self.aging_l1
                * math.exp(-self.aging_l2 / (gas * w.terminal_temp_ref))
                * i_typ
            )
            terminal += w.w2 * (rate_hot - rate_ref) * w.terminal_future_s

        cost = objective + penalty + terminal
        if not detailed:
            return cost
        return RolloutResult(
            cost=cost,
            objective=objective,
            penalty=penalty,
            terminal=terminal,
            temps_k=tuple(temps),
            coolant_k=tuple(coolants),
            socs=tuple(socs),
            soes=tuple(soes),
            cooling_j=cooling_j,
            qloss_percent=qloss,
            hees_j=hees_j,
        )
