"""Active battery cooling system (paper Section II-D, Eq. 14-16).

A pumped liquid coolant sweeps the battery pack; a cooler chills the
returning coolant down to a commanded inlet temperature ``T_i`` at a power
cost ``P_c = W_c (T_o - T_i) / eta_c``; the pump runs at fixed flow (constant
power) as in the paper.

Public API
----------
``CoolantParams`` / ``DEFAULT_COOLANT``
    Loop physical parameters (heat-transfer coefficients, flow capacity
    rate, cooler efficiency, power ceiling).
``CoolingLoop``
    Coupled (T_b, T_c) thermal integrator and cooler power accounting.
``MultiNodeCoolingLoop``
    Segmented pack model resolving the along-flow hot spot (Fig. 5 detail).
"""

from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.cooling.loop import CoolingLoop, CoolingStepResult
from repro.cooling.multinode import MultiNodeCoolingLoop, MultiNodeState

__all__ = [
    "CoolantParams",
    "DEFAULT_COOLANT",
    "CoolingLoop",
    "CoolingStepResult",
    "MultiNodeCoolingLoop",
    "MultiNodeState",
]
