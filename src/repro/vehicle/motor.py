"""Motor + inverter efficiency model.

ADVISOR uses a 2-D torque/speed efficiency map; for the power-request
estimate the controllers need, a load-dependent scalar efficiency captures
the same first-order behaviour: efficiency is poor at very light load, peaks
in the mid-load range, and rolls off slightly near peak power.

The map is

    eta(load) = eta_peak - a*(load - load_peak)^2 - b / (load + c)

clipped to [eta_min, eta_peak], with ``load`` = |P_mech| / P_max in [0, 1].
The default constants give ~0.78 at 2% load, ~0.93 peak around 35% load and
~0.90 at full load, typical of automotive PMSM drive systems.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range
from repro.vehicle.params import VehicleParams


class MotorDrive:
    """Motor + inverter electrical/mechanical power conversion.

    Parameters
    ----------
    params:
        Vehicle parameters (supplies the power ceilings and regen fraction).
    eta_peak:
        Peak drive-system efficiency [-].
    eta_min:
        Efficiency floor at extremely light load [-].
    load_peak:
        Normalized load at which efficiency peaks [-].
    """

    def __init__(
        self,
        params: VehicleParams,
        eta_peak: float = 0.93,
        eta_min: float = 0.70,
        load_peak: float = 0.35,
    ):
        self._p = params
        self._eta_peak = check_in_range(eta_peak, 0.5, 1.0, "eta_peak")
        self._eta_min = check_in_range(eta_min, 0.3, eta_peak, "eta_min")
        self._load_peak = check_in_range(load_peak, 0.05, 0.9, "load_peak")
        # curvature chosen so eta(1.0) ~= eta_peak - 0.03
        self._curvature = 0.03 / max((1.0 - self._load_peak) ** 2, 1e-6)
        self._light_load_drop = 0.004

    @property
    def max_power_w(self) -> float:
        """Motor electrical power ceiling [W]."""
        return self._p.max_motor_power_w

    def efficiency(self, mech_power_w) -> np.ndarray:
        """Drive-system efficiency [-] at mechanical power ``mech_power_w``."""
        load = np.abs(np.asarray(mech_power_w, dtype=float)) / self._p.max_motor_power_w
        load = np.clip(load, 0.0, 1.0)
        eta = (
            self._eta_peak
            - self._curvature * (load - self._load_peak) ** 2
            - self._light_load_drop / (load + 0.02)
        )
        return np.clip(eta, self._eta_min, self._eta_peak)

    def electrical_power(self, mech_power_w) -> np.ndarray:
        """Electrical power at the DC bus [W] for mechanical power at the wheels.

        Positive mechanical power (propulsion) divides by efficiency;
        negative (braking) multiplies by efficiency and by the recoverable
        fraction, then is clipped at the regen ceiling.  Friction brakes
        absorb whatever regen cannot.
        """
        mech = np.asarray(mech_power_w, dtype=float)
        eta = self.efficiency(mech)
        drive = np.clip(mech / eta, None, self._p.max_motor_power_w)
        regen = np.clip(
            mech * eta * self._p.regen_fraction, -self._p.max_regen_power_w, 0.0
        )
        return np.where(mech >= 0.0, drive, regen)
