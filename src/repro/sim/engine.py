"""The simulation engine: Algorithm 1's outer loop.

Per step:

1. build an :class:`Observation` (states + power-request preview),
2. ask the controller for a :class:`Decision`,
3. price the cooling command (Eq. 16) and add it to the bus request - the
   cooler and pump draw their power from the HEES,
4. step the HEES plant (the architecture the controller declares),
5. advance the coupled battery/coolant temperatures (Eq. 14-15 via Eq. 17),
6. record everything.

``Q_loss`` and ``Energy`` accumulate exactly as Algorithm 1 lines 17-18.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.pack import DEFAULT_PACK, BatteryPack, PackConfig
from repro.controllers.base import Architecture, Controller, Observation
from repro.core.mpc import SolverStats
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.cooling.loop import CoolingLoop
from repro.hees.dual import DualHEES, DualMode
from repro.hees.hybrid import HybridHEES
from repro.hees.parallel import ParallelHEES
from repro.sim.metrics import SummaryMetrics, compute_metrics
from repro.sim.trace import Trace, TraceRecorder
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import PowerRequest
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class SimulationResult:
    """Output of one run: the trace, its summary, and identification.

    ``solver`` carries the controller's accumulated optimizer effort when
    the controller exposes a ``solver_stats()`` method (the OTEM MPC does);
    baselines leave it ``None``.  Its ``backend`` field records which
    rollout implementation produced the plans (``"scalar"`` reference or
    the ``"vectorized"`` batched kernel), and ``last_cost_or_none`` is the
    JSON-safe view of the final solve cost (``None`` while NaN).
    """

    controller_name: str
    cycle_name: str
    trace: Trace
    metrics: SummaryMetrics
    solver: SolverStats | None = None

    @property
    def qloss_percent(self) -> float:
        """Accumulated capacity loss [%] (Algorithm 1 output)."""
        return self.metrics.qloss_percent

    @property
    def hees_energy_j(self) -> float:
        """Energy consumed in the HEES [J] (Algorithm 1 output)."""
        return self.metrics.hees_energy_j


class Simulator:
    """Drives one controller over one power-request trace.

    Parameters
    ----------
    controller:
        The policy under test; its ``architecture`` attribute selects the
        plant.
    pack_config:
        Battery pack layout.
    cap_params:
        Ultracapacitor bank parameters (ignored for BATTERY_ONLY).
    coolant:
        Cooling-loop parameters (the loop exists only when the controller
        declares ``uses_cooling``).
    initial_soc_percent / initial_temp_k / initial_soe_percent:
        Initial conditions (Algorithm 1 line 9 uses 298 K and 100%).
    preview_steps:
        Length of the power preview handed to the controller (the MPC's
        control window N).
    """

    def __init__(
        self,
        controller: Controller,
        pack_config: PackConfig = DEFAULT_PACK,
        cap_params: UltracapParams | None = None,
        coolant: CoolantParams = DEFAULT_COOLANT,
        initial_soc_percent: float = 100.0,
        initial_temp_k: float = 298.0,
        initial_soe_percent: float = 100.0,
        preview_steps: int = 10,
    ):
        check_in_range(initial_soc_percent, 0.0, 100.0, "initial_soc_percent")
        check_in_range(initial_soe_percent, 0.0, 100.0, "initial_soe_percent")
        check_positive(initial_temp_k, "initial_temp_k")
        if preview_steps < 1:
            raise ValueError("preview_steps must be >= 1")
        self._controller = controller
        self._pack_config = pack_config
        self._cap_params = cap_params if cap_params is not None else UltracapParams()
        self._coolant = coolant
        self._soc0 = initial_soc_percent
        self._temp0 = initial_temp_k
        self._soe0 = initial_soe_percent
        self._preview = preview_steps

    # ------------------------------------------------------------------ #

    def _build_plant(self, pack: BatteryPack, bank: UltracapBank):
        arch = self._controller.architecture
        if arch is Architecture.PARALLEL:
            return ParallelHEES(pack, bank)
        if arch is Architecture.DUAL or arch is Architecture.BATTERY_ONLY:
            return DualHEES(pack, bank)
        if arch is Architecture.HYBRID:
            return HybridHEES(pack, bank)
        raise ValueError(f"unknown architecture {arch}")

    def run(self, request: PowerRequest) -> SimulationResult:
        """Simulate the whole route and return trace + metrics."""
        controller = self._controller
        controller.reset()

        pack = BatteryPack(
            self._pack_config,
            initial_soc_percent=self._soc0,
            initial_temp_k=self._temp0,
        )
        bank = UltracapBank(self._cap_params, initial_soe_percent=self._soe0)
        plant = self._build_plant(pack, bank)
        loop = CoolingLoop(self._coolant, self._pack_config.heat_capacity_j_per_k)

        dt = request.dt
        coolant_temp = self._temp0
        recorder = TraceRecorder()

        for k in range(len(request)):
            p_e = float(request.power_w[k])
            obs = Observation(
                step_index=k,
                time_s=k * dt,
                dt=dt,
                power_request_w=p_e,
                preview_w=request.window(k, self._preview),
                battery_soc_percent=pack.soc_percent,
                battery_temp_k=pack.temp_k,
                coolant_temp_k=coolant_temp,
                cap_soe_percent=bank.soe_percent,
            )
            decision = controller.control(obs)

            # price the cooling command before the plant step (the cooler
            # draws from the HEES bus)
            cooling_on = controller.uses_cooling and decision.cooling_active
            if cooling_on:
                inlet = loop.clamp_inlet(decision.inlet_temp_k, coolant_temp)
                cooling_power = (
                    loop.cooler_power_w(inlet, coolant_temp)
                    + self._coolant.pump_power_w
                )
            else:
                inlet = coolant_temp
                cooling_power = 0.0

            total_request = p_e + cooling_power

            arch = controller.architecture
            if arch is Architecture.PARALLEL:
                step = plant.step(total_request, dt)
            elif arch is Architecture.DUAL:
                step = plant.step(
                    total_request, decision.dual_mode, decision.recharge_power_w, dt
                )
            elif arch is Architecture.BATTERY_ONLY:
                step = plant.step(total_request, DualMode.BATTERY, 0.0, dt)
            else:  # HYBRID
                step = plant.step(total_request, decision.cap_bus_w, dt)

            # architectures without an installed cooling system have
            # air-exposed packs; the actively-cooled pack is sealed
            passive = arch in (Architecture.PARALLEL, Architecture.DUAL)
            thermal = loop.step(
                pack.temp_k,
                coolant_temp,
                inlet,
                step.battery_heat_w,
                dt,
                cooling_active=cooling_on,
                passive_ambient=passive,
            )
            pack.set_temperature(thermal.battery_temp_k)
            coolant_temp = thermal.coolant_temp_k

            recorder.record(
                time_s=k * dt,
                request_w=p_e,
                delivered_w=step.delivered_power_w,
                battery_power_w=step.battery_power_w,
                cap_power_w=step.ultracap_power_w,
                cooling_power_w=thermal.cooler_power_w + thermal.pump_power_w,
                battery_soc_percent=pack.soc_percent,
                cap_soe_percent=bank.soe_percent,
                battery_temp_k=pack.temp_k,
                coolant_temp_k=coolant_temp,
                inlet_temp_k=thermal.inlet_temp_k,
                heat_w=step.battery_heat_w,
                cell_current_a=step.battery_cell_current_a,
                chem_energy_j=step.chem_energy_j,
                cap_energy_j=step.cap_energy_j,
                converter_loss_j=step.converter_loss_j,
                loss_increment_percent=step.loss_increment_percent,
                unmet_w=step.unmet_power_w,
            )

        trace = recorder.freeze()
        stats_fn = getattr(controller, "solver_stats", None)
        return SimulationResult(
            controller_name=controller.name,
            cycle_name=request.cycle_name,
            trace=trace,
            metrics=compute_metrics(trace),
            solver=stats_fn() if callable(stats_fn) else None,
        )
