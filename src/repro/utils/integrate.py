"""Small fixed-step integration helpers.

The simulation engine advances lumped thermal/electrical states with explicit
fixed-step integrators; drive-cycle and metric computations use trapezoidal
quadrature.  All helpers accept plain floats or numpy arrays.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def euler_step(f: Callable, y, t: float, dt: float):
    """Advance ``dy/dt = f(t, y)`` one explicit-Euler step of size ``dt``.

    Parameters
    ----------
    f:
        Right-hand side, called as ``f(t, y)``.
    y:
        Current state (float or ndarray).
    t:
        Current time [s].
    dt:
        Step size [s], must be positive.

    Returns
    -------
    The state at ``t + dt``.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    return y + dt * f(t, y)


def rk4_step(f: Callable, y, t: float, dt: float):
    """Advance ``dy/dt = f(t, y)`` one classical Runge-Kutta-4 step."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def trapezoid(values, dt: float | None = None, times=None) -> float:
    """Trapezoidal integral of sampled ``values``.

    Either a uniform sample period ``dt`` or an explicit ``times`` vector must
    be given (not both).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("trapezoid expects a 1-D sample vector")
    if (dt is None) == (times is None):
        raise ValueError("exactly one of dt / times must be provided")
    if values.size < 2:
        return 0.0
    if dt is not None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        return float(np.trapezoid(values, dx=dt))
    times = np.asarray(times, dtype=float)
    if times.shape != values.shape:
        raise ValueError("times and values must have the same shape")
    return float(np.trapezoid(values, x=times))


def cumulative_trapezoid(values, dt: float) -> np.ndarray:
    """Cumulative trapezoidal integral with a leading zero sample.

    Returns an array of the same length as ``values`` whose ``i``-th entry is
    the integral of ``values[:i+1]`` on a uniform grid of period ``dt``.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("cumulative_trapezoid expects a 1-D sample vector")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if values.size == 0:
        return np.zeros(0)
    increments = 0.5 * (values[1:] + values[:-1]) * dt
    out = np.empty_like(values)
    out[0] = 0.0
    np.cumsum(increments, out=out[1:])
    return out
