"""Baseline [25]: battery-only storage with thermostatic active cooling.

"Only battery is used as the energy storage and active battery cooling
system is utilized to maintain the battery temperature in the safe range"
(paper Section IV-B.2).  The policy is a classic hysteresis thermostat: the
cooler engages at ``temp_on_k`` with the coldest producible inlet and
disengages at ``temp_off_k``.
"""

from __future__ import annotations

from repro.controllers.base import Architecture, Decision, Observation
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.utils.validation import check_positive


class CoolingOnlyController:
    """Thermostatic cooling policy, battery as the only storage.

    Parameters
    ----------
    temp_on_k:
        Battery temperature at which the cooler engages [K].
    temp_off_k:
        Battery temperature at which the cooler disengages [K]
        (must be below ``temp_on_k`` for hysteresis).
    coolant:
        Loop parameters (supplies the coldest producible inlet).
    """

    name = "Cooling [25]"
    architecture = Architecture.BATTERY_ONLY
    uses_cooling = True

    def __init__(
        self,
        temp_on_k: float = 299.15,
        temp_off_k: float = 296.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        check_positive(temp_on_k, "temp_on_k")
        check_positive(temp_off_k, "temp_off_k")
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._on = temp_on_k
        self._off = temp_off_k
        self._coolant = coolant
        self._cooling = False

    @property
    def is_cooling(self) -> bool:
        """Whether the thermostat is currently engaged."""
        return self._cooling

    def control(self, obs: Observation) -> Decision:
        """Hysteresis thermostat on battery temperature."""
        if self._cooling:
            if obs.battery_temp_k <= self._off:
                self._cooling = False
        elif obs.battery_temp_k >= self._on:
            self._cooling = True
        return Decision(
            cooling_active=self._cooling,
            inlet_temp_k=self._coolant.min_inlet_temp_k,
            info={"thermostat_on": self._cooling},
        )

    def reset(self):
        """Disengage the thermostat."""
        self._cooling = False
