"""Lockstep (struct-of-arrays) twins of the baseline controllers.

Each batched policy advances M scenario columns per call and mirrors its
scalar counterpart decision-for-decision: hysteresis latches become boolean
state arrays, mode selection becomes integer-code arrays, and every branch
is re-expressed as a mask over columns.  Because each column's state update
uses exactly the scalar expressions, a column of a lockstep run matches the
corresponding scalar run bitwise.

Only the four baselines are represented - the MPC methodologies (OTEM)
carry a solver per scenario and stay on the scalar
:class:`repro.sim.engine.Simulator` path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.base import Architecture
from repro.cooling.coolant import DEFAULT_COOLANT, CoolantParams
from repro.hees.dual import DualHEESVec


@dataclass(frozen=True)
class BatchDecision:
    """Vectorized :class:`repro.controllers.base.Decision`.

    Attributes
    ----------
    cap_bus_w:
        Hybrid architecture: per-column ultracap bus-power commands [W].
    dual_mode:
        Dual architecture: per-column switch codes
        (:attr:`repro.hees.dual.DualHEESVec.MODE_BATTERY` & co.).
    recharge_power_w:
        Dual architecture: per-column battery->bank recharge power [W].
    cooling_active:
        Per-column cooling loop engagement flags.
    inlet_temp_k:
        Commanded coolant inlet temperature [K]; scalar because every
        baseline commands the loop's full-cold inlet, which is uniform
        within a lockstep group (the coolant is a group key).
    """

    cap_bus_w: np.ndarray
    dual_mode: np.ndarray
    recharge_power_w: np.ndarray
    cooling_active: np.ndarray
    inlet_temp_k: float = 298.0


def _zeros_decision(m: int, **overrides) -> BatchDecision:
    base = dict(
        cap_bus_w=np.zeros(m),
        dual_mode=np.full(m, DualHEESVec.MODE_BATTERY, dtype=np.int64),
        recharge_power_w=np.zeros(m),
        cooling_active=np.zeros(m, dtype=bool),
    )
    base.update(overrides)
    return BatchDecision(**base)


class BatchedParallelPassive:
    """Lockstep twin of :class:`ParallelPassiveController` (no-op)."""

    name = "Parallel [15]"
    architecture = Architecture.PARALLEL
    uses_cooling = False

    def __init__(self):
        self._m = 0

    def reset(self, m: int) -> None:
        """Size the (stateless) policy for ``m`` columns."""
        self._m = m

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """No commands: the circuit does everything."""
        return _zeros_decision(self._m)


class BatchedCoolingOnly:
    """Lockstep twin of :class:`CoolingOnlyController`."""

    name = "Cooling [25]"
    architecture = Architecture.BATTERY_ONLY
    uses_cooling = True

    def __init__(
        self,
        temp_on_k: float = 299.15,
        temp_off_k: float = 296.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._on = temp_on_k
        self._off = temp_off_k
        self._coolant = coolant
        self._cooling = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Disengage every column's thermostat."""
        self._cooling = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Per-column hysteresis thermostat on battery temperature."""
        was_on = self._cooling
        turn_off = was_on & (battery_temp_k <= self._off)
        turn_on = ~was_on & (battery_temp_k >= self._on)
        self._cooling = (was_on & ~turn_off) | turn_on
        return _zeros_decision(
            len(was_on),
            cooling_active=self._cooling.copy(),
            inlet_temp_k=self._coolant.min_inlet_temp_k,
        )


class BatchedDualThreshold:
    """Lockstep twin of :class:`DualThresholdController`."""

    name = "Dual [16]"
    architecture = Architecture.DUAL
    uses_cooling = False

    def __init__(
        self,
        temp_switch_k: float = 307.15,
        temp_resume_k: float = 303.15,
        soe_floor_percent: float = 22.0,
        soe_target_percent: float = 95.0,
        recharge_power_w: float = 3_000.0,
        recharge_temp_max_k: float = 306.15,
    ):
        if temp_resume_k >= temp_switch_k:
            raise ValueError("temp_resume_k must be below temp_switch_k")
        if not 0.0 <= soe_floor_percent < soe_target_percent <= 100.0:
            raise ValueError("need 0 <= soe_floor < soe_target <= 100")
        self._t_switch = temp_switch_k
        self._t_resume = temp_resume_k
        self._soe_floor = soe_floor_percent
        self._soe_target = soe_target_percent
        self._recharge_w = recharge_power_w
        self._recharge_t_max = recharge_temp_max_k
        self._on_cap = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Return every column's switch to the battery position."""
        self._on_cap = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Per-column threshold switching with SoE guard and recharge."""
        was_on = self._on_cap
        leave = was_on & (
            (battery_temp_k <= self._t_resume)
            | (cap_soe_percent <= self._soe_floor)
        )
        enter = (
            ~was_on
            & (battery_temp_k >= self._t_switch)
            & (cap_soe_percent > self._soe_floor)
        )
        self._on_cap = (was_on & ~leave) | enter

        recharging = (
            ~self._on_cap
            & (cap_soe_percent < self._soe_target)
            & (battery_temp_k < self._recharge_t_max)
        )
        mode = np.where(
            self._on_cap,
            DualHEESVec.MODE_ULTRACAP,
            np.where(
                recharging, DualHEESVec.MODE_RECHARGE, DualHEESVec.MODE_BATTERY
            ),
        )
        recharge = np.where(recharging, self._recharge_w, 0.0)
        return _zeros_decision(
            len(was_on), dual_mode=mode, recharge_power_w=recharge
        )


class BatchedHybridHeuristic:
    """Lockstep twin of :class:`HybridHeuristicController`."""

    name = "Heuristic hybrid"
    architecture = Architecture.HYBRID
    uses_cooling = True

    def __init__(
        self,
        smoothing: float = 0.05,
        recharge_power_w: float = 6_000.0,
        soe_target_percent: float = 90.0,
        temp_on_k: float = 302.15,
        temp_off_k: float = 299.15,
        coolant: CoolantParams = DEFAULT_COOLANT,
    ):
        if temp_off_k >= temp_on_k:
            raise ValueError("temp_off_k must be below temp_on_k (hysteresis)")
        self._alpha = smoothing
        self._recharge_w = recharge_power_w
        self._soe_target = soe_target_percent
        self._t_on = temp_on_k
        self._t_off = temp_off_k
        self._coolant = coolant
        self._ema_w: np.ndarray | None = None
        self._cooling = np.zeros(0, dtype=bool)

    def reset(self, m: int) -> None:
        """Clear every column's EMA and disengage the thermostats."""
        self._ema_w = None
        self._cooling = np.zeros(m, dtype=bool)

    def control(
        self,
        request_w: np.ndarray,
        battery_temp_k: np.ndarray,
        cap_soe_percent: np.ndarray,
    ) -> BatchDecision:
        """Shave peaks above the EMA; thermostat the cooler, per column.

        All columns start the route together, so the scalar policy's
        first-call EMA seeding happens batch-wide on step 0.
        """
        if self._ema_w is None:
            self._ema_w = np.maximum(request_w, 0.0).astype(float)
        else:
            self._ema_w = self._ema_w + self._alpha * (request_w - self._ema_w)

        surplus = request_w - self._ema_w
        recharge_bus = -np.minimum(
            self._recharge_w, np.maximum(0.0, -surplus)
        )
        cap_bus = np.where(
            surplus > 0,
            surplus,
            np.where(cap_soe_percent < self._soe_target, recharge_bus, 0.0),
        )

        was_on = self._cooling
        turn_off = was_on & (battery_temp_k <= self._t_off)
        turn_on = ~was_on & (battery_temp_k >= self._t_on)
        self._cooling = (was_on & ~turn_off) | turn_on

        return _zeros_decision(
            len(was_on),
            cap_bus_w=cap_bus,
            cooling_active=self._cooling.copy(),
            inlet_temp_k=self._coolant.min_inlet_temp_k,
        )


#: methodology name -> batched policy factory (baselines only)
BATCHED_CONTROLLERS = {
    "parallel": lambda coolant: BatchedParallelPassive(),
    "cooling": lambda coolant: BatchedCoolingOnly(coolant=coolant),
    "dual": lambda coolant: BatchedDualThreshold(),
    "heuristic": lambda coolant: BatchedHybridHeuristic(coolant=coolant),
}


def build_batched_controller(methodology: str, coolant: CoolantParams):
    """Instantiate the batched policy for a baseline methodology."""
    try:
        factory = BATCHED_CONTROLLERS[methodology]
    except KeyError:
        raise ValueError(
            f"no batched policy for methodology {methodology!r}; "
            f"lockstep supports {sorted(BATCHED_CONTROLLERS)}"
        ) from None
    return factory(coolant)
