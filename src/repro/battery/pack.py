"""Battery pack: series/parallel aggregation of cells with lumped state.

The pack exposes exactly the quantities the HEES architectures and the
cooling loop need:

* electrical: terminal power <-> per-cell current (all series strings share
  the same current; parallel strings split it evenly in this lumped model),
* thermal: total generated heat and total heat capacity (the temperature
  itself is advanced by :class:`repro.cooling.CoolingLoop`, Eq. 14),
* aging: accumulated capacity loss per Eq. 5.

State updates happen through :meth:`BatteryPack.apply_power`; read-only
prediction helpers (used by the MPC rollout) never mutate state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.battery.aging import AgingModel
from repro.battery.electrical import BatteryElectrical
from repro.battery.params import CellParams, NCR18650A
from repro.battery.thermal import heat_generation_w
from repro.utils.units import ah_to_coulomb
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PackConfig:
    """Series/parallel layout of the pack.

    Attributes
    ----------
    series:
        Cells in series per string (sets pack voltage).
    parallel:
        Strings in parallel (sets pack capacity and current capability).
    cell:
        Cell parameter set.
    """

    series: int = 96
    parallel: int = 30
    cell: CellParams = NCR18650A

    def __post_init__(self):
        if self.series < 1 or self.parallel < 1:
            raise ValueError("series and parallel must be >= 1")

    @property
    def cell_count(self) -> int:
        """Total number of cells."""
        return self.series * self.parallel

    @property
    def nominal_voltage_v(self) -> float:
        """Nominal pack voltage [V]."""
        return self.series * self.cell.nominal_voltage_v

    @property
    def capacity_ah(self) -> float:
        """Pack capacity [Ah]."""
        return self.parallel * self.cell.capacity_ah

    @property
    def energy_kwh(self) -> float:
        """Nominal pack energy [kWh]."""
        return self.nominal_voltage_v * self.capacity_ah / 1000.0

    @property
    def heat_capacity_j_per_k(self) -> float:
        """Lumped pack heat capacity C_b [J/K] (Eq. 14)."""
        return self.cell_count * self.cell.heat_capacity_j_per_k

    @property
    def max_power_w(self) -> float:
        """Pack discharge-power ceiling [W] at nominal voltage (constraint C6)."""
        return (
            self.parallel
            * self.cell.max_current_a
            * self.series
            * self.cell.nominal_voltage_v
        )


#: Default layout: 96s30p NCR18650A, ~32 kWh / ~345 V - a compact-EV-class
#: pack in a full-size vehicle, which is what makes thermal management
#: critical (see DESIGN.md and the paper's introduction).
DEFAULT_PACK = PackConfig()


@dataclass
class PackState:
    """Mutable pack state carried between simulation steps.

    Capacity loss lives in :class:`repro.battery.aging.AgingModel` (single
    source of truth); read it via :attr:`BatteryPack.loss_percent`.
    """

    soc_percent: float = 100.0
    temp_k: float = 298.0


@dataclass(frozen=True)
class PackStepResult:
    """Outcome of one electrical step of the pack.

    Attributes
    ----------
    cell_current_a:
        Per-cell current [A] (positive = discharge).
    pack_current_a:
        Total pack current [A].
    terminal_power_w:
        Power actually delivered at the pack terminals [W] (may be below the
        request if the current limit clipped it).
    heat_w:
        Total heat generated in the pack [W] (Eq. 4 summed over cells).
    chem_energy_j:
        Energy drawn from the cell chemistry, Voc*I*dt summed [J]; this is
        the ``dE_bat`` of the paper's cost function Eq. 19.
    loss_increment_percent:
        Capacity loss added this step [%] (Eq. 5).
    clipped:
        True when the current limit reduced the delivered power.
    """

    cell_current_a: float
    pack_current_a: float
    terminal_power_w: float
    heat_w: float
    chem_energy_j: float
    loss_increment_percent: float
    clipped: bool


class BatteryPack:
    """Lumped battery-pack model.

    Parameters
    ----------
    config:
        Series/parallel layout.
    initial_soc_percent:
        Starting SoC [%] (Algorithm 1 initializes at 100).
    initial_temp_k:
        Starting temperature [K] (Algorithm 1 initializes at 298).
    """

    #: Constraint C4 bounds.
    SOC_MIN = 20.0
    SOC_MAX = 100.0

    def __init__(
        self,
        config: PackConfig = DEFAULT_PACK,
        initial_soc_percent: float = 100.0,
        initial_temp_k: float = 298.0,
    ):
        check_in_range(initial_soc_percent, 0.0, 100.0, "initial_soc_percent")
        check_positive(initial_temp_k, "initial_temp_k")
        self._config = config
        self._electrical = BatteryElectrical(config.cell)
        self._aging = AgingModel(config.cell)
        self._state = PackState(
            soc_percent=initial_soc_percent, temp_k=initial_temp_k
        )

    # ------------------------------------------------------------------ #
    # accessors

    @property
    def config(self) -> PackConfig:
        """Pack layout."""
        return self._config

    @property
    def electrical(self) -> BatteryElectrical:
        """Cell electrical model (shared with predictive rollouts)."""
        return self._electrical

    @property
    def state(self) -> PackState:
        """Current mutable state."""
        return self._state

    @property
    def soc_percent(self) -> float:
        """State of charge [%]."""
        return self._state.soc_percent

    @property
    def temp_k(self) -> float:
        """Pack temperature [K]."""
        return self._state.temp_k

    @property
    def loss_percent(self) -> float:
        """Accumulated capacity loss [%]."""
        return self._aging.loss_percent

    def set_temperature(self, temp_k: float):
        """Update the pack temperature (called by the cooling loop)."""
        self._state.temp_k = check_positive(temp_k, "temp_k")

    # ------------------------------------------------------------------ #
    # pack-level electrical quantities

    def open_circuit_voltage(self) -> float:
        """Pack open-circuit voltage [V] at the current SoC."""
        cell_voc = float(
            self._electrical.open_circuit_voltage(self._state.soc_percent)
        )
        return self._config.series * cell_voc

    def internal_resistance(self) -> float:
        """Pack internal resistance [Ohm] at the current SoC and temperature."""
        cell_r = float(
            self._electrical.internal_resistance(
                self._state.soc_percent, self._state.temp_k
            )
        )
        return cell_r * self._config.series / self._config.parallel

    def max_discharge_power_w(self) -> float:
        """Pack power ceiling [W] at the cell current limit (constraint C6)."""
        per_cell = self._electrical.max_discharge_power(
            self._state.soc_percent, self._state.temp_k
        )
        return max(0.0, per_cell) * self._config.cell_count

    def discharge_headroom_j(self) -> float:
        """Usable energy left above the SoC floor [J] (coarse, at nominal V)."""
        usable_fraction = max(
            0.0, (self._state.soc_percent - self.SOC_MIN) / 100.0
        )
        return usable_fraction * self._config.energy_kwh * 3.6e6

    # ------------------------------------------------------------------ #
    # stepping

    def apply_power(self, terminal_power_w: float, dt: float) -> PackStepResult:
        """Draw ``terminal_power_w`` from the pack for ``dt`` seconds.

        Positive power discharges, negative charges (regen or UC recharge
        routed into the battery is *not* expected here - the HEES router
        decides where regen goes).  Current is clipped at the cell rating;
        SoC is clipped at the C4 bounds (an empty pack delivers nothing).
        Returns the realized step quantities; pack temperature is *not*
        advanced here (the cooling loop owns Eq. 14).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        cfg = self._config
        state = self._state
        per_cell_power = terminal_power_w / cfg.cell_count

        cell_i = self._electrical.current_for_power(
            per_cell_power, state.soc_percent, state.temp_k
        )
        clipped = False
        limit = cfg.cell.max_current_a
        if cell_i > limit:
            cell_i, clipped = limit, True
        elif cell_i < -limit:
            cell_i, clipped = -limit, True

        # an SoC-floor-limited pack cannot discharge; a full pack cannot charge
        if state.soc_percent <= self.SOC_MIN and cell_i > 0:
            cell_i, clipped = 0.0, True
        if state.soc_percent >= self.SOC_MAX and cell_i < 0:
            cell_i, clipped = 0.0, True

        voc = float(self._electrical.open_circuit_voltage(state.soc_percent))
        res = float(
            self._electrical.internal_resistance(state.soc_percent, state.temp_k)
        )
        v_term = voc - cell_i * res
        realized_power = cell_i * v_term * cfg.cell_count

        heat_cell = float(
            heat_generation_w(
                cell_i,
                state.soc_percent,
                state.temp_k,
                cfg.cell,
                electrical=self._electrical,
            )
        )
        heat = max(0.0, heat_cell) * cfg.cell_count

        chem_energy = voc * cell_i * dt * cfg.cell_count
        loss_inc = self._aging.step(cell_i, state.temp_k, dt)

        new_soc = self._electrical.soc_after(state.soc_percent, cell_i, dt)
        state.soc_percent = min(self.SOC_MAX, max(0.0, new_soc))

        return PackStepResult(
            cell_current_a=cell_i,
            pack_current_a=cell_i * cfg.parallel,
            terminal_power_w=realized_power,
            heat_w=heat,
            chem_energy_j=chem_energy,
            loss_increment_percent=loss_inc,
            clipped=clipped,
        )

    def reset(self, soc_percent: float = 100.0, temp_k: float = 298.0):
        """Restore initial conditions (fresh route)."""
        check_in_range(soc_percent, 0.0, 100.0, "soc_percent")
        self._state = PackState(soc_percent=soc_percent, temp_k=temp_k)
        self._aging.reset()


# ---------------------------------------------------------------------- #
# lockstep (struct-of-arrays) twin


@dataclass(frozen=True)
class PackStepBatch:
    """Vectorized :class:`PackStepResult`: one array entry per scenario."""

    cell_current_a: np.ndarray
    terminal_power_w: np.ndarray
    heat_w: np.ndarray
    chem_energy_j: np.ndarray
    loss_increment_percent: np.ndarray
    clipped: np.ndarray


class BatteryPackVec:
    """Struct-of-arrays battery pack advancing M scenarios in lockstep.

    Mirrors :meth:`BatteryPack.apply_power` expression-for-expression (same
    operation order, branches as masks) so each column of the batch evolves
    bitwise-identically to a scalar :class:`BatteryPack` run of that
    scenario.  All M packs share one :class:`PackConfig`; SoC and
    temperature are per-column state.
    """

    SOC_MIN = BatteryPack.SOC_MIN
    SOC_MAX = BatteryPack.SOC_MAX

    def __init__(
        self,
        config: PackConfig,
        initial_soc_percent,
        initial_temp_k,
    ):
        self._config = config
        self._electrical = BatteryElectrical(config.cell)
        self._aging = AgingModel(config.cell)
        soc = np.asarray(initial_soc_percent, dtype=float)
        temp = np.asarray(initial_temp_k, dtype=float)
        soc, temp = np.broadcast_arrays(soc, temp)
        self.soc_percent = soc.astype(float).copy()
        self.temp_k = temp.astype(float).copy()

    @property
    def config(self) -> PackConfig:
        """Pack layout (shared by every column)."""
        return self._config

    @property
    def electrical(self) -> BatteryElectrical:
        """Cell electrical model (shared by every column)."""
        return self._electrical

    def set_temperature(self, temp_k: np.ndarray):
        """Update the per-column pack temperatures (cooling loop)."""
        self.temp_k = temp_k

    def open_circuit_voltage(self) -> np.ndarray:
        """Pack open-circuit voltage [V] per column."""
        cell_voc = self._electrical.open_circuit_voltage(self.soc_percent)
        return self._config.series * cell_voc

    def internal_resistance(self) -> np.ndarray:
        """Pack internal resistance [Ohm] per column."""
        cell_r = self._electrical.internal_resistance(self.soc_percent, self.temp_k)
        return cell_r * self._config.series / self._config.parallel

    def max_discharge_power_w(self) -> np.ndarray:
        """Pack power ceiling [W] per column (constraint C6)."""
        i_max = self._config.cell.max_current_a
        voc = self._electrical.open_circuit_voltage(self.soc_percent)
        res = self._electrical.internal_resistance(self.soc_percent, self.temp_k)
        per_cell = i_max * (voc - i_max * res)
        return np.maximum(0.0, per_cell) * self._config.cell_count

    def apply_power(self, terminal_power_w: np.ndarray, dt: float) -> PackStepBatch:
        """Vectorized :meth:`BatteryPack.apply_power` over all columns."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        cfg = self._config
        elec = self._electrical
        soc, temp = self.soc_percent, self.temp_k
        per_cell_power = terminal_power_w / cfg.cell_count

        voc = elec.open_circuit_voltage(soc)
        res = elec.internal_resistance(soc, temp)
        # current_for_power, elementwise: physical root of I(Voc - I R) = P,
        # capped at the maximum-power point when the demand exceeds it
        disc = voc * voc - 4.0 * res * per_cell_power
        root = np.sqrt(np.maximum(disc, 0.0))
        cell_i = np.where(
            disc < 0.0, voc / (2.0 * res), (voc - root) / (2.0 * res)
        )
        cell_i = np.where(np.abs(per_cell_power) < 1e-12, 0.0, cell_i)

        limit = cfg.cell.max_current_a
        clipped = (cell_i > limit) | (cell_i < -limit)
        cell_i = np.clip(cell_i, -limit, limit)

        # an SoC-floor-limited pack cannot discharge; a full pack cannot charge
        floor_block = (soc <= self.SOC_MIN) & (cell_i > 0)
        ceil_block = (soc >= self.SOC_MAX) & (cell_i < 0)
        blocked = floor_block | ceil_block
        clipped = clipped | blocked
        cell_i = np.where(blocked, 0.0, cell_i)

        v_term = voc - cell_i * res
        realized_power = cell_i * v_term * cfg.cell_count

        # Eq. 4 heat with the same R(SoC, T) evaluation as the scalar path
        joule = cell_i**2 * res
        entropic = cell_i * temp * cfg.cell.entropy_coeff_v_per_k
        heat = np.maximum(0.0, joule + entropic) * cfg.cell_count

        chem_energy = voc * cell_i * dt * cfg.cell_count
        loss_inc = self._aging.loss_rate(cell_i, temp) * dt

        new_soc = soc - 100.0 * cell_i * dt / ah_to_coulomb(cfg.cell.capacity_ah)
        self.soc_percent = np.minimum(self.SOC_MAX, np.maximum(0.0, new_soc))

        return PackStepBatch(
            cell_current_a=cell_i,
            terminal_power_w=realized_power,
            heat_w=heat,
            chem_energy_j=chem_energy,
            loss_increment_percent=loss_inc,
            clipped=clipped,
        )
