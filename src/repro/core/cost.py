"""Cost weights for the OTEM objective (paper Eq. 19) and its shaping terms.

The paper's cost is

    F = sum  w1 (P_c dt)  +  w2 Q_loss  +  w3 (dE_bat + dE_cap).

The units differ wildly (joules vs percent), so the defaults put the three
terms on comparable footing for the default pack:

* cooling energy and HEES energy are joules -> w1 = w3 = 1 keeps them
  directly comparable (a cooling joule is worth a driving joule);
* Q_loss over one aggressive route is O(1e-1) percent while energies are
  O(1e7) J, so w2 ~ 5e10 makes a percent of battery life worth ~50 MJ,
  i.e. the controller will spend ~1.4 kWh of cooling/HEES energy to save
  0.1% capacity - the trade the paper's Fig. 8/9 exhibit.

``hinge_*`` are the quadratic penalty gains for the softened state
constraints C1/C4/C5/C6; ``terminal_*`` price the horizon-end state at its
restoration cost (see DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CostWeights:
    """Objective weights of the OTEM MPC.

    Attributes
    ----------
    w1:
        Weight of the active-cooling energy term [-/J].
    w2:
        Weight of the capacity-loss term [-/%].
    w3:
        Weight of the HEES energy term [-/J].
    hinge_temp:
        Quadratic penalty gain on T_b above the C1 limit [1/K^2].
    hinge_soc:
        Quadratic penalty gain on SoC below the C4 floor [1/%^2].
    hinge_soe:
        Quadratic penalty gain on SoE outside the C5 window [1/%^2].
    hinge_power:
        Quadratic penalty gain on battery power above C6 [1/W^2].
    terminal_soe_ref:
        SoE the horizon end is priced against [%] - the "energy budget"
        OTEM keeps in reserve.
    terminal_temp_ref:
        Temperature the horizon end is priced against [K] - the "thermal
        budget" (pre-cooled headroom).
    terminal_energy_gain:
        Multiplier on the refill-energy price of a depleted bank [-].
    terminal_thermal_gain:
        Multiplier on the cooling-energy price of a hot pack [-].
    terminal_refill_power_w:
        Battery power assumed for the post-horizon bank refill [W]; prices
        the *aging* incurred by recharging, so draining the bank is never
        treated as free battery rest (see DESIGN.md section 6).
    terminal_future_s:
        Characteristic driving time beyond the horizon [s] over which a
        hot pack keeps aging faster; prices horizon-end temperature in
        aging currency (the lever that makes pre-cooling rational inside a
        horizon too short to see its aging payoff directly).
    terminal_typical_current_a:
        Per-cell current assumed for that future driving [A].
    """

    w1: float = 1.0
    w2: float = 2.0e11
    w3: float = 1.0
    hinge_temp: float = 1.0e7
    hinge_soc: float = 1.0e7
    hinge_soe: float = 1.0e7
    hinge_power: float = 3.0e-2
    terminal_soe_ref: float = 85.0
    terminal_temp_ref: float = 298.15
    terminal_energy_gain: float = 1.3
    terminal_thermal_gain: float = 1.5
    terminal_refill_power_w: float = 8_000.0
    terminal_future_s: float = 900.0
    terminal_typical_current_a: float = 2.0

    def __post_init__(self):
        check_in_range(self.w1, 0.0, 1e12, "w1")
        check_in_range(self.w2, 0.0, 1e15, "w2")
        check_in_range(self.w3, 0.0, 1e12, "w3")
        check_positive(self.hinge_temp, "hinge_temp")
        check_positive(self.hinge_soc, "hinge_soc")
        check_positive(self.hinge_soe, "hinge_soe")
        check_positive(self.hinge_power, "hinge_power")
        check_in_range(self.terminal_soe_ref, 0.0, 100.0, "terminal_soe_ref")
        check_positive(self.terminal_temp_ref, "terminal_temp_ref")
        check_in_range(self.terminal_energy_gain, 0.0, 100.0, "terminal_energy_gain")
        check_in_range(self.terminal_thermal_gain, 0.0, 100.0, "terminal_thermal_gain")
        check_positive(self.terminal_refill_power_w, "terminal_refill_power_w")
        check_positive(self.terminal_future_s, "terminal_future_s")
        check_positive(self.terminal_typical_current_a, "terminal_typical_current_a")
