"""Heuristic hybrid-controller tests."""

import pytest

from repro.controllers.heuristic import HybridHeuristicController
from repro.controllers.base import Architecture
from repro.sim.engine import Simulator
from tests.controllers.test_baselines import make_obs


class TestConstruction:
    def test_declares_hybrid_with_cooling(self):
        c = HybridHeuristicController()
        assert c.architecture is Architecture.HYBRID
        assert c.uses_cooling

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            HybridHeuristicController(smoothing=0.0)

    def test_rejects_inverted_thermostat(self):
        with pytest.raises(ValueError):
            HybridHeuristicController(temp_on_k=298.0, temp_off_k=299.0)


class TestPeakShaving:
    def test_first_step_initializes_ema(self):
        c = HybridHeuristicController()
        c.control(make_obs(power=10_000.0))
        assert c.ema_w == pytest.approx(10_000.0)

    def test_spike_routed_to_cap(self):
        c = HybridHeuristicController()
        c.control(make_obs(power=10_000.0))
        d = c.control(make_obs(power=60_000.0))
        assert d.cap_bus_w > 40_000.0

    def test_lull_recharges_cap(self):
        c = HybridHeuristicController()
        c.control(make_obs(power=20_000.0))
        d = c.control(make_obs(power=2_000.0, soe=50.0))
        assert d.cap_bus_w < 0

    def test_no_recharge_when_full(self):
        c = HybridHeuristicController()
        c.control(make_obs(power=20_000.0))
        d = c.control(make_obs(power=2_000.0, soe=95.0))
        assert d.cap_bus_w == 0.0

    def test_recharge_bounded_by_lull_depth(self):
        c = HybridHeuristicController(recharge_power_w=50_000.0)
        c.control(make_obs(power=20_000.0))
        d = c.control(make_obs(power=15_000.0, soe=50.0))
        # lull is only ~5 kW deep; recharge must not exceed it
        assert -6_000.0 < d.cap_bus_w < 0.0

    def test_ema_tracks_demand(self):
        c = HybridHeuristicController(smoothing=0.5)
        c.control(make_obs(power=0.0))
        c.control(make_obs(power=10_000.0))
        assert c.ema_w == pytest.approx(5_000.0)

    def test_reset_clears_state(self):
        c = HybridHeuristicController()
        c.control(make_obs(power=20_000.0, temp_k=310.0))
        c.reset()
        assert c.ema_w is None


class TestThermostat:
    def test_engages_when_hot(self):
        c = HybridHeuristicController()
        d = c.control(make_obs(temp_k=305.0))
        assert d.cooling_active

    def test_hysteresis(self):
        c = HybridHeuristicController()
        c.control(make_obs(temp_k=305.0))
        d = c.control(make_obs(temp_k=300.0))  # between off and on
        assert d.cooling_active
        d = c.control(make_obs(temp_k=298.0))
        assert not d.cooling_active


class TestEndToEnd:
    def test_runs_a_route(self, short_request):
        result = Simulator(HybridHeuristicController()).run(short_request)
        assert result.metrics.unmet_energy_j < 2e5
        assert result.qloss_percent > 0

    def test_shaves_battery_current_vs_battery_only(self, short_request):
        from repro.controllers.cooling_only import CoolingOnlyController
        import numpy as np

        heuristic = Simulator(HybridHeuristicController()).run(short_request)
        battery_only = Simulator(CoolingOnlyController()).run(short_request)
        assert np.max(heuristic.trace.cell_current_a) <= np.max(
            battery_only.trace.cell_current_a
        )
