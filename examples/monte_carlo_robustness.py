#!/usr/bin/env python
"""Monte-Carlo robustness: does the comparison survive traffic variation?

The paper evaluates on the nominal drive cycles.  Real traffic never
replays a cycle exactly, so this example re-runs the methodology
comparison over a deterministic ensemble of traffic-perturbed variants
(see ``repro.drivecycle.perturb``) and reports the distribution of the
capacity-loss ratio - checking that OTEM's win is not an artifact of one
specific speed trace.

Usage::

    python examples/monte_carlo_robustness.py [cycle] [members]
"""

import sys

import numpy as np

from repro.controllers.dual_threshold import DualThresholdController
from repro.controllers.parallel_passive import ParallelPassiveController
from repro.core.otem import OTEMController
from repro.drivecycle.library import get_cycle
from repro.drivecycle.perturb import ensemble
from repro.sim.engine import Simulator
from repro.ultracap.params import UltracapParams
from repro.vehicle.powertrain import Powertrain


def run(controller_factory, request):
    controller = controller_factory()
    preview = (
        controller.required_preview_steps(request.dt)
        if isinstance(controller, OTEMController)
        else 10
    )
    sim = Simulator(controller, cap_params=UltracapParams(), preview_steps=preview)
    return sim.run(request)


def main():
    cycle_name = sys.argv[1] if len(sys.argv) > 1 else "us06"
    members = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    base = get_cycle(cycle_name, repeat=2)
    variants = ensemble(base, members)
    pt = Powertrain()

    print(f"Ensemble: {members} traffic variants of {base.name}")
    ratios_otem = []
    ratios_dual = []
    for variant in variants:
        request = pt.power_request(variant)
        parallel = run(ParallelPassiveController, request)
        dual = run(DualThresholdController, request)
        otem = run(lambda: OTEMController(cap_params=UltracapParams()), request)
        base_q = parallel.qloss_percent
        ratios_otem.append(otem.qloss_percent / base_q)
        ratios_dual.append(dual.qloss_percent / base_q)
        print(
            f"  {variant.name:>10}: parallel {base_q:.4f}%  "
            f"dual {100 * ratios_dual[-1]:5.1f}%  otem {100 * ratios_otem[-1]:5.1f}%"
        )

    print()
    print(
        f"OTEM capacity-loss ratio: {100 * np.mean(ratios_otem):.1f}% "
        f"+/- {100 * np.std(ratios_otem):.1f}% of parallel "
        f"(worst member {100 * np.max(ratios_otem):.1f}%)"
    )
    print(
        f"Dual capacity-loss ratio: {100 * np.mean(ratios_dual):.1f}% "
        f"+/- {100 * np.std(ratios_dual):.1f}%"
    )
    if max(ratios_otem) < 1.0:
        print("OTEM beats the parallel baseline on every ensemble member.")


if __name__ == "__main__":
    main()
