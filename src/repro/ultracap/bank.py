"""Ultracapacitor bank state and stepping (Eq. 6-9).

The bank tracks State-of-Energy (SoE); voltage follows
``Vcap = V_r sqrt(SoE/100)`` (Eq. 8) and energy integrates
``Vcap * Icap`` (Eq. 9).  Power transfer is limited by the rated power
(constraint C7) and by the C5 SoE window - a depleted bank delivers
nothing, a full bank accepts nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ultracap.params import UltracapParams
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class UltracapStepResult:
    """Outcome of one step of the bank.

    Attributes
    ----------
    power_w:
        Power actually transferred at the bank terminals [W]
        (positive = discharge).
    current_a:
        Bank current [A] at the step's mean voltage.
    energy_j:
        Energy removed from the bank this step [J]; this is the ``dE_cap``
        of the paper's Eq. 19 (negative while recharging).
    clipped:
        True when a power or SoE limit reduced the transfer.
    """

    power_w: float
    current_a: float
    energy_j: float
    clipped: bool


class UltracapBank:
    """Ultracapacitor bank with SoE state.

    Parameters
    ----------
    params:
        Bank parameters.
    initial_soe_percent:
        Starting SoE [%] (Algorithm 1 initializes at 100).
    """

    def __init__(self, params: UltracapParams, initial_soe_percent: float = 100.0):
        check_in_range(initial_soe_percent, 0.0, 100.0, "initial_soe_percent")
        self._p = params
        self._soe = float(initial_soe_percent)

    @property
    def params(self) -> UltracapParams:
        """Bank parameters in use."""
        return self._p

    @property
    def soe_percent(self) -> float:
        """State of energy [%]."""
        return self._soe

    @property
    def energy_j(self) -> float:
        """Stored energy [J]."""
        return self._soe / 100.0 * self._p.energy_capacity_j

    def voltage(self, soe_percent: float | None = None) -> float:
        """Terminal voltage Vcap [V] (Eq. 8) at the given (or current) SoE."""
        soe = self._soe if soe_percent is None else soe_percent
        return self._p.rated_voltage_v * float(np.sqrt(max(soe, 0.0) / 100.0))

    def headroom_j(self) -> float:
        """Energy the bank can still absorb before hitting SoE-max [J]."""
        return (
            max(0.0, self._p.soe_max_percent - self._soe)
            / 100.0
            * self._p.energy_capacity_j
        )

    def available_j(self) -> float:
        """Energy deliverable before the C5 floor [J] (management view).

        Zero (not negative) when the bank already sits below the floor -
        a below-floor bank must never turn a discharge request into a
        phantom charge.
        """
        return (
            max(0.0, self._soe - self._p.soe_min_percent)
            / 100.0
            * self._p.energy_capacity_j
        )

    def reserve_j(self) -> float:
        """Emergency energy between the C5 floor and the hard floor [J]."""
        floor = min(self._soe, self._p.soe_min_percent)
        return (
            max(0.0, floor - self._p.soe_hard_min_percent)
            / 100.0
            * self._p.energy_capacity_j
        )

    def max_discharge_power_w(self, dt: float) -> float:
        """Largest sustainable discharge power for a step of ``dt`` [W]."""
        return min(self._p.max_power_w, self.available_j() / dt if dt > 0 else 0.0)

    def max_charge_power_w(self, dt: float) -> float:
        """Largest sustainable charge power for a step of ``dt`` [W] (positive)."""
        return min(self._p.max_power_w, self.headroom_j() / dt if dt > 0 else 0.0)

    def apply_power(
        self, power_w: float, dt: float, tap_reserve: bool = False
    ) -> UltracapStepResult:
        """Transfer ``power_w`` for ``dt`` seconds (positive = discharge).

        The transfer is clipped at the rated power (C7) and at the SoE
        window (C5).  Energy bookkeeping uses Eq. 9; the bank's small series
        resistance is neglected here as in the paper.

        ``tap_reserve`` lets a discharge dip below the C5 floor down to the
        physical hard floor - the emergency path the hybrid plant uses so a
        management constraint never starves the EV load.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        p = self._p
        requested = power_w
        power = float(np.clip(power_w, -p.max_power_w, p.max_power_w))
        if power > 0:
            deliverable = self.available_j()
            if tap_reserve:
                deliverable += self.reserve_j()
            power = min(power, deliverable / dt)
        elif power < 0:
            power = -min(-power, self.headroom_j() / dt)
        energy = power * dt
        new_energy_j = self.energy_j - energy
        mean_voltage = 0.5 * (
            self.voltage() + self.voltage(100.0 * new_energy_j / p.energy_capacity_j)
        )
        current = power / mean_voltage if mean_voltage > 1e-9 else 0.0
        self._soe = 100.0 * new_energy_j / p.energy_capacity_j
        return UltracapStepResult(
            power_w=power,
            current_a=current,
            energy_j=energy,
            clipped=abs(power - requested) > 1e-9,
        )

    def reset(self, soe_percent: float = 100.0):
        """Restore initial conditions."""
        check_in_range(soe_percent, 0.0, 100.0, "soe_percent")
        self._soe = float(soe_percent)


# ---------------------------------------------------------------------- #
# lockstep (struct-of-arrays) twin


@dataclass(frozen=True)
class UltracapStepBatch:
    """Vectorized :class:`UltracapStepResult`: one array entry per scenario."""

    power_w: np.ndarray
    current_a: np.ndarray
    energy_j: np.ndarray
    clipped: np.ndarray


class UltracapBankVec:
    """Struct-of-arrays ultracap bank advancing M scenarios in lockstep.

    Unlike the battery pack, bank parameters vary across a sweep (the
    paper's Table I sizes), so every :class:`UltracapParams` field the
    stepping touches is stacked into a per-column array.  The update
    mirrors :meth:`UltracapBank.apply_power` expression-for-expression so
    each column is bitwise-identical to a scalar bank run.
    """

    def __init__(self, params, initial_soe_percent: float = 100.0):
        params = list(params)
        self.rated_voltage_v = np.array([p.rated_voltage_v for p in params])
        self.max_power_w = np.array([p.max_power_w for p in params])
        self.energy_capacity_j = np.array([p.energy_capacity_j for p in params])
        self.soe_min_percent = np.array([p.soe_min_percent for p in params])
        self.soe_max_percent = np.array([p.soe_max_percent for p in params])
        self.soe_hard_min_percent = np.array(
            [p.soe_hard_min_percent for p in params]
        )
        self.internal_resistance_ohm = np.array(
            [p.internal_resistance_ohm for p in params]
        )
        self.soe_percent = np.full(len(params), float(initial_soe_percent))

    def reset(self, soe_percent) -> None:
        """Restore per-column initial SoE."""
        soe = np.asarray(soe_percent, dtype=float)
        self.soe_percent = np.broadcast_to(
            soe, self.soe_percent.shape
        ).astype(float).copy()

    def voltage(self, soe_percent=None) -> np.ndarray:
        """Terminal voltage Vcap [V] (Eq. 8) per column."""
        soe = self.soe_percent if soe_percent is None else soe_percent
        return self.rated_voltage_v * np.sqrt(np.maximum(soe, 0.0) / 100.0)

    @property
    def energy_j(self) -> np.ndarray:
        """Stored energy [J] per column."""
        return self.soe_percent / 100.0 * self.energy_capacity_j

    def headroom_j(self) -> np.ndarray:
        """Energy each bank can still absorb before SoE-max [J]."""
        return (
            np.maximum(0.0, self.soe_max_percent - self.soe_percent)
            / 100.0
            * self.energy_capacity_j
        )

    def available_j(self) -> np.ndarray:
        """Energy deliverable before the C5 floor [J] per column."""
        return (
            np.maximum(0.0, self.soe_percent - self.soe_min_percent)
            / 100.0
            * self.energy_capacity_j
        )

    def reserve_j(self) -> np.ndarray:
        """Emergency energy between the C5 floor and the hard floor [J]."""
        floor = np.minimum(self.soe_percent, self.soe_min_percent)
        return (
            np.maximum(0.0, floor - self.soe_hard_min_percent)
            / 100.0
            * self.energy_capacity_j
        )

    def max_discharge_power_w(self, dt: float) -> np.ndarray:
        """Largest sustainable discharge power per column for ``dt`` [W]."""
        return np.minimum(
            self.max_power_w, self.available_j() / dt if dt > 0 else 0.0
        )

    def max_charge_power_w(self, dt: float) -> np.ndarray:
        """Largest sustainable charge power per column for ``dt`` [W]."""
        return np.minimum(
            self.max_power_w, self.headroom_j() / dt if dt > 0 else 0.0
        )

    def apply_power(
        self,
        power_w: np.ndarray,
        dt: float,
        tap_reserve: bool = False,
        active=None,
    ) -> UltracapStepBatch:
        """Vectorized :meth:`UltracapBank.apply_power` over all columns.

        ``active`` (optional boolean mask) restricts the update to a subset
        of columns: inactive columns keep their exact SoE bit pattern and
        report zero power/current/energy - the lockstep equivalent of the
        scalar plants *not calling* ``apply_power`` on a branch.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        requested = power_w
        power = np.clip(power_w, -self.max_power_w, self.max_power_w)
        deliverable = self.available_j()
        if tap_reserve:
            deliverable = deliverable + self.reserve_j()
        power = np.where(
            power > 0, np.minimum(power, deliverable / dt), power
        )
        power = np.where(
            power < 0, -np.minimum(-power, self.headroom_j() / dt), power
        )
        energy = power * dt
        new_energy_j = self.energy_j - energy
        mean_voltage = 0.5 * (
            self.voltage()
            + self.voltage(100.0 * new_energy_j / self.energy_capacity_j)
        )
        current = np.where(
            mean_voltage > 1e-9,
            power / np.maximum(mean_voltage, 1e-30),
            0.0,
        )
        new_soe = 100.0 * new_energy_j / self.energy_capacity_j
        clipped = np.abs(power - requested) > 1e-9
        if active is None:
            self.soe_percent = new_soe
        else:
            self.soe_percent = np.where(active, new_soe, self.soe_percent)
            power = np.where(active, power, 0.0)
            current = np.where(active, current, 0.0)
            energy = np.where(active, energy, 0.0)
            clipped = clipped & active
        return UltracapStepBatch(
            power_w=power, current_a=current, energy_j=energy, clipped=clipped
        )
