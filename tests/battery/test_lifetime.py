"""Aging-feedback and lifetime-projection tests."""

import pytest

from repro.battery.electrical import BatteryElectrical
from repro.battery.lifetime import (
    LifetimeProjection,
    blt_improvement_percent,
    project_lifetime,
)
from repro.battery.params import NCR18650A
from repro.sim.scenario import Scenario


class TestAgedCell:
    def test_fresh_is_identity(self):
        aged = NCR18650A.aged(0.0)
        assert aged.capacity_ah == NCR18650A.capacity_ah
        assert aged.res_base == NCR18650A.res_base

    def test_capacity_shrinks_proportionally(self):
        aged = NCR18650A.aged(10.0)
        assert aged.capacity_ah == pytest.approx(0.9 * NCR18650A.capacity_ah)

    def test_resistance_grows(self):
        aged = NCR18650A.aged(20.0)
        assert aged.res_base == pytest.approx(1.8 * NCR18650A.res_base)
        assert aged.res_exp_a == pytest.approx(1.8 * NCR18650A.res_exp_a)

    def test_eol_resistance_in_literature_band(self):
        # 1.5-2x at 20% fade is the standard coupling
        aged = NCR18650A.aged(20.0)
        model_fresh = BatteryElectrical(NCR18650A)
        model_aged = BatteryElectrical(aged)
        ratio = float(
            model_aged.internal_resistance(50.0, 298.15)
            / model_fresh.internal_resistance(50.0, 298.15)
        )
        assert 1.5 <= ratio <= 2.0

    def test_voc_curve_unchanged(self):
        aged = NCR18650A.aged(15.0)
        assert aged.voc_p0 == NCR18650A.voc_p0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            NCR18650A.aged(-1.0)
        with pytest.raises(ValueError):
            NCR18650A.aged(150.0)

    def test_aged_cell_runs_hotter(self):
        """The feedback mechanism: same power, more heat when aged."""
        from repro.battery.pack import BatteryPack, PackConfig

        fresh = BatteryPack(PackConfig())
        aged = BatteryPack(PackConfig(cell=NCR18650A.aged(15.0)))
        r_fresh = fresh.apply_power(50_000.0, 1.0)
        r_aged = aged.apply_power(50_000.0, 1.0)
        assert r_aged.heat_w > r_fresh.heat_w


class FakeResult:
    def __init__(self, qloss):
        class M:
            qloss_percent = qloss

        self.metrics = M()


class TestProjectLifetime:
    def test_constant_rate_matches_naive(self):
        """With a runner that ignores degradation, feedback changes nothing."""
        proj = project_lifetime(
            Scenario(methodology="parallel", cycle="nycc"),
            stages=4,
            runner=lambda s: FakeResult(0.05),
        )
        assert proj.routes_to_eol == pytest.approx(400.0)
        assert proj.routes_to_eol_naive == pytest.approx(400.0)
        assert proj.acceleration_factor == pytest.approx(1.0)

    def test_accelerating_rate_shortens_life(self):
        rates = iter([0.05, 0.10, 0.20, 0.40])

        def runner(s):
            return FakeResult(next(rates))

        proj = project_lifetime(
            Scenario(methodology="parallel", cycle="nycc"), stages=4, runner=runner
        )
        expected = 5 / 0.05 + 5 / 0.10 + 5 / 0.20 + 5 / 0.40
        assert proj.routes_to_eol == pytest.approx(expected)
        assert proj.acceleration_factor > 1.9

    def test_stage_edges(self):
        proj = project_lifetime(
            Scenario(methodology="parallel", cycle="nycc"),
            stages=4,
            runner=lambda s: FakeResult(0.05),
        )
        assert proj.stage_loss_percent == (0.0, 5.0, 10.0, 15.0)

    def test_runner_receives_derated_pack(self):
        seen = []

        def runner(s):
            seen.append(s.pack.cell.capacity_ah)
            return FakeResult(0.05)

        project_lifetime(
            Scenario(methodology="parallel", cycle="nycc"), stages=2, runner=runner
        )
        assert seen[0] > seen[1]  # second stage has faded capacity

    def test_rejects_bad_stages(self):
        with pytest.raises(ValueError):
            project_lifetime(Scenario(), stages=1, runner=lambda s: FakeResult(0.1))

    def test_real_simulation_feedback(self):
        """End-to-end on a thermally active cycle: aged batteries fade faster.

        (On mild cycles like NYCC the effect is roughly neutral: the aged
        cell's higher resistance pushes more of the load onto the
        ultracapacitor, offsetting the extra heat - a real consequence of
        the parallel circuit, not a bug.)
        """
        proj = project_lifetime(
            Scenario(methodology="parallel", cycle="us06"), stages=2
        )
        assert proj.stage_rate_percent_per_route[1] > proj.stage_rate_percent_per_route[0]
        assert proj.acceleration_factor > 1.0


class TestBLTImprovement:
    def make(self, routes):
        return LifetimeProjection(
            methodology="x",
            cycle="c",
            stage_loss_percent=(0.0,),
            stage_rate_percent_per_route=(0.1,),
            routes_to_eol=routes,
            routes_to_eol_naive=routes,
        )

    def test_improvement(self):
        assert blt_improvement_percent(self.make(120.0), self.make(100.0)) == pytest.approx(20.0)

    def test_degradation_negative(self):
        assert blt_improvement_percent(self.make(80.0), self.make(100.0)) < 0

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            blt_improvement_percent(self.make(100.0), self.make(0.0))
