"""Robustness / failure-injection wrapper tests."""

import numpy as np
import pytest

from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.wrappers import CoolingFailure, NoisyObservations
from repro.core.otem import OTEMController
from repro.sim.engine import Simulator
from tests.controllers.test_baselines import make_obs


class TestNoisyObservations:
    def test_preserves_declaration(self):
        wrapped = NoisyObservations(CoolingOnlyController())
        assert wrapped.architecture is CoolingOnlyController.architecture
        assert wrapped.uses_cooling
        assert "noise" in wrapped.name

    def test_noise_perturbs_decisions_near_threshold(self):
        # a thermostat sitting exactly on its threshold flips with noise
        decisions = set()
        wrapped = NoisyObservations(
            CoolingOnlyController(), temp_sigma_k=2.0, seed=1
        )
        for k in range(30):
            wrapped.reset()
            wrapped._rng = np.random.default_rng(k)
            d = wrapped.control(make_obs(temp_k=299.15))
            decisions.add(d.cooling_active)
        assert decisions == {True, False}

    def test_deterministic_per_seed(self):
        a = NoisyObservations(CoolingOnlyController(), seed=7)
        b = NoisyObservations(CoolingOnlyController(), seed=7)
        da = a.control(make_obs(temp_k=299.15))
        db = b.control(make_obs(temp_k=299.15))
        assert da.cooling_active == db.cooling_active

    def test_reset_restarts_noise_sequence(self):
        w = NoisyObservations(CoolingOnlyController(), seed=3)
        first = w.control(make_obs(temp_k=299.15)).cooling_active
        w.reset()
        again = w.control(make_obs(temp_k=299.15)).cooling_active
        assert first == again

    def test_soe_clipped_to_physical_range(self):
        w = NoisyObservations(
            CoolingOnlyController(), soe_sigma_percent=50.0, seed=0
        )
        # no crash across many perturbations of an extreme SoE
        for _ in range(50):
            w.control(make_obs(soe=99.0))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            NoisyObservations(CoolingOnlyController(), temp_sigma_k=100.0)

    def test_noisy_otem_survives_route(self, short_request):
        controller = NoisyObservations(
            OTEMController(horizon=6, max_function_evals=40),
            temp_sigma_k=1.0,
            seed=0,
        )
        result = Simulator(controller, preview_steps=30).run(short_request)
        assert np.all(np.isfinite(result.trace.battery_temp_k))
        assert result.metrics.unmet_energy_j < 2e5


class TestCoolingFailure:
    def test_drops_cooling_after_failure(self):
        inner = CoolingOnlyController()
        wrapped = CoolingFailure(inner, fail_at_s=100.0)
        hot = make_obs(temp_k=310.0)
        before = wrapped.control(hot)
        assert before.cooling_active  # thermostat engaged, actuator alive

        after = wrapped.control(make_obs(temp_k=310.0, time_s=150.0))
        assert not after.cooling_active
        assert wrapped.failed

    def test_reset_rearms(self):
        wrapped = CoolingFailure(CoolingOnlyController(), fail_at_s=0.0)
        wrapped.control(make_obs(temp_k=310.0))
        assert wrapped.failed
        wrapped.reset()
        assert not wrapped.failed

    def test_failed_cooler_run_is_hotter(self, short_request):
        healthy = Simulator(
            CoolingOnlyController(), initial_temp_k=308.0
        ).run(short_request)
        failed = Simulator(
            CoolingFailure(CoolingOnlyController(), fail_at_s=0.0),
            initial_temp_k=308.0,
        ).run(short_request)
        assert (
            failed.trace.battery_temp_k[-1] > healthy.trace.battery_temp_k[-1]
        )
        assert failed.metrics.cooling_energy_j == 0.0

    def test_otem_falls_back_to_ultracap(self, short_request):
        """With a dead cooler, OTEM leans (at least) as hard on the bank."""
        healthy = Simulator(
            OTEMController(horizon=6, max_function_evals=40),
            initial_temp_k=308.0,
            preview_steps=30,
        ).run(short_request)
        failed = Simulator(
            CoolingFailure(
                OTEMController(horizon=6, max_function_evals=40), fail_at_s=0.0
            ),
            initial_temp_k=308.0,
            preview_steps=30,
        ).run(short_request)
        # the route still gets driven
        assert failed.metrics.unmet_energy_j < 2e5
        # and no cooler energy was spent
        assert failed.metrics.cooling_energy_j == 0.0
