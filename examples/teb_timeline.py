#!/usr/bin/env python
"""TEB timeline: watch OTEM prepare budget ahead of demand (paper Fig. 7).

Prints an ASCII strip chart of the power request, ultracapacitor SoE,
battery temperature and the combined TEB metric over a route, plus the
preparation score (correlation of TEB with upcoming demand).

Usage::

    python examples/teb_timeline.py [cycle] [repeat]
"""

import sys

import numpy as np

from repro.analysis.figures import fig7_data
from repro.utils.units import kelvin_to_celsius

BAR_WIDTH = 50


def strip(values, lo, hi, width=BAR_WIDTH):
    """Render one sample as a positioned marker in a fixed-width strip."""
    frac = 0.0 if hi <= lo else (values - lo) / (hi - lo)
    pos = int(np.clip(frac, 0.0, 1.0) * (width - 1))
    return "." * pos + "#" + "." * (width - 1 - pos)


def main():
    cycle = sys.argv[1] if len(sys.argv) > 1 else "us06"
    repeat = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(f"Running OTEM on {cycle} x{repeat} ...")
    data = fig7_data(cycle=cycle, repeat=repeat)

    p_hi = float(np.max(data.request_w))
    t_lo = float(np.min(data.battery_temp_k))
    t_hi = float(np.max(data.battery_temp_k))

    print()
    print(f"{'t [s]':>6}  {'P_e':^{BAR_WIDTH}}  {'SoE':^{BAR_WIDTH}}  "
          f"{'T_b':^{BAR_WIDTH}}  {'TEB':>5}")
    stride = max(1, len(data.time_s) // 40)
    for i in range(0, len(data.time_s), stride):
        print(
            f"{data.time_s[i]:>6.0f}  "
            f"{strip(data.request_w[i], 0.0, p_hi)}  "
            f"{strip(data.cap_soe_percent[i], 0.0, 100.0)}  "
            f"{strip(data.battery_temp_k[i], t_lo, t_hi)}  "
            f"{data.teb[i]:>5.2f}"
        )

    print()
    print(f"P_e strip: 0 .. {p_hi / 1000:.0f} kW   "
          f"T_b strip: {kelvin_to_celsius(t_lo):.1f} .. {kelvin_to_celsius(t_hi):.1f} C")
    print(f"TEB preparation score: {data.preparation_score:+.3f} "
          f"(> 0 means budget is raised ahead of demand - the Fig. 7 claim)")


if __name__ == "__main__":
    main()
