"""Table I generator tests (small sweep; full sweep lives in benchmarks/)."""

import pytest

from repro.analysis.tables import (
    PAPER_AVG_POWER_W,
    PAPER_CAPACITY_LOSS_PCT,
    TABLE1_METHODS,
    TABLE1_SIZES_F,
    table1_data,
)


@pytest.fixture(scope="module")
def small_table():
    return table1_data(
        sizes_f=(5_000.0, 25_000.0), methods=("parallel", "dual"), repeat=1
    )


class TestStructure:
    def test_rows_match_sizes(self, small_table):
        assert [r.size_f for r in small_table.rows] == [5_000.0, 25_000.0]

    def test_row_lookup(self, small_table):
        assert small_table.row(5_000.0).size_f == 5_000.0

    def test_row_lookup_missing(self, small_table):
        with pytest.raises(KeyError):
            small_table.row(12_345.0)

    def test_methods_present(self, small_table):
        row = small_table.row(25_000.0)
        assert set(row.avg_power_w) == {"parallel", "dual"}


class TestNormalization:
    def test_reference_cell_is_100(self, small_table):
        # parallel at the largest size defines 100%
        assert small_table.row(25_000.0).capacity_loss_pct["parallel"] == pytest.approx(
            100.0
        )

    def test_small_bank_parallel_worse(self, small_table):
        assert (
            small_table.row(5_000.0).capacity_loss_pct["parallel"]
            > small_table.row(25_000.0).capacity_loss_pct["parallel"]
        )


class TestPaperConstants:
    def test_paper_tables_cover_sweep(self):
        for size in TABLE1_SIZES_F:
            for m in TABLE1_METHODS:
                assert PAPER_AVG_POWER_W[size][m] > 0
                assert PAPER_CAPACITY_LOSS_PCT[size][m] > 0

    def test_paper_reference_is_100(self):
        assert PAPER_CAPACITY_LOSS_PCT[25_000.0]["parallel"] == 100.0

    def test_paper_otem_flat_across_sizes(self):
        otem = [PAPER_CAPACITY_LOSS_PCT[s]["otem"] for s in TABLE1_SIZES_F]
        assert max(otem) / min(otem) < 1.2
