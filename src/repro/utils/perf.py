"""Perf-trajectory recording: machine-readable ``BENCH_*.json`` files.

Every measured run of the repo - a pytest-benchmark bench, a batch sweep,
the CLI - can drop its numbers into a ``BENCH_<name>.json`` file through
:func:`record_bench` / :func:`record_timing`.  The files are flat JSON,
stable-keyed and merge-updated in place, so successive runs (and
successive PRs) produce comparable artifacts that CI uploads and future
sessions diff against.

The output directory defaults to the current working directory and can be
redirected with the ``REPRO_BENCH_DIR`` environment variable (CI points it
at the artifact staging area).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Environment variable overriding where BENCH files are written.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_path(name: str, directory: str | os.PathLike | None = None) -> Path:
    """The ``BENCH_<name>.json`` path under the effective bench directory."""
    root = Path(
        directory
        if directory is not None
        else os.environ.get(BENCH_DIR_ENV, ".")
    )
    return root / f"BENCH_{name}.json"


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
        return data if isinstance(data, dict) else {}
    except (OSError, json.JSONDecodeError):
        return {}


def record_bench(
    name: str,
    payload: dict,
    directory: str | os.PathLike | None = None,
) -> Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` and return its path.

    Top-level keys of ``payload`` overwrite existing ones; keys written by
    earlier runs of other benches into the same file survive, so several
    tests can share one trajectory file.
    """
    path = bench_path(name, directory)
    data = _load(path)
    data.update(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True, default=repr) + "\n")
    os.replace(tmp, path)
    return path


def record_timing(
    bench: str,
    measurement: str,
    seconds: float,
    directory: str | os.PathLike | None = None,
) -> Path:
    """Record one wall-clock measurement into ``BENCH_<bench>.json``.

    The shared shape future PRs inherit: ``{"timings_s": {name: seconds}}``.
    """
    timings = _load(bench_path(bench, directory)).get("timings_s", {})
    timings[measurement] = seconds
    return record_bench(bench, {"timings_s": timings}, directory)
