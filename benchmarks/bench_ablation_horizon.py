"""Ablation - MPC control-window length N.

DESIGN.md design choice: OTEM plans over N coarse steps.  A longer window
sees pulses earlier (better TEB preparation) at higher solve cost.  This
bench sweeps N and reports quality vs compute.

Expected shape: a very short window (N=2) ages the battery more than the
default (N=12); solve time grows with N.
"""

import time

from repro.sim.scenario import Scenario, run_scenario

HORIZONS = (2, 6, 12, 20)


def run_horizon(n):
    start = time.perf_counter()
    result = run_scenario(
        Scenario(methodology="otem", cycle="us06", repeat=1, mpc_horizon=n)
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_ablation_horizon(benchmark):
    results = benchmark.pedantic(
        lambda: {n: run_horizon(n) for n in HORIZONS}, rounds=1, iterations=1
    )

    print()
    print("Ablation - MPC horizon N (US06 x1)")
    print(f"{'N':>4} {'qloss [%]':>10} {'avg P [kW]':>11} {'wall [s]':>9}")
    for n in HORIZONS:
        result, elapsed = results[n]
        print(
            f"{n:>4} {result.qloss_percent:>10.4f} "
            f"{result.metrics.average_power_w / 1000:>11.2f} {elapsed:>9.1f}"
        )

    shortest = results[HORIZONS[0]][0]
    default = results[12][0]
    # a myopic window must not beat the default on capacity loss
    assert default.qloss_percent <= shortest.qloss_percent * 1.05
