"""Background sweep jobs: a worker pool dispatching specs through run_batch.

:class:`JobManager` owns a queue of :class:`SweepJob` records and a pool of
daemon worker threads.  Each job compiles its :class:`~repro.service.spec.
SweepSpec` to a scenario grid and runs it through :func:`~repro.sim.batch.
run_batch` with the manager's :class:`~repro.store.ExperimentStore`
attached, so

* progress is live (``run_batch``'s ``on_cell_done`` callback feeds the
  job's counters and its incrementally built row set);
* cancellation (:meth:`JobManager.cancel`) and per-job timeouts ride
  ``run_batch``'s cooperative ``cancel`` hook - pending cells are skipped,
  finished cells are kept;
* a crash anywhere inside a job fails *that job*, never the service;
* every finished cell lands in the store, so a restarted service (or a
  resubmitted identical sweep) is served from disk instead of recomputing
  - and finished sweep records/rows remain queryable across restarts.

Row sets served to clients are the batch runner's tidy rows minus the
volatile ``cached`` flag, which makes a resubmitted sweep's rows
byte-identical to the original's (cache hits preserve the original
compute wall time).
"""

from __future__ import annotations

import queue
import threading
import time
import uuid

from repro.sim.batch import cell_row, run_batch
from repro.service.spec import SweepSpec
from repro.store import ExperimentStore

#: Lifecycle states of a sweep job.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "interrupted")

#: Error message recorded on jobs that exceed their wall-clock budget.
_TIMEOUT_ERROR = "timeout: job exceeded its wall-clock budget"


def service_row(cell) -> dict:
    """The tidy row of ``cell`` as served to clients.

    Drops the volatile ``cached`` flag (visible in ``/metrics`` as the
    store hit rate instead) so identical sweeps return byte-identical row
    sets whether computed or served from the store.
    """
    row = cell_row(cell)
    row.pop("cached", None)
    return row


class SweepJob:
    """One submitted sweep: spec, live progress, and its result rows."""

    def __init__(self, sweep_id: str, spec: SweepSpec):
        self.sweep_id = sweep_id
        self.spec = spec
        self.status = "queued"
        self.total = spec.cell_count()
        self.done_cells = 0
        self.failed_cells = 0
        self.error: str | None = None
        self.submitted_s = time.time()
        self.started_s: float | None = None
        self.finished_s: float | None = None
        self.rows: list = []
        self.engine_backends: dict = {}
        self.lock = threading.Lock()
        self.cancel_event = threading.Event()
        self.timed_out = False

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in ("done", "failed", "cancelled")

    def snapshot(self) -> dict:
        """JSON-safe status record (what ``GET /sweeps/<id>`` returns)."""
        with self.lock:
            return {
                "sweep_id": self.sweep_id,
                "status": self.status,
                "spec": self.spec.to_dict(),
                "spec_hash": self.spec.spec_hash(),
                "tag": self.spec.tag,
                "total": self.total,
                "done_cells": self.done_cells,
                "failed_cells": self.failed_cells,
                "progress": (self.done_cells / self.total) if self.total else 0.0,
                "error": self.error,
                "submitted_s": self.submitted_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "engine_backends": dict(self.engine_backends),
            }


class JobManager:
    """Worker pool executing sweep jobs against one experiment store.

    Parameters
    ----------
    store:
        The durable result store; also holds sweep records, so a new
        manager over the same directory sees (and serves) earlier sweeps.
    worker_threads:
        Concurrent jobs (each job may additionally fan its scalar cells
        out over processes via its spec's ``workers``).
    default_timeout_s:
        Job wall-clock budget applied when a spec does not set its own.
    """

    def __init__(
        self,
        store: ExperimentStore,
        worker_threads: int = 2,
        default_timeout_s: float | None = None,
    ):
        if worker_threads < 1:
            raise ValueError("worker_threads must be >= 1")
        self._store = store
        self._default_timeout_s = default_timeout_s
        self._jobs: dict = {}
        self._jobs_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._started_s = time.time()
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(worker_threads)
        ]
        self._mark_interrupted_sweeps()
        for t in self._threads:
            t.start()

    @property
    def store(self) -> ExperimentStore:
        """The durable result store jobs run against."""
        return self._store

    def _mark_interrupted_sweeps(self) -> None:
        # records left queued/running by a dead process can never finish -
        # surface them as "interrupted" instead of forever-pending
        for record in self._store.list_sweeps():
            if record.get("status") in ("queued", "running"):
                record["status"] = "interrupted"
                record["error"] = "service stopped before the sweep finished"
                self._store.put_sweep(record["sweep_id"], record)

    # ------------------------------------------------------------------ #
    # submission / cancellation

    def submit(self, spec: SweepSpec) -> str:
        """Queue a sweep; returns its id immediately."""
        if self._shutdown:
            raise RuntimeError("manager is shut down")
        spec.scenarios()  # validate eagerly: a bad spec fails the submit
        sweep_id = uuid.uuid4().hex[:12]
        job = SweepJob(sweep_id, spec)
        with self._jobs_lock:
            self._jobs[sweep_id] = job
        self._store.put_sweep(sweep_id, job.snapshot())
        self._queue.put(sweep_id)
        return sweep_id

    def cancel(self, sweep_id: str) -> bool:
        """Request cancellation; True if the job existed and was live.

        A queued job is cancelled before it starts; a running job stops
        at its next cell boundary (finished cells are kept and stored).
        """
        with self._jobs_lock:
            job = self._jobs.get(sweep_id)
        if job is None or job.finished:
            return False
        job.cancel_event.set()
        return True

    # ------------------------------------------------------------------ #
    # queries

    def get(self, sweep_id: str) -> dict | None:
        """Status record of a live job, or the stored record, or None."""
        with self._jobs_lock:
            job = self._jobs.get(sweep_id)
        if job is not None:
            return job.snapshot()
        return self._store.get_sweep(sweep_id)

    def rows(self, sweep_id: str, filters: dict | None = None) -> dict | None:
        """Rows payload of a sweep (live partial rows or stored final rows).

        ``filters`` select rows whose field equals the given value (values
        are compared as strings, matching URL query semantics).
        """
        record = self.get(sweep_id)
        if record is None:
            return None
        with self._jobs_lock:
            job = self._jobs.get(sweep_id)
        if job is not None:
            with job.lock:
                rows = sorted(job.rows, key=lambda r: r["index"])
        else:
            rows = self._store.get_rows(sweep_id) or []
        if filters:
            rows = [
                r
                for r in rows
                if all(str(r.get(k)) == str(v) for k, v in filters.items())
            ]
        return {
            "sweep_id": sweep_id,
            "status": record["status"],
            "complete": record["status"] in ("done", "failed", "cancelled"),
            "total": record["total"],
            "rows": rows,
        }

    def list(self) -> list:
        """Status records of every known sweep (live + stored), oldest first."""
        with self._jobs_lock:
            live = {sid: job.snapshot() for sid, job in self._jobs.items()}
        records = {r["sweep_id"]: r for r in self._store.list_sweeps()}
        records.update(live)
        return sorted(records.values(), key=lambda r: r["submitted_s"])

    def metrics(self) -> dict:
        """Service counters: job states, cell totals, store stats, backends."""
        states = {state: 0 for state in JOB_STATES}
        done_cells = failed_cells = 0
        backends: dict = {}
        for record in self.list():
            states[record["status"]] = states.get(record["status"], 0) + 1
            done_cells += record.get("done_cells", 0)
            failed_cells += record.get("failed_cells", 0)
            for backend, n in record.get("engine_backends", {}).items():
                backends[backend] = backends.get(backend, 0) + n
        stats = self._store.stats()
        return {
            "uptime_s": time.time() - self._started_s,
            "jobs": states,
            "cells": {"done": done_cells, "failed": failed_cells},
            "engine_backends": backends,
            "store": {
                "cells": stats.cells,
                "bytes": stats.total_bytes,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate,
                "quarantined": stats.quarantined,
                "evicted": stats.evicted,
            },
        }

    # ------------------------------------------------------------------ #
    # execution

    def _worker(self) -> None:
        while True:
            sweep_id = self._queue.get()
            if sweep_id is None:
                return
            with self._jobs_lock:
                job = self._jobs.get(sweep_id)
            if job is None:
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - job crash isolation
                with job.lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_s = time.time()
            self._store.put_sweep(job.sweep_id, job.snapshot())
            if job.rows:
                with job.lock:
                    rows = sorted(job.rows, key=lambda r: r["index"])
                self._store.put_rows(job.sweep_id, rows)

    def _run_job(self, job: SweepJob) -> None:
        if job.cancel_event.is_set():
            with job.lock:
                job.status = "cancelled"
                job.finished_s = time.time()
            return
        with job.lock:
            job.status = "running"
            job.started_s = time.time()
        self._store.put_sweep(job.sweep_id, job.snapshot())

        spec = job.spec
        scenarios = spec.scenarios()
        with job.lock:
            job.total = len(scenarios)
        timeout_s = (
            spec.timeout_s
            if spec.timeout_s is not None
            else self._default_timeout_s
        )
        deadline = (job.started_s + timeout_s) if timeout_s else None

        def should_stop() -> bool:
            if job.cancel_event.is_set():
                return True
            if deadline is not None and time.time() > deadline:
                job.timed_out = True
                return True
            return False

        def on_cell_done(cell) -> None:
            with job.lock:
                job.done_cells += 1
                if not cell.ok:
                    job.failed_cells += 1
                job.engine_backends[cell.engine_backend] = (
                    job.engine_backends.get(cell.engine_backend, 0) + 1
                )
                job.rows.append(service_row(cell))

        run_batch(
            scenarios,
            workers=spec.workers,
            store=self._store,
            execution=spec.execution,
            on_cell_done=on_cell_done,
            cancel=should_stop,
        )

        with job.lock:
            job.finished_s = time.time()
            if job.timed_out:
                job.status = "failed"
                job.error = _TIMEOUT_ERROR
            elif job.cancel_event.is_set():
                job.status = "cancelled"
            else:
                # individual cell failures are isolated, not job failures
                job.status = "done"

    def shutdown(self, wait: bool = True, timeout_s: float = 10.0) -> None:
        """Stop the workers (running jobs finish their current cell loop)."""
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join(timeout=timeout_s)
