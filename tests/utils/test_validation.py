"""Validation-helper tests."""

import math

import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_same_length,
    clamp,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")

    def test_coerces_int(self):
        assert check_positive(3, "x") == 3.0


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.1, 0.0, 1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_in_range(math.nan, 0.0, 1.0, "x")

    def test_message_contains_name(self):
        with pytest.raises(ValueError, match="temperature"):
            check_in_range(-5.0, 0.0, 1.0, "temperature")


class TestCheckFinite:
    def test_accepts_finite_array(self):
        out = check_finite([1.0, 2.0], "x")
        assert out.tolist() == [1.0, 2.0]

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite([1.0, math.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite([math.inf], "x")


class TestCheckSameLength:
    def test_accepts_equal(self):
        check_same_length("a", [1, 2], "b", [3, 4])

    def test_rejects_unequal(self):
        with pytest.raises(ValueError, match="a .*b"):
            check_same_length("a", [1], "b", [1, 2])


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_inverted_bounds(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)
