"""Baseline [15]: passive parallel architecture.

"There is no thermal or energy management implemented" (paper Section IV-B.1):
the circuit equations Eq. 10-13 decide the battery/ultracapacitor split and
there is no cooling loop.  The controller therefore returns an empty
decision every step.
"""

from __future__ import annotations

from repro.controllers.base import Architecture, Decision, Observation


class ParallelPassiveController:
    """No-op policy for the parallel architecture."""

    name = "Parallel [15]"
    architecture = Architecture.PARALLEL
    uses_cooling = False

    def control(self, obs: Observation) -> Decision:
        """No commands: the circuit does everything."""
        return Decision(cooling_active=False)

    def reset(self):
        """Stateless."""
