"""Lockstep engine throughput: one vectorized batch vs the serial loop.

The tentpole measurement of the lockstep-engine PR: a 64-scenario
Monte-Carlo ensemble (dual-architecture baseline on NYCC, perturbation
seeds 0..63) advanced as one struct-of-arrays batch by
``repro.sim.engine_vec`` versus the same scenarios run one-by-one through
the scalar ``Simulator``.  Power requests are prebuilt for both sides, so
the comparison times the engines themselves, not cycle synthesis or the
perturbation cache.  Records per-engine wall clocks and the speedup to
``BENCH_engine.json``; the acceptance target is >= 5x, asserted under the
strict CI gate with a noise-margin floor of 2x everywhere else.
"""

from __future__ import annotations

import os
import statistics
import time

from benchmarks.conftest import run_once
from repro.sim.engine import Simulator
from repro.sim.engine_vec import build_request, run_lockstep_group
from repro.sim.scenario import Scenario, build_controller

#: Ensemble size of the paper-style Monte-Carlo traffic sweep.
ENSEMBLE = 64

#: Lockstep repetitions (the batch is fast; medians stabilize quickly).
REPEATS = 3

SCENARIOS = [
    Scenario(methodology="dual", cycle="nycc", perturb_seed=seed)
    for seed in range(ENSEMBLE)
]


def _run_scalar(scenario: Scenario, request) -> object:
    """One scalar-engine run on a prebuilt request (as ``run_scenario``)."""
    simulator = Simulator(
        build_controller(scenario),
        pack_config=scenario.pack,
        cap_params=scenario.cap_params(),
        coolant=scenario.coolant,
        initial_temp_k=scenario.initial_temp_k,
        preview_steps=10,
    )
    return simulator.run(request)


def test_lockstep_engine_speedup(benchmark):
    requests = [build_request(s) for s in SCENARIOS]

    # serial scalar reference: one Simulator per scenario
    start = time.perf_counter()
    scalar_results = [
        _run_scalar(s, r) for s, r in zip(SCENARIOS, requests)
    ]
    scalar_s = time.perf_counter() - start

    # lockstep: the whole ensemble is one batch; median of a few passes
    lockstep_times = []
    lockstep_results = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        lockstep_results = run_lockstep_group(SCENARIOS, requests)
        lockstep_times.append(time.perf_counter() - start)
    lockstep_s = statistics.median(lockstep_times)

    run_once(benchmark, lambda: run_lockstep_group(SCENARIOS, requests))

    # both engines must tell the same story (tests/sim/test_engine_vec.py
    # holds the full bitwise/ulp contract; this is a smoke check)
    for scalar, lockstep in zip(scalar_results, lockstep_results):
        assert abs(
            lockstep.metrics.qloss_percent - scalar.metrics.qloss_percent
        ) <= 1e-9 * scalar.metrics.qloss_percent
        assert lockstep.metrics.peak_temp_k == scalar.metrics.peak_temp_k

    speedup = scalar_s / lockstep_s
    steps = sum(len(r) for r in requests)

    from repro.utils.perf import record_bench

    path = record_bench(
        "engine",
        {
            "ensemble": ENSEMBLE,
            "methodology": "dual",
            "cycle": "nycc",
            "perturb_seeds": f"0..{ENSEMBLE - 1}",
            "steps_total": steps,
            "repeats_lockstep": REPEATS,
            "cpu_count": os.cpu_count(),
            "scalar_serial_s": scalar_s,
            "scalar_per_scenario_s": scalar_s / ENSEMBLE,
            "lockstep_median_s": lockstep_s,
            "lockstep_per_scenario_s": lockstep_s / ENSEMBLE,
            "steps_per_s_scalar": steps / scalar_s,
            "steps_per_s_lockstep": steps / lockstep_s,
            "speedup": speedup,
        },
    )

    print()
    print(
        f"lockstep engine ({ENSEMBLE} x dual/nycc Monte-Carlo): "
        f"scalar serial {scalar_s:.2f} s, "
        f"lockstep {lockstep_s:.2f} s -> {speedup:.2f}x -> {path}"
    )

    # acceptance: >= 5x; the unconditional floor leaves margin for noisy
    # shared runners, the strict gate runs where CI controls the machine
    assert speedup >= 2.0
    if os.environ.get("REPRO_REQUIRE_SPEEDUP"):
        assert speedup >= 5.0
