"""Data generators for the paper's figures (Fig. 1, 6, 7, 8, 9).

Every generator returns the exact series the corresponding figure plots;
nothing here draws - rendering (text tables) lives in
:mod:`repro.analysis.report`, and plotting is left to downstream users (the
arrays are plain numpy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.core.teb import teb_preparation_score, teb_trace, upcoming_demand_w
from repro.sim.metrics import SAFE_TEMP_MAX_K
from repro.sim.scenario import Scenario, run_scenario

#: The methodology set of Section IV-B, in the paper's order.
ALL_METHODOLOGIES = ("parallel", "cooling", "dual", "otem")

#: Paper display names.
METHOD_LABELS = {
    "parallel": "Parallel [15]",
    "cooling": "Cooling [25]",
    "dual": "Dual [16]",
    "otem": "OTEM",
}

#: The drive-cycle set of Fig. 8/9.
ALL_CYCLES = ("us06", "udds", "hwfet", "nycc", "la92")


# --------------------------------------------------------------------- #
# Fig. 1 - motivational case study: dual architecture, ultracap sizing


@dataclass(frozen=True)
class Fig1Data:
    """Battery temperature traces of the thermal case study.

    Attributes
    ----------
    sizes_f:
        Ultracapacitor sizes swept [F].
    time_s:
        Common time axis [s].
    temps_k:
        One temperature trace per size, same order as ``sizes_f``.
    safe_limit_k:
        The C1 threshold drawn in the paper's figure.
    violation_s:
        Seconds above the threshold, per size.
    """

    sizes_f: tuple
    time_s: np.ndarray
    temps_k: tuple
    safe_limit_k: float
    violation_s: tuple


def fig1_data(
    sizes_f: Sequence[float] = (5_000, 10_000, 20_000, 25_000),
    cycle: str = "us06",
    repeat: int = 5,
) -> Fig1Data:
    """Reproduce Fig. 1: dual-architecture thermal management vs bank size.

    Small banks deplete before the battery cools, the recharge re-heats the
    pack, and the safe threshold is violated; the violation time shrinks as
    the bank grows.
    """
    temps = []
    violations = []
    time_axis = None
    for size in sizes_f:
        result = run_scenario(
            Scenario(methodology="dual", cycle=cycle, repeat=repeat, ucap_farads=size)
        )
        temps.append(result.trace.battery_temp_k)
        violations.append(result.metrics.time_above_safe_s)
        time_axis = result.trace.time_s
    return Fig1Data(
        sizes_f=tuple(sizes_f),
        time_s=time_axis,
        temps_k=tuple(temps),
        safe_limit_k=SAFE_TEMP_MAX_K,
        violation_s=tuple(violations),
    )


# --------------------------------------------------------------------- #
# Fig. 6 - temperature trace per methodology


@dataclass(frozen=True)
class Fig6Data:
    """Battery temperature traces for the four methodologies.

    Attributes
    ----------
    time_s:
        Common time axis [s].
    temps_k:
        Map methodology -> temperature trace.
    peak_k / mean_k:
        Map methodology -> peak / mean temperature.
    """

    time_s: np.ndarray
    temps_k: Dict[str, np.ndarray]
    peak_k: Dict[str, float]
    mean_k: Dict[str, float]


def fig6_data(
    cycle: str = "us06",
    repeat: int = 5,
    ucap_farads: float = 25_000.0,
    methodologies: Sequence[str] = ALL_METHODOLOGIES,
) -> Fig6Data:
    """Reproduce Fig. 6: battery temperature under each methodology."""
    temps: Dict[str, np.ndarray] = {}
    time_axis = None
    for m in methodologies:
        result = run_scenario(
            Scenario(methodology=m, cycle=cycle, repeat=repeat, ucap_farads=ucap_farads)
        )
        temps[m] = result.trace.battery_temp_k
        time_axis = result.trace.time_s
    return Fig6Data(
        time_s=time_axis,
        temps_k=temps,
        peak_k={m: float(np.max(t)) for m, t in temps.items()},
        mean_k={m: float(np.mean(t)) for m, t in temps.items()},
    )


# --------------------------------------------------------------------- #
# Fig. 7 - TEB preparation (temporal analysis)


@dataclass(frozen=True)
class Fig7Data:
    """OTEM's temporal TEB-preparation traces.

    Attributes
    ----------
    time_s:
        Time axis [s].
    battery_temp_k / cap_soe_percent / request_w:
        The three signals the paper's Fig. 7 overlays.
    teb:
        The combined TEB metric per step (repro-defined quantification).
    upcoming_demand_w:
        Mean positive demand over the next 30 s (what TEB should lead).
    preparation_score:
        Correlation of TEB with upcoming demand (> 0 = budget is prepared
        ahead of large requests, the figure's qualitative claim).
    """

    time_s: np.ndarray
    battery_temp_k: np.ndarray
    cap_soe_percent: np.ndarray
    request_w: np.ndarray
    teb: np.ndarray
    upcoming_demand_w: np.ndarray
    preparation_score: float


def fig7_data(
    cycle: str = "us06",
    repeat: int = 5,
    ucap_farads: float = 25_000.0,
    lookahead_steps: int = 30,
) -> Fig7Data:
    """Reproduce Fig. 7: OTEM pre-charges / pre-cools ahead of demand."""
    result = run_scenario(
        Scenario(methodology="otem", cycle=cycle, repeat=repeat, ucap_farads=ucap_farads)
    )
    trace = result.trace
    return Fig7Data(
        time_s=trace.time_s,
        battery_temp_k=trace.battery_temp_k,
        cap_soe_percent=trace.cap_soe_percent,
        request_w=trace.request_w,
        teb=teb_trace(trace),
        upcoming_demand_w=upcoming_demand_w(trace, lookahead_steps),
        preparation_score=teb_preparation_score(trace, lookahead_steps),
    )


# --------------------------------------------------------------------- #
# Fig. 8 / Fig. 9 - per-cycle comparison of Q_loss and average power


@dataclass(frozen=True)
class MethodologyComparison:
    """Per-cycle, per-methodology aggregates (backs Fig. 8 and Fig. 9).

    Attributes
    ----------
    cycles:
        Drive cycles evaluated.
    methodologies:
        Methodologies evaluated.
    qloss_percent:
        ``qloss_percent[cycle][methodology]`` - capacity loss [%].
    avg_power_w:
        ``avg_power_w[cycle][methodology]`` - average power [W].
    qloss_ratio_vs_parallel:
        Capacity loss normalized to the parallel baseline per cycle
        (the paper's Fig. 8 y-axis).
    """

    cycles: tuple
    methodologies: tuple
    qloss_percent: Dict[str, Dict[str, float]] = field(default_factory=dict)
    avg_power_w: Dict[str, Dict[str, float]] = field(default_factory=dict)
    qloss_ratio_vs_parallel: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean_qloss_reduction_vs_parallel(self, methodology: str) -> float:
        """Average (over cycles) capacity-loss reduction vs parallel [%]."""
        ratios = [
            self.qloss_ratio_vs_parallel[c][methodology] for c in self.cycles
        ]
        return 100.0 * (1.0 - float(np.mean(ratios)))

    def mean_power_reduction_vs(self, methodology: str, reference: str) -> float:
        """Average (over cycles) power reduction of ``methodology`` vs ``reference`` [%]."""
        ratios = [
            self.avg_power_w[c][methodology] / self.avg_power_w[c][reference]
            for c in self.cycles
        ]
        return 100.0 * (1.0 - float(np.mean(ratios)))


def _comparison(
    cycles: Sequence[str],
    methodologies: Sequence[str],
    repeat: int,
    ucap_farads: float,
) -> MethodologyComparison:
    qloss: Dict[str, Dict[str, float]] = {}
    power: Dict[str, Dict[str, float]] = {}
    ratio: Dict[str, Dict[str, float]] = {}
    for cycle in cycles:
        qloss[cycle] = {}
        power[cycle] = {}
        for m in methodologies:
            result = run_scenario(
                Scenario(
                    methodology=m,
                    cycle=cycle,
                    repeat=repeat,
                    ucap_farads=ucap_farads,
                )
            )
            qloss[cycle][m] = result.metrics.qloss_percent
            power[cycle][m] = result.metrics.average_power_w
        base = qloss[cycle].get("parallel")
        ratio[cycle] = {
            m: (qloss[cycle][m] / base if base else float("nan"))
            for m in methodologies
        }
    return MethodologyComparison(
        cycles=tuple(cycles),
        methodologies=tuple(methodologies),
        qloss_percent=qloss,
        avg_power_w=power,
        qloss_ratio_vs_parallel=ratio,
    )


def fig8_data(
    cycles: Sequence[str] = ALL_CYCLES,
    methodologies: Sequence[str] = ALL_METHODOLOGIES,
    repeat: int = 2,
    ucap_farads: float = 25_000.0,
) -> MethodologyComparison:
    """Reproduce Fig. 8: battery-lifetime (capacity-loss) comparison."""
    return _comparison(cycles, methodologies, repeat, ucap_farads)


def fig9_data(
    cycles: Sequence[str] = ALL_CYCLES,
    methodologies: Sequence[str] = ALL_METHODOLOGIES,
    repeat: int = 2,
    ucap_farads: float = 25_000.0,
) -> MethodologyComparison:
    """Reproduce Fig. 9: average power-consumption comparison.

    Identical sweep to Fig. 8 (the paper derives both figures from the same
    runs); provided separately so each figure has a dedicated bench target.
    """
    return _comparison(cycles, methodologies, repeat, ucap_farads)
