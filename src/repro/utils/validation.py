"""Input validation helpers.

Model constructors validate their physical parameters eagerly so that a bad
configuration fails at build time with a precise message instead of producing
NaNs ten thousand simulation steps later.
"""

from __future__ import annotations

import math

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite, strictly positive number."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    value = float(value)
    if not math.isfinite(value) or not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_finite(values, name: str):
    """Raise ``ValueError`` if any entry of ``values`` is NaN or infinite."""
    arr = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_same_length(name_a: str, a, name_b: str, b):
    """Raise ``ValueError`` unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have the same length"
        )


def clamp(value: float, low: float, high: float) -> float:
    """Clip ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp bounds inverted: [{low}, {high}]")
    return min(max(value, low), high)
