"""Dual (switched) architecture tests."""

import pytest

from repro.battery.pack import BatteryPack
from repro.hees.dual import DualHEES, DualMode
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


@pytest.fixture()
def plant():
    return DualHEES(BatteryPack(), UltracapBank(UltracapParams()))


class TestBatteryMode:
    def test_battery_carries_load(self, plant):
        result = plant.step(30_000.0, DualMode.BATTERY, 0.0, 1.0)
        assert result.battery_power_w == pytest.approx(30_000.0, rel=1e-6)
        assert result.ultracap_power_w == 0.0

    def test_mode_recorded(self, plant):
        result = plant.step(10_000.0, DualMode.BATTERY, 0.0, 1.0)
        assert result.notes["mode"] == "battery"

    def test_no_cap_change(self, plant):
        soe0 = plant.bank.soe_percent
        plant.step(30_000.0, DualMode.BATTERY, 0.0, 1.0)
        assert plant.bank.soe_percent == soe0


class TestUltracapMode:
    def test_cap_carries_load(self, plant):
        result = plant.step(30_000.0, DualMode.ULTRACAP, 0.0, 1.0)
        assert result.ultracap_power_w > 0
        assert result.delivered_power_w == pytest.approx(30_000.0, rel=0.02)

    def test_battery_rests(self, plant):
        result = plant.step(30_000.0, DualMode.ULTRACAP, 0.0, 1.0)
        assert abs(result.battery_power_w) < 500.0
        assert result.battery_heat_w < 5.0

    def test_series_resistance_loss_counted(self, plant):
        result = plant.step(30_000.0, DualMode.ULTRACAP, 0.0, 1.0)
        assert result.converter_loss_j > 0

    def test_depleted_cap_falls_back_to_battery(self):
        plant = DualHEES(
            BatteryPack(),
            UltracapBank(UltracapParams(), initial_soe_percent=20.0),
        )
        result = plant.step(30_000.0, DualMode.ULTRACAP, 0.0, 1.0)
        assert result.battery_power_w > 25_000.0

    def test_soe_decreases(self, plant):
        soe0 = plant.bank.soe_percent
        plant.step(30_000.0, DualMode.ULTRACAP, 0.0, 5.0)
        assert plant.bank.soe_percent < soe0


class TestRechargeMode:
    @pytest.fixture()
    def drained(self):
        return DualHEES(
            BatteryPack(),
            UltracapBank(UltracapParams(), initial_soe_percent=50.0),
        )

    def test_battery_carries_load_plus_recharge(self, drained):
        result = drained.step(20_000.0, DualMode.RECHARGE, 5_000.0, 1.0)
        assert result.battery_power_w == pytest.approx(25_000.0, rel=1e-6)

    def test_cap_receives_energy(self, drained):
        soe0 = drained.bank.soe_percent
        drained.step(20_000.0, DualMode.RECHARGE, 5_000.0, 10.0)
        assert drained.bank.soe_percent > soe0

    def test_recharge_path_is_lossy(self, drained):
        result = drained.step(0.0, DualMode.RECHARGE, 5_000.0, 1.0)
        # 5 kW leaves the battery, ~95% lands in the bank
        assert result.cap_energy_j == pytest.approx(-5_000.0 * 0.95, rel=1e-6)
        assert result.converter_loss_j == pytest.approx(5_000.0 * 0.05, rel=1e-6)

    def test_full_bank_accepts_no_recharge(self, plant):
        result = plant.step(20_000.0, DualMode.RECHARGE, 5_000.0, 1.0)
        assert result.battery_power_w == pytest.approx(20_000.0, rel=1e-6)

    def test_delivered_excludes_recharge(self, drained):
        result = drained.step(20_000.0, DualMode.RECHARGE, 5_000.0, 1.0)
        assert result.delivered_power_w == pytest.approx(20_000.0, rel=1e-6)


class TestRegen:
    def test_regen_charges_cap_first(self):
        plant = DualHEES(
            BatteryPack(),
            UltracapBank(UltracapParams(), initial_soe_percent=50.0),
        )
        soe0 = plant.bank.soe_percent
        result = plant.step(-20_000.0, DualMode.BATTERY, 0.0, 1.0)
        assert plant.bank.soe_percent > soe0
        assert result.battery_power_w == pytest.approx(0.0, abs=1.0)

    def test_regen_overflow_goes_to_battery(self):
        plant = DualHEES(
            BatteryPack(initial_soc_percent=80.0),
            UltracapBank(UltracapParams(), initial_soe_percent=100.0),
        )
        result = plant.step(-20_000.0, DualMode.BATTERY, 0.0, 1.0)
        assert result.battery_power_w == pytest.approx(-20_000.0, rel=1e-6)


class TestMisc:
    def test_rejects_nonpositive_dt(self, plant):
        with pytest.raises(ValueError):
            plant.step(1_000.0, DualMode.BATTERY, 0.0, 0.0)

    def test_unmet_on_extreme_load(self, plant):
        result = plant.step(5e6, DualMode.BATTERY, 0.0, 1.0)
        assert result.unmet_power_w > 0

    def test_default_resistance_derived(self):
        plant = DualHEES(BatteryPack(), UltracapBank(UltracapParams()))
        assert plant.cap_voltage() > 0  # construction succeeded with derived R
