"""CLI tests (fast paths only; heavy commands run on the shortest cycle)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_methodology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-m", "magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.methodology == "otem"
        assert args.cycle == "us06"
        assert args.repeat == 1


class TestCycles:
    def test_lists_all_cycles(self):
        code, text = run_cli(["cycles"])
        assert code == 0
        for name in ("us06", "udds", "hwfet", "nycc", "la92"):
            assert name in text

    def test_has_stats_columns(self):
        _, text = run_cli(["cycles"])
        assert "dist [km]" in text
        assert "stops" in text


class TestRun:
    def test_run_baseline_on_short_cycle(self):
        code, text = run_cli(["run", "-m", "dual", "-c", "nycc"])
        assert code == 0
        assert "capacity loss" in text
        assert "Dual [16]" in text

    def test_run_reports_blt(self):
        _, text = run_cli(["run", "-m", "parallel", "-c", "nycc"])
        assert "routes to end-of-life" in text

    def test_initial_temperature_flag(self):
        code, text = run_cli(
            ["run", "-m", "parallel", "-c", "nycc", "--initial-temp-c", "35"]
        )
        assert code == 0
        assert "peak temp" in text


class TestExport:
    def test_export_writes_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        code, text = run_cli(["export", "-m", "parallel", "-c", "nycc", str(path)])
        assert code == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert "battery_temp_k" in header
        assert "wrote" in text
