"""Content-addressed on-disk experiment store (SQLite index + npz blobs).

The store is the durability layer the ROADMAP's serving goal needs: batch
sweeps land their per-cell results here once and every later consumer -
repeat ``run_batch`` calls, other processes, the sweep service after a
restart - is served from disk instead of recomputing.  Design points:

* **content addressing** - cells are keyed by the batch runner's
  ``CACHE_SCHEMA``-versioned :func:`~repro.sim.batch.scenario_fingerprint`,
  so any parameter / schema / engine-backend change yields a different key
  and stale entries are simply never looked up again;
* **two-tier layout** - a SQLite index (metadata, LRU bookkeeping) next to
  one compressed ``.npz`` blob per cell (metrics + solver stats as
  canonical JSON, optional full trace channels as arrays);
* **atomic writes** - blobs and the index row are written tmp-then-rename
  so concurrent readers never observe a partial entry;
* **corruption quarantine** - a blob that fails to load (truncated,
  garbage, missing keys) is moved to ``quarantine/`` and its index row
  dropped; the lookup reports a miss, so the caller recomputes instead of
  raising;
* **LRU eviction** - an optional byte budget evicts least-recently-used
  cells (reads refresh recency) after each write;
* **sweep records** - the sweep service persists job records and tidy row
  sets here, which is what makes restarts resume instead of recompute.

The store is duck-compatible with :class:`repro.sim.batch.ResultCache`
(``get``/``put``/``hits``/``misses``), and
:meth:`ExperimentStore.migrate_pickle_cache` imports an existing pickle
cache directory wholesale.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import sqlite3
import time
from dataclasses import dataclass

import numpy as np

from repro.core.mpc import SolverStats
from repro.sim.metrics import SummaryMetrics
from repro.sim.trace import CHANNELS, Trace

#: Index database file name under the store directory.
INDEX_DB = "index.sqlite3"

#: Subdirectory holding the content-addressed blobs.
BLOB_DIR = "blobs"

#: Subdirectory corrupt blobs are moved to (kept for post-mortems).
QUARANTINE_DIR = "quarantine"

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS cells (
    key            TEXT PRIMARY KEY,
    schema         INTEGER NOT NULL,
    created_s      REAL    NOT NULL,
    last_used_s    REAL    NOT NULL,
    nbytes         INTEGER NOT NULL,
    controller     TEXT    NOT NULL,
    cycle          TEXT    NOT NULL,
    engine_backend TEXT    NOT NULL,
    has_trace      INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id    TEXT PRIMARY KEY,
    created_s   REAL NOT NULL,
    updated_s   REAL NOT NULL,
    status      TEXT NOT NULL,
    record_json TEXT NOT NULL,
    rows_json   TEXT
);
"""


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time counters of one :class:`ExperimentStore` instance.

    ``hits``/``misses``/``quarantined``/``evicted`` are per-instance
    session counters (like :class:`~repro.sim.batch.ResultCache`);
    ``cells``/``total_bytes`` describe the on-disk population.
    """

    cells: int
    total_bytes: int
    hits: int
    misses: int
    quarantined: int
    evicted: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ExperimentStore:
    """Persistent, content-addressed store of batch-sweep results.

    Parameters
    ----------
    directory:
        Store root (created on first use).
    max_bytes:
        Optional blob-byte budget; exceeding it after a write evicts
        least-recently-used cells until the budget is met again.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self._dir = os.fspath(directory)
        self._max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.evicted = 0
        os.makedirs(self._dir, exist_ok=True)
        with self._connect() as con:
            con.executescript(_SCHEMA_SQL)

    # ------------------------------------------------------------------ #
    # plumbing

    @property
    def directory(self) -> str:
        """Root directory of the store."""
        return self._dir

    @property
    def max_bytes(self) -> int | None:
        """The eviction budget (``None`` = unbounded)."""
        return self._max_bytes

    def _connect(self) -> sqlite3.Connection:
        # one short-lived connection per operation: SQLite's file locking
        # then arbitrates between service threads and between processes
        con = sqlite3.connect(
            os.path.join(self._dir, INDEX_DB), timeout=30.0
        )
        con.execute("PRAGMA busy_timeout = 30000")
        return con

    def _blob_path(self, key: str) -> str:
        return os.path.join(self._dir, BLOB_DIR, key[:2], f"{key}.npz")

    def _quarantine_path(self, key: str) -> str:
        return os.path.join(self._dir, QUARANTINE_DIR, f"{key}.npz")

    # ------------------------------------------------------------------ #
    # cell payloads (duck-compatible with ResultCache)

    def put(self, key: str, payload, trace: Trace | None = None) -> None:
        """Store one cell payload (atomically), optionally with its trace.

        ``payload`` is a :class:`repro.sim.batch.CellPayload`; the import
        is deferred to keep ``repro.store`` importable on its own.
        """
        from repro.sim.batch import CACHE_SCHEMA

        doc = {
            "schema": CACHE_SCHEMA,
            "controller_name": payload.controller_name,
            "cycle_name": payload.cycle_name,
            "wall_s": payload.wall_s,
            "engine_backend": payload.engine_backend,
            "metrics": dataclasses.asdict(payload.metrics),
            "solver": (
                dataclasses.asdict(payload.solver)
                if payload.solver is not None
                else None
            ),
        }
        arrays: dict = {"payload_json": np.array(json.dumps(doc, sort_keys=True))}
        if trace is not None:
            for name in CHANNELS:
                arrays[f"trace_{name}"] = np.asarray(getattr(trace, name))

        path = self._blob_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(OSError):
                os.remove(tmp)

        now = time.time()
        with self._connect() as con:
            con.execute(
                "INSERT OR REPLACE INTO cells "
                "(key, schema, created_s, last_used_s, nbytes, controller, "
                " cycle, engine_backend, has_trace) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    doc["schema"],
                    now,
                    now,
                    os.path.getsize(path),
                    payload.controller_name,
                    payload.cycle_name,
                    payload.engine_backend,
                    int(trace is not None),
                ),
            )
        if self._max_bytes is not None:
            self.evict(self._max_bytes)

    def get(self, key: str):
        """Look a payload up; ``None`` (a miss) when absent or corrupt.

        A blob that exists but cannot be decoded is *quarantined* (moved
        aside, index row dropped) so the caller transparently recomputes
        the cell - corruption never propagates as an exception.
        """
        with self._connect() as con:
            row = con.execute(
                "SELECT key FROM cells WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            self.misses += 1
            return None
        try:
            payload = self._load_payload(key)
        except Exception:  # noqa: BLE001 - any decode failure is corruption
            self._quarantine(key)
            self.misses += 1
            return None
        with self._connect() as con:
            con.execute(
                "UPDATE cells SET last_used_s = ? WHERE key = ?",
                (time.time(), key),
            )
        self.hits += 1
        return payload

    def _load_payload(self, key: str):
        from repro.sim.batch import CellPayload

        with np.load(self._blob_path(key)) as blob:
            doc = json.loads(str(blob["payload_json"]))
        metrics = SummaryMetrics(**doc["metrics"])
        solver = (
            SolverStats(**doc["solver"]) if doc["solver"] is not None else None
        )
        return CellPayload(
            controller_name=doc["controller_name"],
            cycle_name=doc["cycle_name"],
            metrics=metrics,
            solver=solver,
            wall_s=doc["wall_s"],
            engine_backend=doc["engine_backend"],
        )

    def get_trace(self, key: str) -> Trace | None:
        """The stored full trace of a cell, or ``None`` when absent."""
        try:
            with np.load(self._blob_path(key)) as blob:
                names = [f"trace_{name}" for name in CHANNELS]
                if any(name not in blob for name in names):
                    return None
                channels = {
                    name: blob[f"trace_{name}"].copy() for name in CHANNELS
                }
        except Exception:  # noqa: BLE001 - same quarantine contract as get
            self._quarantine(key)
            return None
        return Trace(**channels)

    def contains(self, key: str) -> bool:
        """Whether the index knows ``key`` (no blob validation)."""
        with self._connect() as con:
            row = con.execute(
                "SELECT 1 FROM cells WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._connect() as con:
            (n,) = con.execute("SELECT COUNT(*) FROM cells").fetchone()
        return int(n)

    def total_bytes(self) -> int:
        """Sum of indexed blob sizes [bytes]."""
        with self._connect() as con:
            (n,) = con.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM cells"
            ).fetchone()
        return int(n)

    def _quarantine(self, key: str) -> None:
        os.makedirs(os.path.join(self._dir, QUARANTINE_DIR), exist_ok=True)
        with contextlib.suppress(OSError):
            os.replace(self._blob_path(key), self._quarantine_path(key))
        with self._connect() as con:
            con.execute("DELETE FROM cells WHERE key = ?", (key,))
        self.quarantined += 1

    # ------------------------------------------------------------------ #
    # eviction

    def evict(self, max_bytes: int) -> int:
        """Drop least-recently-used cells until ``<= max_bytes`` remain.

        Returns the number of cells evicted.  Reads refresh recency, so a
        hot working set survives budget pressure.
        """
        dropped = 0
        with self._connect() as con:
            rows = con.execute(
                "SELECT key, nbytes FROM cells ORDER BY last_used_s DESC"
            ).fetchall()
        total = sum(nbytes for _, nbytes in rows)
        victims = []
        for key, nbytes in reversed(rows):  # oldest first
            if total <= max_bytes:
                break
            victims.append(key)
            total -= nbytes
        for key in victims:
            with contextlib.suppress(OSError):
                os.remove(self._blob_path(key))
            with self._connect() as con:
                con.execute("DELETE FROM cells WHERE key = ?", (key,))
            dropped += 1
        self.evicted += dropped
        return dropped

    # ------------------------------------------------------------------ #
    # migration from the flat pickle cache

    def migrate_pickle_cache(self, cache_dir: str | os.PathLike) -> int:
        """Import a :class:`~repro.sim.batch.ResultCache` directory.

        Every readable ``<fingerprint>.pkl`` payload is stored under its
        fingerprint; unreadable pickles are skipped.  Returns the number
        of cells imported - after which the pickle directory can simply be
        deleted.
        """
        import pickle

        from repro.sim.batch import CellPayload

        imported = 0
        cache_dir = os.fspath(cache_dir)
        try:
            names = sorted(os.listdir(cache_dir))
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".pkl"):
                continue
            try:
                with open(os.path.join(cache_dir, name), "rb") as fh:
                    payload = pickle.load(fh)
            except Exception:  # noqa: BLE001 - skip corrupt legacy entries
                continue
            if not isinstance(payload, CellPayload):
                continue
            self.put(name[: -len(".pkl")], payload)
            imported += 1
        return imported

    # ------------------------------------------------------------------ #
    # sweep records (the service's durable job state)

    def put_sweep(self, sweep_id: str, record: dict) -> None:
        """Persist (upsert) one sweep job record (JSON-safe dict)."""
        now = time.time()
        with self._connect() as con:
            con.execute(
                "INSERT INTO sweeps "
                "(sweep_id, created_s, updated_s, status, record_json) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(sweep_id) DO UPDATE SET "
                "updated_s = excluded.updated_s, status = excluded.status, "
                "record_json = excluded.record_json",
                (
                    sweep_id,
                    now,
                    now,
                    record.get("status", "unknown"),
                    json.dumps(record, sort_keys=True),
                ),
            )

    def get_sweep(self, sweep_id: str) -> dict | None:
        """Load one sweep record, or ``None`` when unknown."""
        with self._connect() as con:
            row = con.execute(
                "SELECT record_json FROM sweeps WHERE sweep_id = ?",
                (sweep_id,),
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None

    def list_sweeps(self) -> list:
        """All sweep records, oldest first."""
        with self._connect() as con:
            rows = con.execute(
                "SELECT record_json FROM sweeps ORDER BY created_s"
            ).fetchall()
        out = []
        for (blob,) in rows:
            with contextlib.suppress(json.JSONDecodeError):
                out.append(json.loads(blob))
        return out

    def put_rows(self, sweep_id: str, rows: list) -> None:
        """Attach the tidy row set of a finished sweep to its record."""
        with self._connect() as con:
            updated = con.execute(
                "UPDATE sweeps SET rows_json = ?, updated_s = ? "
                "WHERE sweep_id = ?",
                (json.dumps(rows, sort_keys=True), time.time(), sweep_id),
            )
            if updated.rowcount == 0:
                raise KeyError(f"unknown sweep {sweep_id!r}")

    def get_rows(self, sweep_id: str) -> list | None:
        """The stored tidy rows of a sweep, or ``None`` when absent."""
        with self._connect() as con:
            row = con.execute(
                "SELECT rows_json FROM sweeps WHERE sweep_id = ?",
                (sweep_id,),
            ).fetchone()
        if row is None or row[0] is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None

    # ------------------------------------------------------------------ #
    # stats

    def stats(self) -> StoreStats:
        """Current population + session counters."""
        return StoreStats(
            cells=len(self),
            total_bytes=self.total_bytes(),
            hits=self.hits,
            misses=self.misses,
            quarantined=self.quarantined,
            evicted=self.evicted,
        )
