"""Second-order Thevenin model tests, including the paper's
"more detail does not contradict the methodology" claim."""

import pytest

from repro.battery.electrical import BatteryElectrical
from repro.battery.params import NCR18650A
from repro.battery.thevenin import (
    DEFAULT_FAST,
    DEFAULT_SLOW,
    RCBranch,
    TheveninCell,
)


class TestRCBranch:
    def test_tau(self):
        b = RCBranch(resistance_ohm=0.01, capacitance_f=100.0)
        assert b.tau_s == pytest.approx(1.0)

    def test_default_time_scales(self):
        assert 1.0 < DEFAULT_FAST.tau_s < 10.0     # charge transfer: seconds
        assert 20.0 < DEFAULT_SLOW.tau_s < 120.0   # diffusion: tens of seconds

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RCBranch(resistance_ohm=0.0, capacitance_f=1.0)


class TestConstruction:
    def test_branches_must_fit_under_total(self):
        with pytest.raises(ValueError, match="branch resistances"):
            TheveninCell(
                fast=RCBranch(0.06, 100.0), slow=RCBranch(0.06, 1000.0)
            )

    def test_initial_state(self):
        cell = TheveninCell(initial_soc_percent=80.0)
        assert cell.soc_percent == 80.0
        assert cell.polarization_v == (0.0, 0.0)


class TestDynamics:
    def test_open_circuit_matches_static_voc(self):
        cell = TheveninCell(initial_soc_percent=70.0)
        static = BatteryElectrical(NCR18650A)
        assert cell.terminal_voltage(0.0, 298.15) == pytest.approx(
            float(static.open_circuit_voltage(70.0))
        )

    def test_instant_response_is_ohmic_only(self):
        cell = TheveninCell(initial_soc_percent=70.0)
        v0 = cell.terminal_voltage(0.0, 298.15)
        v_loaded = cell.terminal_voltage(5.0, 298.15)
        drop = v0 - v_loaded
        assert drop == pytest.approx(5.0 * cell.ohmic_resistance(298.15))

    def test_polarization_builds_toward_steady_state(self):
        cell = TheveninCell(initial_soc_percent=70.0)
        for _ in range(300):
            cell.step(5.0, 298.15, 1.0)
        u1, u2 = cell.polarization_v
        assert u1 == pytest.approx(5.0 * DEFAULT_FAST.resistance_ohm, rel=0.01)
        assert u2 == pytest.approx(5.0 * DEFAULT_SLOW.resistance_ohm, rel=0.02)

    def test_steady_state_matches_static_model(self):
        """After the transients settle, total drop equals the static IR."""
        cell = TheveninCell(initial_soc_percent=70.0)
        static = BatteryElectrical(NCR18650A)
        for _ in range(300):
            out = cell.step(5.0, 298.15, 1.0)
        soc = cell.soc_percent
        expected = float(
            static.open_circuit_voltage(soc)
            - 5.0 * static.internal_resistance(soc, 298.15)
        )
        assert out["terminal_v"] == pytest.approx(expected, abs=0.02)

    def test_relaxation_after_load(self):
        cell = TheveninCell(initial_soc_percent=70.0)
        for _ in range(100):
            cell.step(5.0, 298.15, 1.0)
        cell.step(0.0, 298.15, 1.0)
        u1_after_1s = cell.polarization_v[0]
        for _ in range(60):
            cell.step(0.0, 298.15, 1.0)
        assert cell.polarization_v[0] < 0.05 * u1_after_1s  # fast branch gone
        assert cell.polarization_v[1] < cell.polarization_v[0] + 0.1

    def test_soc_integration_matches_static(self):
        cell = TheveninCell(initial_soc_percent=90.0)
        static = BatteryElectrical(NCR18650A)
        for _ in range(60):
            cell.step(3.1, 298.15, 1.0)
        assert cell.soc_percent == pytest.approx(
            static.soc_after(90.0, 3.1, 60.0), abs=1e-9
        )

    def test_heat_positive_under_load(self):
        cell = TheveninCell(initial_soc_percent=70.0)
        out = cell.step(5.0, 298.15, 1.0)
        assert out["heat_w"] > 0

    def test_reset(self):
        cell = TheveninCell()
        cell.step(5.0, 298.15, 10.0)
        cell.reset(60.0)
        assert cell.soc_percent == 60.0
        assert cell.polarization_v == (0.0, 0.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            TheveninCell().step(1.0, 298.15, 0.0)


class TestPaperClaim:
    """"More detailed battery electrical model ... will not contradict our
    methodology" - the dynamic model's cycle-level energy and heat must
    track the static model within a few percent on a real drive load."""

    @pytest.fixture(scope="class")
    def cycle_currents(self):
        from repro.battery.pack import DEFAULT_PACK
        from repro.drivecycle.library import get_cycle
        from repro.vehicle.powertrain import Powertrain

        request = Powertrain().power_request(get_cycle("us06"))
        # per-cell current at nominal voltage (coarse but identical for
        # both models, which is what the comparison needs)
        v_cell = DEFAULT_PACK.cell.nominal_voltage_v
        return request.power_w / (DEFAULT_PACK.cell_count * v_cell)

    def test_energy_agrees_heat_conservative(self, cycle_currents):
        static = BatteryElectrical(NCR18650A)
        dynamic = TheveninCell(initial_soc_percent=95.0)

        soc = 95.0
        static_heat = 0.0
        dynamic_heat = 0.0
        static_energy = 0.0
        dynamic_energy = 0.0
        for i_cell in cycle_currents:
            i = float(i_cell)
            r = float(static.internal_resistance(soc, 298.15))
            static_heat += i * i * r + i * 298.15 * NCR18650A.entropy_coeff_v_per_k
            static_energy += float(static.open_circuit_voltage(soc)) * i
            soc = static.soc_after(soc, i, 1.0)

            out = dynamic.step(i, 298.15, 1.0)
            dynamic_heat += out["heat_w"]
            dynamic_energy += out["chem_power_w"]

        # chemistry energy is identical (same Voc x I x dt)
        assert dynamic_energy == pytest.approx(static_energy, rel=0.02)
        # heat: the RC branches low-pass the pulse current, so the branch
        # dissipation mean(U^2)/R is below the static R*mean(I^2) - the
        # static model over-predicts pulse heating by ~20% on US06, i.e.
        # the paper's simpler model is *conservative* for thermal
        # management, which is the safe direction for its conclusions
        assert dynamic_heat <= static_heat
        assert dynamic_heat == pytest.approx(static_heat, rel=0.35)
