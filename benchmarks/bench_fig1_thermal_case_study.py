"""Fig. 1 - motivational thermal case study.

Paper: battery temperature under the dual-architecture (threshold-switching)
thermal management for ultracapacitor sizes {5k, 10k, 20k, 25k} F on US06;
small banks violate the safe threshold, large banks maintain it.

Expected shape: time-above-limit (and peak temperature) non-increasing with
bank size.
"""

import numpy as np

from benchmarks.conftest import REPEAT_THERMAL, run_once
from repro.analysis.figures import fig1_data
from repro.analysis.report import render_fig1

SIZES = (5_000, 10_000, 20_000, 25_000)


def test_fig1_thermal_case_study(benchmark):
    data = run_once(
        benchmark, fig1_data, sizes_f=SIZES, cycle="us06", repeat=REPEAT_THERMAL
    )
    print()
    print(render_fig1(data))

    peaks = [float(np.max(t)) for t in data.temps_k]
    # shape: the smallest bank must run at least as hot as the largest,
    # with a meaningful gap (paper Fig. 1 shows several kelvin)
    assert peaks[0] >= peaks[-1]
    assert peaks[0] - peaks[-1] > 0.5
    # violations must not increase with size
    assert data.violation_s[0] >= data.violation_s[-1]
