"""Road-load ("glider") force model.

Implements the standard longitudinal force balance used by backward-facing
vehicle simulators such as ADVISOR:

    F_tract = F_roll + F_aero + F_grade + F_inertia

with

    F_roll    = Crr * m * g * cos(theta)      (zero when stopped)
    F_aero    = 1/2 * rho * Cd * A * v^2
    F_grade   = m * g * sin(theta)
    F_inertia = k_i * m * a

Tractive power at the wheels is ``F_tract * v``.
"""

from __future__ import annotations

import numpy as np

from repro.vehicle.params import VehicleParams

#: Standard gravity [m/s^2].
GRAVITY = 9.80665


class Glider:
    """Road-load force and wheel-power calculator.

    Parameters
    ----------
    params:
        Vehicle physical parameters.
    """

    def __init__(self, params: VehicleParams):
        self._p = params

    @property
    def params(self) -> VehicleParams:
        """The vehicle parameters in use."""
        return self._p

    def rolling_force(self, speed_mps, grade_rad=0.0) -> np.ndarray:
        """Rolling-resistance force [N]; zero for samples at standstill."""
        speed = np.asarray(speed_mps, dtype=float)
        p = self._p
        force = p.rolling_coefficient * p.mass_kg * GRAVITY * np.cos(grade_rad)
        return np.where(speed > 1e-3, force, 0.0)

    def aero_force(self, speed_mps) -> np.ndarray:
        """Aerodynamic drag force [N]."""
        speed = np.asarray(speed_mps, dtype=float)
        p = self._p
        return 0.5 * p.air_density_kgm3 * p.drag_coefficient * p.frontal_area_m2 * speed**2

    def grade_force(self, grade_rad=0.0) -> float:
        """Gravitational force along the road [N] for grade angle ``grade_rad``."""
        return self._p.mass_kg * GRAVITY * np.sin(grade_rad)

    def inertia_force(self, accel_ms2) -> np.ndarray:
        """Inertial force including rotating masses [N]."""
        accel = np.asarray(accel_ms2, dtype=float)
        return self._p.wheel_inertia_factor * self._p.mass_kg * accel

    def tractive_force(self, speed_mps, accel_ms2, grade_rad=0.0) -> np.ndarray:
        """Total tractive force at the wheels [N] (negative while braking)."""
        return (
            self.rolling_force(speed_mps, grade_rad)
            + self.aero_force(speed_mps)
            + self.grade_force(grade_rad)
            + self.inertia_force(accel_ms2)
        )

    def wheel_power(self, speed_mps, accel_ms2, grade_rad=0.0) -> np.ndarray:
        """Tractive power at the wheels [W] (negative while braking)."""
        speed = np.asarray(speed_mps, dtype=float)
        return self.tractive_force(speed, accel_ms2, grade_rad) * speed
