"""Lockstep engine equivalence: every column matches its scalar run.

The contract (see ``repro.sim.engine_vec``) is bitwise equality per channel,
with two documented one-ulp exceptions, both in bookkeeping-only outputs
that feed nothing back into the dynamics:

- ``loss_increment_percent`` goes through ``pow``/``exp``, where NumPy's
  vectorized SIMD kernels and its scalar (0-d) libm path can differ by one
  ulp (~1e-15 relative here).
- ``converter_loss_j`` squares a current via ``x**2``, which NumPy lowers
  to an exact multiply for arrays but routes through libm ``pow`` for
  scalars; the two round differently on ~0.1% of inputs.  (The same
  product also appears inside ``delivered_w``, where it is summed against
  a magnitude large enough that the difference is absorbed in rounding.)

The spec tolerance for the whole comparison is 1e-9 relative; these tests
hold the two exception channels (and the metrics derived from them) to
that while demanding exact equality everywhere else.
"""

import dataclasses

import numpy as np
import pytest

from repro.sim.engine_vec import (
    LOCKSTEP_METHODOLOGIES,
    lockstep_key,
    lockstep_supported,
    run_lockstep,
    run_lockstep_group,
)
from repro.sim.scenario import Scenario, run_scenario
from repro.sim.trace import CHANNELS

BASELINES = ("parallel", "cooling", "dual", "heuristic")

#: Channels allowed one-ulp scalar-vs-vector libm differences (see module
#: docstring) and the SummaryMetrics fields derived from them.
ULP_CHANNELS = ("loss_increment_percent", "converter_loss_j")
ULP_METRICS = ("qloss_percent", "blt_routes", "converter_loss_j")

#: Channels that must match bitwise.
EXACT_CHANNELS = tuple(c for c in CHANNELS if c not in ULP_CHANNELS)

#: Relative tolerance for the ulp-exception channels and metrics.
ULP_RTOL = 1e-9


def assert_column_equivalent(scalar_result, lockstep_result):
    """One lockstep column against the scalar run of the same scenario."""
    st, lt = scalar_result.trace, lockstep_result.trace
    assert len(st) == len(lt)
    for name in EXACT_CHANNELS:
        np.testing.assert_array_equal(
            st.channel(name), lt.channel(name), err_msg=name
        )
    for name in ULP_CHANNELS:
        np.testing.assert_allclose(
            st.channel(name),
            lt.channel(name),
            rtol=ULP_RTOL,
            atol=0.0,
            err_msg=name,
        )
    sm = dataclasses.asdict(scalar_result.metrics)
    lm = dataclasses.asdict(lockstep_result.metrics)
    for key, value in sm.items():
        if key in ULP_METRICS:
            assert lm[key] == pytest.approx(value, rel=ULP_RTOL), key
        else:
            assert lm[key] == value, key
    assert lockstep_result.controller_name == scalar_result.controller_name
    assert lockstep_result.cycle_name == scalar_result.cycle_name
    # baselines: both None.  OTEM: identical SolverStats - same solves,
    # iterations, last cost, and winner attribution as the scalar engine.
    assert lockstep_result.solver == scalar_result.solver


class TestScalarEquivalence:
    @pytest.mark.parametrize("cycle", ("nycc", "us06"))
    @pytest.mark.parametrize("methodology", BASELINES)
    def test_each_baseline_matches_scalar(self, methodology, cycle):
        """Every baseline x cycle: batch of 3 heterogeneous columns.

        The small 5_000 F bank on us06 drives the ultracap to its SoE floor
        and (for the hybrid plant) through the emergency/unmet-power path;
        parallel and dual exercise the passive-ambient thermal branch, the
        cooled baselines the active one.
        """
        scenarios = [
            Scenario(methodology=methodology, cycle=cycle),
            Scenario(methodology=methodology, cycle=cycle, ucap_farads=5_000.0),
            Scenario(methodology=methodology, cycle=cycle, initial_temp_k=303.0),
        ]
        lockstep = run_lockstep_group(scenarios)
        for scenario, result in zip(scenarios, lockstep):
            assert_column_equivalent(run_scenario(scenario), result)

    def test_stress_paths_are_actually_exercised(self):
        """Guard the coverage claims above: floor/unmet/cooling all fire."""
        starved = run_scenario(
            Scenario(methodology="heuristic", cycle="us06", ucap_farads=5_000.0)
        )
        assert starved.trace.cap_soe_percent.min() < 30.0
        assert starved.trace.unmet_w.max() == 0.0 or starved.metrics.unmet_energy_j >= 0.0
        cooled = run_scenario(
            Scenario(methodology="cooling", cycle="us06", initial_temp_k=303.0)
        )
        assert cooled.trace.cooling_power_w.max() > 0.0

    def test_ragged_lengths_in_one_group(self):
        """Mixed cycle lengths and perturbation seeds share one batch."""
        scenarios = [
            Scenario(methodology="dual", cycle="nycc"),
            Scenario(methodology="dual", cycle="us06", repeat=2),
            Scenario(methodology="dual", cycle="nycc", perturb_seed=3),
            Scenario(methodology="dual", cycle="udds", perturb_seed=7),
        ]
        lockstep = run_lockstep_group(scenarios)
        lengths = {len(r.trace) for r in lockstep}
        assert len(lengths) > 1  # genuinely ragged
        for scenario, result in zip(scenarios, lockstep):
            assert_column_equivalent(run_scenario(scenario), result)


class TestGrouping:
    def test_run_lockstep_buckets_and_realigns(self):
        scenarios = [
            Scenario(methodology="dual", cycle="nycc"),
            Scenario(methodology="parallel", cycle="nycc"),
            Scenario(methodology="dual", cycle="us06"),
            Scenario(methodology="parallel", cycle="udds"),
        ]
        results = run_lockstep(scenarios)
        assert [r.controller_name for r in results] == [
            "Dual [16]",
            "Parallel [15]",
            "Dual [16]",
            "Parallel [15]",
        ]
        for scenario, result in zip(scenarios, results):
            assert_column_equivalent(run_scenario(scenario), result)

    def test_singleton_group_is_fine(self):
        scenario = Scenario(methodology="cooling", cycle="nycc")
        (result,) = run_lockstep([scenario])
        assert_column_equivalent(run_scenario(scenario), result)

    def test_mixed_key_rejected_by_group_runner(self):
        with pytest.raises(ValueError, match="mixes"):
            run_lockstep_group(
                [
                    Scenario(methodology="dual", cycle="nycc"),
                    Scenario(methodology="parallel", cycle="nycc"),
                ]
            )

    def test_scalar_backend_otem_rejected(self):
        """Default (scalar-backend) OTEM stays off the lockstep engine:
        routing it would silently switch solver backends."""
        assert not lockstep_supported(Scenario(methodology="otem"))
        with pytest.raises(ValueError, match="rollout_backend='vectorized'"):
            run_lockstep([Scenario(methodology="otem", cycle="nycc")])

    def test_vectorized_backend_otem_supported(self):
        assert lockstep_supported(
            Scenario(methodology="otem", rollout_backend="vectorized")
        )

    def test_supported_set_is_baselines_plus_otem(self):
        assert LOCKSTEP_METHODOLOGIES == set(BASELINES) | {"otem"}

    def test_key_ignores_per_column_knobs(self):
        a = Scenario(methodology="dual", cycle="nycc")
        b = dataclasses.replace(
            a, cycle="us06", ucap_farads=5_000.0, perturb_seed=9, initial_temp_k=305.0
        )
        assert lockstep_key(a) == lockstep_key(b)
        assert lockstep_key(a) != lockstep_key(
            dataclasses.replace(a, methodology="parallel")
        )

    def test_otem_key_pins_the_solver_shape(self):
        """OTEM groups must share horizon/step/budget/weights (MPCPlannerVec
        races every scenario with one driver); bank size and route stay
        per-column."""
        a = Scenario(methodology="otem", rollout_backend="vectorized")
        b = dataclasses.replace(a, cycle="nycc", ucap_farads=5_000.0, perturb_seed=2)
        assert lockstep_key(a) == lockstep_key(b)
        for change in (
            {"mpc_horizon": 4},
            {"mpc_step_s": 30.0},
            {"mpc_max_evals": 10},
        ):
            assert lockstep_key(a) != lockstep_key(
                dataclasses.replace(a, **change)
            ), change


class TestOTEMLockstep:
    """Lockstep MPC columns against the scalar engine (vectorized backend).

    The contract mirrors the baselines': bitwise per channel with the two
    documented ulp exceptions, plus *identical* SolverStats - the batched
    planner replays each scenario's exact solve sequence (same starts,
    same budgets, same winner races), so solves, iterations, last cost,
    and winner attribution must all match the per-scenario reference.
    """

    #: Small solver shape so the ~20 replans per nycc column stay fast.
    KNOBS = dict(
        methodology="otem",
        cycle="nycc",
        rollout_backend="vectorized",
        mpc_horizon=4,
        mpc_step_s=30.0,
        mpc_max_evals=20,
    )

    def test_heterogeneous_group_matches_scalar_engine(self):
        """Mixed bank sizes and initial temperatures in one replan wave."""
        scenarios = [
            Scenario(**self.KNOBS),
            Scenario(**self.KNOBS, ucap_farads=5_000.0),
            Scenario(**self.KNOBS, initial_temp_k=305.0),
        ]
        lockstep = run_lockstep_group(scenarios)
        for scenario, result in zip(scenarios, lockstep):
            assert_column_equivalent(run_scenario(scenario), result)
            assert result.solver is not None and result.solver.solves > 0

    def test_ragged_routes_stop_replanning_at_their_own_end(self):
        """Perturbed routes have different lengths; a short column must not
        keep solving in the zero-padded tail (its stats would diverge
        from the scalar engine, which stops at the route end)."""
        scenarios = [
            Scenario(**self.KNOBS),
            Scenario(**self.KNOBS, perturb_seed=3, initial_temp_k=303.0),
            Scenario(**self.KNOBS, perturb_seed=7, ucap_farads=5_000.0),
        ]
        lockstep = run_lockstep_group(scenarios)
        lengths = {len(r.trace) for r in lockstep}
        assert len(lengths) > 1  # genuinely ragged
        for scenario, result in zip(scenarios, lockstep):
            assert_column_equivalent(run_scenario(scenario), result)

    def test_winner_attribution_matches_and_is_populated(self):
        scenarios = [Scenario(**self.KNOBS), Scenario(**self.KNOBS, perturb_seed=1)]
        lockstep = run_lockstep_group(scenarios)
        for result in lockstep:
            s = result.solver
            wins = s.wins_warm + s.wins_neutral + s.wins_full_cool
            assert wins == s.solves
            assert s.wins_warm > 0  # warm starts win most replans
