"""Ablation - sensor noise and state estimation.

The paper assumes clean measured states.  This bench quantifies what BMS
temperature-sensor noise costs each configuration and how much of it the
thermal Kalman filter (``repro.core.estimator``) buys back:

* clean measurements (the paper's assumption),
* noisy measurements straight into the policy,
* noisy measurements through the Kalman filter.

Expected shape: energy/aging totals barely move (hysteresis averages the
noise out), but the *compressor cycling count* - the quantity that wears
the cooling hardware - explodes under noise and the filter restores it.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.wrappers import NoisyObservations
from repro.core.estimator import FilteredObservations
from repro.drivecycle.library import get_cycle
from repro.sim.engine import Simulator
from repro.vehicle.powertrain import Powertrain

SIGMA_K = 1.5


def build(kind):
    if kind == "clean":
        return CoolingOnlyController()
    if kind == "noisy":
        return NoisyObservations(
            CoolingOnlyController(), temp_sigma_k=SIGMA_K, seed=42
        )
    return NoisyObservations(
        FilteredObservations(
            CoolingOnlyController(), measurement_sigma_k=SIGMA_K
        ),
        temp_sigma_k=SIGMA_K,
        seed=42,
    )


def sweep():
    request = Powertrain().power_request(get_cycle("udds", repeat=2))
    return {
        kind: Simulator(build(kind)).run(request)
        for kind in ("clean", "noisy", "filtered")
    }


def cooler_cycles(result) -> int:
    """Number of off->on transitions of the cooler (compressor starts)."""
    on = result.trace.cooling_power_w > result.trace.cooling_power_w.max() * 0.05
    return int(np.sum(~on[:-1] & on[1:]))


def test_ablation_state_estimation(benchmark):
    results = run_once(benchmark, sweep)

    print()
    print(f"Ablation - sensor noise (sigma={SIGMA_K} K) and estimation (UDDS x2)")
    print(f"{'config':>10} {'qloss [%]':>10} {'avg P [kW]':>11} "
          f"{'cool E [kWh]':>13} {'compressor starts':>18}")
    for kind, result in results.items():
        m = result.metrics
        print(
            f"{kind:>10} {m.qloss_percent:>10.4f} "
            f"{m.average_power_w / 1000:>11.2f} {m.cooling_energy_j / 3.6e6:>13.2f} "
            f"{cooler_cycles(result):>18}"
        )

    clean = cooler_cycles(results["clean"])
    noisy = cooler_cycles(results["noisy"])
    filtered = cooler_cycles(results["filtered"])

    # noise makes the thermostat chatter badly; the filter restores the
    # clean cycling behaviour (hardware-wear metric)
    assert noisy > 5 * max(clean, 1)
    assert filtered <= 2 * max(clean, 1)
    # the filter also recovers the wasted cooling energy (noise trips the
    # thermostat early and often - +65% cooling energy on UDDS unfiltered)
    clean_e = results["clean"].metrics.cooling_energy_j
    assert abs(results["filtered"].metrics.cooling_energy_j - clean_e) < 0.15 * clean_e + 1e4
    # nothing becomes unsafe in any configuration
    for result in results.values():
        assert result.metrics.time_above_safe_s == 0.0
