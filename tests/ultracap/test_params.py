"""Ultracapacitor parameter tests (Eq. 6)."""

import pytest

from repro.ultracap.params import (
    REFERENCE_CAPACITANCE_F,
    UltracapParams,
    bank_of_farads,
)


class TestEnergyCapacity:
    def test_eq6(self):
        p = UltracapParams(capacitance_f=25_000.0, rated_voltage_v=16.2)
        assert p.energy_capacity_j == pytest.approx(0.5 * 25_000 * 16.2**2)

    def test_default_bank_stores_under_1kwh(self):
        p = UltracapParams()
        assert 2.0e6 <= p.energy_capacity_j <= 4.0e6

    def test_usable_energy_is_c5_window(self):
        p = UltracapParams()
        assert p.usable_energy_j == pytest.approx(0.8 * p.energy_capacity_j)


class TestValidation:
    def test_rejects_zero_capacitance(self):
        with pytest.raises(ValueError):
            UltracapParams(capacitance_f=0.0)

    def test_rejects_inverted_soe_window(self):
        with pytest.raises(ValueError):
            UltracapParams(soe_min_percent=80.0, soe_max_percent=50.0)

    def test_rejects_hard_floor_above_soft_floor(self):
        with pytest.raises(ValueError):
            UltracapParams(soe_min_percent=20.0, soe_hard_min_percent=30.0)

    def test_rejects_zero_power(self):
        with pytest.raises(ValueError):
            UltracapParams(max_power_w=0.0)


class TestBankOfFarads:
    @pytest.mark.parametrize("size", [5_000.0, 10_000.0, 20_000.0, 25_000.0])
    def test_paper_sweep_sizes(self, size):
        p = bank_of_farads(size)
        assert p.capacitance_f == size

    def test_energy_scales_linearly(self):
        assert bank_of_farads(10_000).energy_capacity_j == pytest.approx(
            2 * bank_of_farads(5_000).energy_capacity_j
        )

    def test_resistance_scales_inversely(self):
        small = bank_of_farads(5_000)
        large = bank_of_farads(25_000)
        assert small.internal_resistance_ohm == pytest.approx(
            5 * large.internal_resistance_ohm
        )

    def test_reference_size_keeps_module_resistance(self):
        assert bank_of_farads(
            REFERENCE_CAPACITANCE_F
        ).internal_resistance_ohm == pytest.approx(2.2e-3)

    def test_explicit_resistance_override(self):
        p = bank_of_farads(5_000, internal_resistance_ohm=1e-3)
        assert p.internal_resistance_ohm == 1e-3

    def test_other_overrides(self):
        p = bank_of_farads(5_000, max_power_w=10_000.0)
        assert p.max_power_w == 10_000.0
