"""Calibration-sensitivity tests."""

import pytest

from repro.analysis.sensitivity import (
    OrderingCheck,
    SensitivityCase,
    check_orderings,
    default_cases,
)
from repro.sim.scenario import Scenario


class TestCases:
    def test_default_cases_include_nominal(self):
        names = [c.name for c in default_cases()]
        assert "nominal" in names
        assert len(names) >= 7

    def test_cell_patch_changes_resistance(self):
        case = next(c for c in default_cases() if c.name == "res_base +25%")
        base = Scenario(methodology="parallel")
        patched = case.scenario_patch(base)
        assert patched.pack.cell.res_base == pytest.approx(
            base.pack.cell.res_base * 1.25
        )

    def test_coolant_patch_changes_passive_h(self):
        case = next(c for c in default_cases() if c.name == "passive h +50%")
        base = Scenario(methodology="parallel")
        patched = case.scenario_patch(base)
        assert patched.coolant.passive_h_w_per_k == pytest.approx(
            base.coolant.passive_h_w_per_k * 1.5
        )

    def test_nominal_patch_is_identity(self):
        case = next(c for c in default_cases() if c.name == "nominal")
        base = Scenario(methodology="parallel")
        assert case.scenario_patch(base) is base


class TestOrderingCheck:
    def make(self, qloss, power):
        return OrderingCheck(case="t", qloss_percent=qloss, avg_power_w=power)

    def test_all_hold(self):
        check = self.make(
            {"parallel": 1.0, "cooling": 0.5, "dual": 0.8},
            {"parallel": 18_000.0, "cooling": 24_000.0, "dual": 20_000.0},
        )
        assert check.all_hold

    def test_detects_broken_qloss_ordering(self):
        check = self.make(
            {"parallel": 1.0, "cooling": 0.5, "dual": 1.2},
            {"parallel": 18_000.0, "cooling": 24_000.0, "dual": 20_000.0},
        )
        assert not check.dual_beats_parallel_qloss
        assert not check.all_hold

    def test_detects_broken_power_ordering(self):
        check = self.make(
            {"parallel": 1.0, "cooling": 0.5, "dual": 0.8},
            {"parallel": 25_000.0, "cooling": 24_000.0, "dual": 20_000.0},
        )
        assert not check.parallel_cheapest


class TestCheckOrderings:
    def test_fake_runner_wiring(self):
        """The sweep passes each methodology through the patched scenario."""
        seen = []

        class FakeMetrics:
            qloss_percent = 0.1
            average_power_w = 1_000.0

        class FakeResult:
            metrics = FakeMetrics()

        def runner(scenario):
            seen.append((scenario.methodology, scenario.pack.cell.res_base))
            return FakeResult()

        cases = [
            SensitivityCase("nominal", lambda s: s),
            default_cases()[1],  # res_base +25%
        ]
        out = check_orderings(cases=cases, runner=runner)
        assert len(out) == 2
        assert len(seen) == 6  # 2 cases x 3 methodologies
        nominal_r = seen[0][1]
        assert seen[3][1] == pytest.approx(nominal_r * 1.25)

    def test_real_nominal_orderings_hold(self):
        """The headline check at reduced scale: orderings survive nominal."""
        out = check_orderings(
            cases=[SensitivityCase("nominal", lambda s: s)],
            cycle="us06",
            repeat=3,
        )
        assert out[0].all_hold
