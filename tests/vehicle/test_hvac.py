"""Cabin HVAC load model tests."""

import numpy as np
import pytest

from repro.drivecycle.library import get_cycle
from repro.vehicle.hvac import CabinParams, hvac_load_profile
from repro.vehicle.powertrain import Powertrain


class TestCabinParams:
    def test_defaults_valid(self):
        CabinParams()

    def test_rejects_bad_cop(self):
        with pytest.raises(ValueError):
            CabinParams(cooling_cop=0.0)

    def test_rejects_negative_solar(self):
        with pytest.raises(ValueError):
            CabinParams(solar_gain_w=-10.0)


class TestHotDay:
    @pytest.fixture(scope="class")
    def load(self):
        # 38 C ambient, soaked car
        return hvac_load_profile(1200.0, 311.15)

    def test_length(self, load):
        assert load.size == 1201

    def test_pull_down_phase_runs_hard(self, load):
        p = CabinParams()
        assert np.max(load[:60]) == pytest.approx(
            p.max_thermal_power_w / p.cooling_cop
        )

    def test_steady_phase_below_pull_down(self, load):
        assert np.mean(load[-300:]) < np.mean(load[:120])

    def test_steady_load_balances_ingress(self, load):
        # at steady state the HVAC removes shell ingress + solar
        p = CabinParams()
        ingress = (
            p.shell_conductance_w_per_k * (311.15 - p.setpoint_k) + p.solar_gain_w
        )
        steady_electrical = np.mean(load[-300:])
        assert steady_electrical == pytest.approx(ingress / p.cooling_cop, rel=0.3)

    def test_nonnegative(self, load):
        assert np.all(load >= 0.0)


class TestColdDay:
    def test_heating_uses_ptc_cop(self):
        # -5 C ambient: heating at COP 1 is pricier than cooling at COP 2.2
        hot = hvac_load_profile(900.0, 309.15)
        cold = hvac_load_profile(900.0, 268.15)
        assert np.mean(cold[-300:]) > np.mean(hot[-300:])

    def test_no_solar_at_cold(self):
        p = CabinParams()
        cold = hvac_load_profile(1800.0, 268.15)
        ingress = p.shell_conductance_w_per_k * (p.setpoint_k - 268.15)
        assert np.mean(cold[-300:]) == pytest.approx(ingress / p.heating_cop, rel=0.3)


class TestMildDay:
    def test_near_setpoint_nearly_free(self):
        load = hvac_load_profile(900.0, 295.65, initial_cabin_temp_k=295.15)
        assert np.mean(load) < 300.0


class TestPowertrainIntegration:
    def test_hvac_adds_to_request(self):
        cycle = get_cycle("udds")
        pt = Powertrain()
        plain = pt.power_request(cycle)
        load = hvac_load_profile(cycle.duration_s, 311.15, dt=cycle.dt)
        with_hvac = pt.power_request(cycle, hvac_load_w=load)
        assert with_hvac.mean_power_w() > plain.mean_power_w()
        extra = with_hvac.power_w - plain.power_w
        assert np.all(extra >= -1e-9)

    def test_short_profile_zero_padded(self):
        cycle = get_cycle("nycc")
        pt = Powertrain()
        load = np.full(10, 1_000.0)
        pr = pt.power_request(cycle, hvac_load_w=load)
        plain = pt.power_request(cycle)
        assert pr.power_w[5] == pytest.approx(plain.power_w[5] + 1_000.0)
        assert pr.power_w[50] == pytest.approx(plain.power_w[50])

    def test_validation(self):
        with pytest.raises(ValueError):
            hvac_load_profile(0.0, 300.0)
        with pytest.raises(ValueError):
            hvac_load_profile(100.0, 300.0, dt=0.0)
