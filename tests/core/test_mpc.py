"""MPC planner tests."""

import numpy as np
import pytest

from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.core.cost import CostWeights
from repro.core.mpc import MPCPlanner, MPCPlannerVec
from repro.core.rollout import PredictionModel
from repro.hees.hybrid import default_battery_converter, default_cap_converter
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams


def make_model(capacitance_f=None, weights=None):
    cap_params = (
        UltracapParams()
        if capacitance_f is None
        else UltracapParams(capacitance_f=capacitance_f)
    )
    pack = BatteryPack(DEFAULT_PACK)
    bank = UltracapBank(cap_params)
    return PredictionModel(
        DEFAULT_PACK,
        cap_params,
        DEFAULT_COOLANT,
        default_battery_converter(pack),
        default_cap_converter(bank),
        weights or CostWeights(),
    )


def make_planner(horizon=8, **planner_kwargs):
    return MPCPlanner(make_model(), horizon=horizon, **planner_kwargs)


class TestConstruction:
    def test_rejects_zero_horizon(self):
        with pytest.raises(ValueError):
            make_planner(horizon=0)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            make_planner(step_s=0.0)

    def test_rejects_inverted_inlet_span(self):
        with pytest.raises(ValueError):
            make_planner(inlet_span_k=(310.0, 300.0))


class TestPlanShape:
    def test_plan_lengths(self):
        planner = make_planner(horizon=8)
        plan = planner.plan((298.0, 298.0, 90.0, 80.0), np.full(8, 15_000.0))
        assert plan.horizon == 8
        assert plan.cap_bus_w.shape == (8,)
        assert plan.inlet_temp_k.shape == (8,)

    def test_short_preview_zero_padded(self):
        planner = make_planner(horizon=8)
        plan = planner.plan((298.0, 298.0, 90.0, 80.0), np.full(3, 15_000.0))
        assert plan.horizon == 8

    def test_inputs_within_bounds(self):
        planner = make_planner(horizon=6)
        plan = planner.plan((305.0, 305.0, 70.0, 60.0), np.full(6, 25_000.0))
        assert np.all(np.abs(plan.cap_bus_w) <= planner._cap_hi + 1e-6)
        assert np.all(plan.inlet_temp_k >= 288.15 - 1e-6)
        assert np.all(plan.inlet_temp_k <= 312.0 + 1e-6)


class TestPlanQuality:
    def test_hot_state_plans_cooling(self):
        planner = make_planner(horizon=8)
        plan = planner.plan((312.0, 311.0, 80.0, 90.0), np.full(8, 20_000.0))
        # some horizon step must command a meaningfully colder inlet
        assert np.min(plan.inlet_temp_k) < 305.0

    def test_multistart_escapes_stall(self):
        """A hot, high-cost state must not return the do-nothing plan.

        Without multi-start L-BFGS-B stalls after ~2 iterations here and
        keeps inlet at T_c (documented optimizer pathology).
        """
        planner = make_planner(horizon=12)
        state = (313.0, 311.0, 70.0, 60.0)
        plan = planner.plan(state, np.full(12, 20_000.0))
        do_nothing = planner._model.rollout_cost(
            state, [0.0] * 12, [311.0] * 12, [20_000.0] * 12, planner.step_s
        )
        assert plan.solver_cost < do_nothing

    def test_beats_full_cooling_reference(self):
        planner = make_planner(horizon=8)
        state = (310.0, 309.0, 80.0, 90.0)
        preview = np.full(8, 20_000.0)
        plan = planner.plan(state, preview)
        full_cool = planner._model.rollout_cost(
            state, [0.0] * 8, [288.15] * 8, list(preview), planner.step_s
        )
        assert plan.solver_cost <= full_cool + 1e-6

    def test_warm_start_reused(self):
        planner = make_planner(horizon=6)
        state = (305.0, 304.0, 80.0, 80.0)
        planner.plan(state, np.full(6, 15_000.0))
        assert planner._last_z is not None
        planner.reset()
        assert planner._last_z is None

    def test_predicted_rollout_attached(self):
        planner = make_planner(horizon=6)
        plan = planner.plan((298.0, 298.0, 90.0, 80.0), np.full(6, 10_000.0))
        assert len(plan.predicted.temps_k) == 7
        assert plan.solver_iterations >= 0


class TestVectorizedBackend:
    """The batched-kernel penalty solver (rollout_backend="vectorized")."""

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="rollout_backend"):
            make_planner(rollout_backend="gpu")

    def test_stats_record_backend(self):
        vec = make_planner(horizon=6, rollout_backend="vectorized")
        assert vec.rollout_backend == "vectorized"
        assert vec.stats.backend == "vectorized"
        assert make_planner(horizon=6).stats.backend == "scalar"

    def test_last_cost_serialization(self):
        import math

        planner = make_planner(horizon=4, rollout_backend="vectorized")
        fresh = planner.stats
        assert math.isnan(fresh.last_cost) and fresh.last_cost_or_none is None
        planner.plan((298.0, 298.0, 90.0, 80.0), np.full(4, 10_000.0))
        after = planner.stats
        assert after.last_cost_or_none == after.last_cost

    def test_plan_shape_and_bounds(self):
        planner = make_planner(horizon=6, rollout_backend="vectorized")
        plan = planner.plan((305.0, 305.0, 70.0, 60.0), np.full(6, 25_000.0))
        assert plan.cap_bus_w.shape == (6,)
        assert plan.inlet_temp_k.shape == (6,)
        assert np.all(np.abs(plan.cap_bus_w) <= planner._cap_hi + 1e-6)
        assert np.all(plan.inlet_temp_k >= 288.15 - 1e-6)
        assert np.all(plan.inlet_temp_k <= 312.0 + 1e-6)

    def test_multistart_escapes_stall(self):
        """Mirror of the scalar stall test: the joint batched race must
        also beat the do-nothing plan from the documented pathology."""
        planner = make_planner(horizon=12, rollout_backend="vectorized")
        state = (313.0, 311.0, 70.0, 60.0)
        plan = planner.plan(state, np.full(12, 20_000.0))
        do_nothing = planner._model.rollout_cost(
            state, [0.0] * 12, [311.0] * 12, [20_000.0] * 12, planner.step_s
        )
        assert plan.solver_cost < do_nothing

    def test_cost_comparable_to_scalar(self):
        """Same formulation, same budget - the solves land on costs within
        a few percent of each other (different optimizer trajectories)."""
        state = (310.0, 309.0, 75.0, 70.0)
        preview = np.full(8, 20_000.0)
        scalar = make_planner(horizon=8).plan(state, preview)
        vec = make_planner(horizon=8, rollout_backend="vectorized").plan(
            state, preview
        )
        assert vec.solver_cost <= scalar.solver_cost * 1.10
        assert scalar.solver_cost <= vec.solver_cost * 1.10

    def test_never_worse_than_its_starts(self):
        """The joint race must return at least the best start point."""
        planner = make_planner(horizon=8, rollout_backend="vectorized")
        state = (311.0, 310.0, 70.0, 60.0)
        preview = np.full(8, 22_000.0)
        plan = planner.plan(state, preview)
        full_cool = planner._model.rollout_cost(
            state, [0.0] * 8, [288.15] * 8, preview, planner.step_s
        )
        assert plan.solver_cost <= full_cool + 1e-6

    def test_warm_start_reused(self):
        planner = make_planner(horizon=6, rollout_backend="vectorized")
        state = (305.0, 304.0, 80.0, 80.0)
        planner.plan(state, np.full(6, 15_000.0))
        assert planner._last_z is not None
        planner.reset()
        assert planner._last_z is None


class TestBatchedPlanner:
    """MPCPlannerVec: S scenarios' penalty solves in one lockstep driver.

    The contract is *bitwise* equivalence: each scenario's plan (actions,
    cost, iteration count) and SolverStats must match what its own
    ``MPCPlanner(rollout_backend="vectorized")`` would produce, cold and
    warm-started alike - the batched planner is the same solver run S
    problems at a time, not an approximation of it.
    """

    HORIZON = 6
    STEP = 30.0
    EVALS = 30

    STATES = np.array(
        [
            (298.0, 298.0, 90.0, 80.0),
            (310.0, 308.0, 70.0, 30.0),
            (304.0, 303.0, 80.0, 60.0),
        ]
    )
    PREVIEWS = np.array(
        [
            [15_000.0] * HORIZON,
            [40_000.0] * HORIZON,
            [5_000.0] * HORIZON,
        ]
    )

    def _models(self):
        return [make_model(), make_model(capacitance_f=5_000.0), make_model()]

    def _planner_pair(self):
        models = self._models()
        vec = MPCPlannerVec(
            models,
            horizon=self.HORIZON,
            step_s=self.STEP,
            max_function_evals=self.EVALS,
        )
        refs = [
            MPCPlanner(
                mdl,
                horizon=self.HORIZON,
                step_s=self.STEP,
                max_function_evals=self.EVALS,
                rollout_backend="vectorized",
            )
            for mdl in models
        ]
        return vec, refs

    @staticmethod
    def _assert_plans_equal(plan, ref_plan):
        np.testing.assert_array_equal(plan.cap_bus_w, ref_plan.cap_bus_w)
        np.testing.assert_array_equal(plan.inlet_temp_k, ref_plan.inlet_temp_k)
        assert plan.solver_cost == ref_plan.solver_cost
        assert plan.solver_iterations == ref_plan.solver_iterations

    def test_cold_and_warm_waves_match_per_scenario_solves(self):
        """Three replan waves: one cold, two warm, mixed bank sizes."""
        vec, refs = self._planner_pair()
        for wave in range(3):
            states = self.STATES + 0.5 * wave  # drift the states a little
            plans = vec.plan_batch(states, self.PREVIEWS)
            for j, (plan, ref) in enumerate(zip(plans, refs)):
                ref_plan = ref.plan(tuple(states[j]), self.PREVIEWS[j])
                self._assert_plans_equal(plan, ref_plan)
        assert vec.stats == tuple(r.stats for r in refs)

    def test_stats_carry_winner_attribution(self):
        vec, _ = self._planner_pair()
        vec.plan_batch(self.STATES, self.PREVIEWS)
        vec.plan_batch(self.STATES + 1.0, self.PREVIEWS)
        for s in vec.stats:
            assert s.solves == 2
            assert s.wins_warm + s.wins_neutral + s.wins_full_cool == 2
            assert s.backend == "vectorized"

    def test_indices_subset_solves_only_those_scenarios(self):
        """Ragged routes: a finished column sits a wave out, its warm
        start and counters untouched, while the others solve in lockstep
        exactly as their own planner would."""
        vec, refs = self._planner_pair()
        vec.plan_batch(self.STATES, self.PREVIEWS)
        for ref, state, preview in zip(refs, self.STATES, self.PREVIEWS):
            ref.plan(tuple(state), preview)

        active = np.array([0, 2])
        plans = vec.plan_batch(
            (self.STATES + 1.0)[active],
            self.PREVIEWS[active],
            indices=active,
        )
        assert len(plans) == 2
        for plan, j in zip(plans, active):
            ref_plan = refs[j].plan(tuple(self.STATES[j] + 1.0), self.PREVIEWS[j])
            self._assert_plans_equal(plan, ref_plan)
        # the skipped scenario's bookkeeping did not move
        assert vec.stats[1].solves == 1
        assert vec.stats[1] == refs[1].stats

    def test_reset_clears_all_columns(self):
        vec, _ = self._planner_pair()
        vec.plan_batch(self.STATES, self.PREVIEWS)
        vec.reset()
        assert all(s.solves == 0 for s in vec.stats)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="at least one"):
            MPCPlannerVec([])

    def test_rejects_models_varying_beyond_bank_energy(self):
        """Only ecap may differ in a group; different weights mean the
        group was mis-keyed upstream."""
        models = [make_model(), make_model(weights=CostWeights(w1=123.0))]
        with pytest.raises(ValueError, match="lockstep MPC group"):
            MPCPlannerVec(models)

    def test_rejects_wrong_state_shape(self):
        vec, _ = self._planner_pair()
        with pytest.raises(ValueError, match="states"):
            vec.plan_batch(self.STATES[:2], self.PREVIEWS)


class TestSLSQPBackend:
    """The explicit-constraint formulation of the paper's Eq. 18."""

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            make_planner(method="simplex")

    def test_produces_feasible_plan(self):
        planner = make_planner(horizon=6, method="slsqp")
        plan = planner.plan((308.0, 307.0, 70.0, 60.0), np.full(6, 20_000.0))
        # explicit constraints: predicted trajectory inside C1/C4/C5
        assert max(plan.predicted.temps_k) <= 313.15 + 0.5
        assert min(plan.predicted.socs) >= 19.5
        assert min(plan.predicted.soes) >= 19.0

    def test_cools_from_hot_state(self):
        planner = make_planner(horizon=8, method="slsqp")
        plan = planner.plan((312.5, 311.0, 80.0, 80.0), np.full(8, 22_000.0))
        assert np.min(plan.inlet_temp_k) < 308.0

    def test_comparable_cost_to_penalty(self):
        state = (310.0, 309.0, 75.0, 70.0)
        preview = np.full(8, 20_000.0)
        pen = make_planner(horizon=8, method="penalty").plan(state, preview)
        slsqp = make_planner(horizon=8, method="slsqp").plan(state, preview)
        # same units once penalties are excluded: compare pure Eq.19+terminal
        pen_pure = pen.predicted.objective + pen.predicted.terminal
        slsqp_pure = slsqp.predicted.objective + slsqp.predicted.terminal
        assert slsqp_pure <= pen_pure * 1.15
