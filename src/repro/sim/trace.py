"""Per-step time-series recording.

The recorder writes each step into preallocated per-channel numpy buffers
(amortized O(1) via capacity doubling - no per-step list appends, no
list->array conversion at the end) and freezes into a :class:`Trace` of
read-only numpy arrays, which is what the figure generators and tests
consume.  Freezing is zero-copy: the trace holds read-only views of the
recorder's buffers, and the recorder copy-on-writes if recording continues
afterwards so frozen traces never change underneath their consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

#: Names of the recorded channels, in recording order.
CHANNELS = (
    "time_s",
    "request_w",
    "delivered_w",
    "battery_power_w",
    "cap_power_w",
    "cooling_power_w",
    "battery_soc_percent",
    "cap_soe_percent",
    "battery_temp_k",
    "coolant_temp_k",
    "inlet_temp_k",
    "heat_w",
    "cell_current_a",
    "chem_energy_j",
    "cap_energy_j",
    "converter_loss_j",
    "loss_increment_percent",
    "unmet_w",
)


@dataclass(frozen=True)
class Trace:
    """Frozen per-step time series of one simulation run.

    Every attribute is a read-only 1-D numpy array of equal length; energies
    and loss increments are per-step amounts, powers are step averages, and
    states are the values at the *end* of the step.
    """

    time_s: np.ndarray
    request_w: np.ndarray
    delivered_w: np.ndarray
    battery_power_w: np.ndarray
    cap_power_w: np.ndarray
    cooling_power_w: np.ndarray
    battery_soc_percent: np.ndarray
    cap_soe_percent: np.ndarray
    battery_temp_k: np.ndarray
    coolant_temp_k: np.ndarray
    inlet_temp_k: np.ndarray
    heat_w: np.ndarray
    cell_current_a: np.ndarray
    chem_energy_j: np.ndarray
    cap_energy_j: np.ndarray
    converter_loss_j: np.ndarray
    loss_increment_percent: np.ndarray
    unmet_w: np.ndarray

    def __post_init__(self):
        n = self.time_s.size
        for f in fields(self):
            arr = getattr(self, f.name)
            if arr.size != n:
                raise ValueError(f"channel {f.name} has {arr.size} samples, expected {n}")
            arr.setflags(write=False)

    def __len__(self) -> int:
        return self.time_s.size

    @property
    def dt(self) -> float:
        """Sample period [s] (uniform)."""
        if len(self) < 2:
            return 1.0
        return float(self.time_s[1] - self.time_s[0])

    def channel(self, name: str) -> np.ndarray:
        """Look a channel up by name."""
        if name not in CHANNELS:
            raise KeyError(f"unknown channel {name!r}; available: {', '.join(CHANNELS)}")
        return getattr(self, name)


class TraceRecorder:
    """Preallocated per-step accumulator that freezes into a :class:`Trace`.

    Buffers start at :data:`INITIAL_CAPACITY` samples and double when full,
    so a run of N steps costs O(N) amortized with no Python-list overhead.
    """

    INITIAL_CAPACITY = 1024

    def __init__(self):
        self._buf = {name: np.empty(0) for name in CHANNELS}
        self._capacity = 0
        self._n = 0
        # set once freeze() hands out views of the buffers; the next
        # record() then reallocates first so frozen traces stay immutable
        self._views_out = False

    def record(self, **values: float):
        """Append one step; every channel must be present exactly once."""
        if set(values) != set(CHANNELS):
            missing = set(CHANNELS) - set(values)
            extra = set(values) - set(CHANNELS)
            raise ValueError(f"bad record: missing={sorted(missing)} extra={sorted(extra)}")
        if self._n >= self._capacity or self._views_out:
            self._grow()
        n = self._n
        for name, value in values.items():
            self._buf[name][n] = float(value)
        self._n = n + 1

    def _grow(self):
        new_capacity = max(self.INITIAL_CAPACITY, 2 * self._capacity, self._n + 1)
        for name, old in self._buf.items():
            fresh = np.empty(new_capacity)
            fresh[: self._n] = old[: self._n]
            self._buf[name] = fresh
        self._capacity = new_capacity
        self._views_out = False

    def __len__(self) -> int:
        return self._n

    def freeze(self) -> Trace:
        """Snapshot the recording as a frozen :class:`Trace` (zero-copy).

        The trace holds read-only *views* of the recorder's buffers;
        recording further steps afterwards copy-on-writes the buffers, so
        an earlier freeze never observes later activity.
        """
        self._views_out = True
        return Trace(**{name: self._buf[name][: self._n] for name in CHANNELS})
