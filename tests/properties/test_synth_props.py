"""Property-based tests for drive-cycle synthesis and powertrain coupling."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.drivecycle.synth import accel, cruise, decel, idle, synthesize
from repro.vehicle.powertrain import Powertrain

peak_kmh = st.floats(min_value=5.0, max_value=130.0)
rate = st.floats(min_value=0.3, max_value=3.5)
hold = st.floats(min_value=1.0, max_value=120.0)
wait = st.floats(min_value=1.0, max_value=60.0)


def hill(peak, a, h, w):
    return [accel(peak, a), cruise(h), decel(0, a), idle(w)]


class TestSynthesisInvariants:
    @given(peak_kmh, rate, hold, wait)
    def test_speed_never_negative(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        assert np.all(cycle.speed_mps >= 0.0)

    @given(peak_kmh, rate, hold, wait)
    def test_peak_respected(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        assert cycle.stats().max_speed_kmh <= peak + 1e-6

    @given(peak_kmh, rate, hold, wait)
    def test_acceleration_bounded_by_rate(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        accel_trace = np.diff(cycle.speed_mps)  # forward difference, dt = 1
        assert np.max(np.abs(accel_trace)) <= a + 1e-6

    @given(peak_kmh, rate, hold, wait)
    def test_ends_stopped(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        assert cycle.speed_mps[-1] == 0.0

    @given(peak_kmh, rate, hold, wait)
    def test_distance_positive_and_consistent(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        upper = cycle.stats().max_speed_kmh / 3.6 * cycle.duration_s
        assert 0.0 < cycle.distance_m() <= upper + 1e-6


class TestPowertrainCoupling:
    @given(peak_kmh, rate, hold, wait)
    def test_request_finite_and_bounded(self, peak, a, h, w):
        cycle = synthesize("t", hill(peak, a, h, w))
        pt = Powertrain()
        pr = pt.power_request(cycle)
        assert np.all(np.isfinite(pr.power_w))
        assert pr.peak_power_w() <= pt.params.max_motor_power_w + pt.params.auxiliary_power_w
        assert pr.power_w.min() >= -pt.params.max_regen_power_w

    @given(peak_kmh, rate, hold, wait)
    def test_net_energy_positive(self, peak, a, h, w):
        """Driving a closed hill always costs net energy (no perpetual motion)."""
        cycle = synthesize("t", hill(peak, a, h, w))
        pr = Powertrain().power_request(cycle)
        assert pr.energy_j() > 0.0
