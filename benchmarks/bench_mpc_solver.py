"""Single-solve MPC speed: scalar reference vs the batched kernel.

The tentpole measurement of the vectorized-rollout PR: one penalty-method
``MPCPlanner.plan`` solve at the paper's horizon (N=12, default weights,
default budget) timed cold (fresh warm-start state, the expensive replan
case) and warm (receding-horizon steady state) for both rollout backends.
Records medians and the speedup to the perf-trajectory artifact
``BENCH_mpc.json``; the acceptance target for the vectorized backend is a
>= 3x median speedup, asserted here with a CI-noise safety margin.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.battery.pack import DEFAULT_PACK, BatteryPack
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.core.cost import CostWeights
from repro.core.mpc import MPCPlanner
from repro.core.rollout import PredictionModel
from repro.hees.hybrid import default_battery_converter, default_cap_converter
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams

#: Paper-scale solve: horizon N=12, default weights, default budget.
HORIZON = 12

#: A warm, loaded mid-route state - the regime where the solver works
#: hardest (cooling and ultracap dispatch both active).
STATE = (310.0, 308.5, 75.0, 65.0)

#: Constant 20 kW preview (a representative aggressive-route bin average).
PREVIEW = np.full(HORIZON, 20_000.0)

#: Cold-solve repetitions per backend (medians are stable well before 20).
REPEATS = 21


def _make_planner(backend: str) -> MPCPlanner:
    model = PredictionModel(
        DEFAULT_PACK,
        UltracapParams(),
        DEFAULT_COOLANT,
        default_battery_converter(BatteryPack(DEFAULT_PACK)),
        default_cap_converter(UltracapBank(UltracapParams())),
        CostWeights(),
    )
    return MPCPlanner(model, horizon=HORIZON, rollout_backend=backend)


def _measure(planner: MPCPlanner) -> dict:
    """Median cold/warm solve times [s] and the achieved cold cost."""
    cold, warm = [], []
    cost = float("nan")
    for _ in range(REPEATS):
        planner.reset()
        start = time.perf_counter()
        plan = planner.plan(STATE, PREVIEW)
        cold.append(time.perf_counter() - start)
        cost = plan.solver_cost
        start = time.perf_counter()
        planner.plan(STATE, PREVIEW)
        warm.append(time.perf_counter() - start)
    return {
        "cold_median_s": statistics.median(cold),
        "cold_mean_s": statistics.fmean(cold),
        "warm_median_s": statistics.median(warm),
        "cost": cost,
    }


def test_mpc_solver_vectorized_speedup(benchmark):
    scalar_planner = _make_planner("scalar")
    vec_planner = _make_planner("vectorized")

    # interleave-free but same-session: both backends measured back-to-back
    # so load noise hits them alike
    scalar = _measure(scalar_planner)
    vectorized = _measure(vec_planner)

    def solve_vectorized():
        vec_planner.reset()
        return vec_planner.plan(STATE, PREVIEW)

    run_once(benchmark, solve_vectorized)

    speedup = scalar["cold_median_s"] / vectorized["cold_median_s"]
    warm_speedup = scalar["warm_median_s"] / vectorized["warm_median_s"]

    # same formulation at the same budget: the two backends must land on
    # comparable objective values (different optimizer trajectories only)
    assert vectorized["cost"] <= scalar["cost"] * 1.10
    assert scalar["cost"] <= vectorized["cost"] * 1.10

    from repro.utils.perf import record_bench

    path = record_bench(
        "mpc",
        {
            "solver": {
                "horizon": HORIZON,
                "method": "penalty",
                "max_function_evals": 150,
                "weights": "default",
            },
            "state": list(STATE),
            "preview_w": 20_000.0,
            "repeats": REPEATS,
            "cpu_count": os.cpu_count(),
            "scalar": scalar,
            "vectorized": vectorized,
            "speedup_cold_median": speedup,
            "speedup_warm_median": warm_speedup,
        },
    )

    print()
    print(
        f"mpc solve (N={HORIZON}, penalty): "
        f"scalar {scalar['cold_median_s'] * 1e3:.1f} ms, "
        f"vectorized {vectorized['cold_median_s'] * 1e3:.1f} ms "
        f"-> {speedup:.2f}x cold, {warm_speedup:.2f}x warm -> {path}"
    )

    # acceptance: >= 3x; the unconditional floor leaves margin for noisy
    # shared runners, the strict gate runs where CI controls the machine
    assert speedup >= 2.0
    if os.environ.get("REPRO_REQUIRE_SPEEDUP"):
        assert speedup >= 3.0
