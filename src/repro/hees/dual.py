"""Dual HEES architecture (switched battery / ultracapacitor, baseline [16]).

Two switches (S_b, S_c in the paper's Fig. 3) route the load to the battery,
to the ultracapacitor, or keep the battery on the load while it also
recharges the ultracapacitor.  The switching *policy* lives in
:class:`repro.controllers.dual_threshold.DualThresholdController`; this
module is the plant.

As in :mod:`repro.hees.parallel`, the bank is re-strung to pack voltage so a
direct connection is meaningful.  The plant is failsafe: if the selected
storage cannot carry the load (depleted bank, current clip), the other one
covers the shortfall - the vehicle must keep driving; the controller reacts
on the next step.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.battery.pack import BatteryPack, BatteryPackVec
from repro.hees.state import HEESStepBatch, HEESStepResult
from repro.ultracap.bank import UltracapBank, UltracapBankVec
from repro.utils.validation import check_in_range, check_positive


class DualMode(enum.Enum):
    """Switch positions of the dual architecture."""

    BATTERY = "battery"
    ULTRACAP = "ultracap"
    RECHARGE = "recharge"  # battery on load + battery charges the bank


class DualHEES:
    """Switched battery/ultracapacitor storage.

    Parameters
    ----------
    pack:
        Battery pack.
    bank:
        Ultracapacitor bank (module-rated; re-strung internally as in the
        parallel architecture).
    cap_resistance_ohm:
        Series resistance of the re-strung bank [Ohm]; by default derived
        physically via
        :func:`repro.hees.parallel.restrung_resistance_ohm`.
    recharge_efficiency:
        Fraction of battery energy that lands in the bank on the recharge
        path [-] (switch + wiring loss).
    """

    def __init__(
        self,
        pack: BatteryPack,
        bank: UltracapBank,
        cap_resistance_ohm: float | None = None,
        recharge_efficiency: float = 0.95,
    ):
        from repro.hees.parallel import restrung_resistance_ohm

        self._pack = pack
        self._bank = bank
        if cap_resistance_ohm is None:
            cap_resistance_ohm = restrung_resistance_ohm(pack, bank)
        self._rc = check_positive(cap_resistance_ohm, "cap_resistance_ohm")
        self._eta_r = check_in_range(recharge_efficiency, 0.5, 1.0, "recharge_efficiency")
        full_voc_cell = float(pack.electrical.open_circuit_voltage(100.0))
        self._vr_eff = pack.config.series * full_voc_cell

    @property
    def pack(self) -> BatteryPack:
        """The battery pack."""
        return self._pack

    @property
    def bank(self) -> UltracapBank:
        """The ultracapacitor bank."""
        return self._bank

    def cap_voltage(self) -> float:
        """Bank voltage in the re-strung configuration [V]."""
        return self._vr_eff * float(np.sqrt(max(self._bank.soe_percent, 0.0) / 100.0))

    def _cap_deliverable_w(self, request_w: float, dt: float) -> float:
        """Power the bank can push into the load at its current voltage."""
        v_c = self.cap_voltage()
        max_point = v_c * v_c / (4.0 * self._rc)  # maximum-power-transfer point
        return float(min(request_w, max_point, self._bank.max_discharge_power_w(dt)))

    def step(
        self,
        request_w: float,
        mode: DualMode,
        recharge_power_w: float,
        dt: float,
    ) -> HEESStepResult:
        """Advance one step in the given switch position.

        Parameters
        ----------
        request_w:
            EV bus power request [W].  Negative (regen) power charges the
            ultracapacitor first - the switches make the bank the natural
            regen sink in this architecture [16] - with any excess going to
            the battery.
        mode:
            Switch position chosen by the controller.
        recharge_power_w:
            Battery->bank recharge power [W] when ``mode`` is RECHARGE
            (ignored otherwise).
        dt:
            Step duration [s].
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank

        cap_request = 0.0
        bank_charge = 0.0
        regen_to_cap = 0.0
        if request_w < 0:
            # regen charges the bank first (switch position), excess to battery
            regen_to_cap = min(-request_w, bank.max_charge_power_w(dt))
        elif mode is DualMode.ULTRACAP:
            cap_request = self._cap_deliverable_w(request_w, dt)
        if mode is DualMode.RECHARGE and recharge_power_w > 0 and request_w >= 0:
            bank_charge = min(
                recharge_power_w, max(0.0, bank.max_charge_power_w(dt) - regen_to_cap)
            )

        circuit_loss = 0.0
        cap_energy = 0.0
        cap_power = 0.0
        cap_current = 0.0

        if cap_request > 0:
            # bank discharges through its series resistance into the load
            v_c = self.cap_voltage()
            disc = v_c * v_c - 4.0 * self._rc * cap_request
            i_c = (v_c - np.sqrt(max(disc, 0.0))) / (2.0 * self._rc)
            cap = bank.apply_power(v_c * i_c, dt)
            cap_energy = cap.energy_j
            cap_power = cap.power_w
            # re-derive the current in the re-strung configuration (the bank
            # reports current at its module voltage, which is not the level
            # this architecture connects at)
            cap_current = cap.power_w / v_c if v_c > 1e-6 else 0.0
            circuit_loss += (cap_current**2) * self._rc * dt
            delivered_by_cap = cap.power_w - (cap_current**2) * self._rc
        else:
            delivered_by_cap = 0.0

        if regen_to_cap > 0:
            # regen into the bank (lossy switch/wiring path)
            cap = bank.apply_power(-regen_to_cap * self._eta_r, dt)
            cap_energy += cap.energy_j
            cap_power += cap.power_w
            circuit_loss += regen_to_cap * (1.0 - self._eta_r) * dt

        if bank_charge > 0:
            # battery pushes energy into the bank (lossy path)
            cap = bank.apply_power(-bank_charge * self._eta_r, dt)
            cap_energy += cap.energy_j
            circuit_loss += bank_charge * (1.0 - self._eta_r) * dt
            battery_extra = bank_charge
        else:
            battery_extra = 0.0

        battery_request = (
            request_w + regen_to_cap - delivered_by_cap + battery_extra
        )
        bat = pack.apply_power(battery_request, dt)

        delivered = (
            bat.terminal_power_w - battery_extra - regen_to_cap + delivered_by_cap
        )
        unmet = max(0.0, request_w - delivered) if request_w > 0 else 0.0

        return HEESStepResult(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap_power,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap_energy,
            converter_loss_j=circuit_loss,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
            notes={"mode": mode.value, "cap_current_a": float(cap_current)},
        )


class DualHEESVec:
    """Lockstep struct-of-arrays twin of :class:`DualHEES`.

    Takes the switch position as an integer code array (``MODE_*`` class
    constants) so a batched policy can hand over a whole column of modes.
    The regen / ultracap-discharge / battery-recharge paths are mutually
    exclusive per column (regen needs a negative request; the two others
    need distinct modes), so the scalar plant's up-to-three sequential
    ``bank.apply_power`` calls collapse into one masked call with the same
    per-column arguments - columns that take no bank path keep their SoE
    bit pattern untouched, exactly like the scalar plant not calling the
    bank at all.
    """

    MODE_BATTERY = 0
    MODE_ULTRACAP = 1
    MODE_RECHARGE = 2

    #: DualMode -> integer code (for batched policies).
    MODE_CODES = {
        DualMode.BATTERY: MODE_BATTERY,
        DualMode.ULTRACAP: MODE_ULTRACAP,
        DualMode.RECHARGE: MODE_RECHARGE,
    }

    def __init__(
        self,
        pack: BatteryPackVec,
        bank: UltracapBankVec,
        recharge_efficiency: float = 0.95,
    ):
        self._pack = pack
        self._bank = bank
        self._eta_r = check_in_range(
            recharge_efficiency, 0.5, 1.0, "recharge_efficiency"
        )
        full_voc_cell = float(pack.electrical.open_circuit_voltage(100.0))
        self._vr_eff = pack.config.series * full_voc_cell
        k = self._vr_eff / bank.rated_voltage_v
        self._rc = bank.internal_resistance_ohm * k * k

    def cap_voltage(self) -> np.ndarray:
        """Per-column bank voltage in the re-strung configuration [V]."""
        return self._vr_eff * np.sqrt(
            np.maximum(self._bank.soe_percent, 0.0) / 100.0
        )

    def step(
        self,
        request_w: np.ndarray,
        mode: np.ndarray,
        recharge_power_w: np.ndarray,
        dt: float,
    ) -> HEESStepBatch:
        """Vectorized :meth:`DualHEES.step` over all columns."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        pack, bank = self._pack, self._bank
        r_c = self._rc

        max_charge = bank.max_charge_power_w(dt)
        regen_to_cap = np.where(
            request_w < 0, np.minimum(-request_w, max_charge), 0.0
        )
        v_c = self.cap_voltage()
        max_point = v_c * v_c / (4.0 * r_c)
        deliverable = np.minimum(
            request_w, np.minimum(max_point, bank.max_discharge_power_w(dt))
        )
        cap_request = np.where(
            (request_w >= 0) & (mode == self.MODE_ULTRACAP), deliverable, 0.0
        )
        bank_charge = np.where(
            (mode == self.MODE_RECHARGE)
            & (recharge_power_w > 0)
            & (request_w >= 0),
            np.minimum(
                recharge_power_w, np.maximum(0.0, max_charge - regen_to_cap)
            ),
            0.0,
        )

        discharging = cap_request > 0
        regenerating = regen_to_cap > 0
        charging = bank_charge > 0

        # bank discharge through the series resistance into the load
        disc = v_c * v_c - 4.0 * r_c * cap_request
        i_c = (v_c - np.sqrt(np.maximum(disc, 0.0))) / (2.0 * r_c)
        bank_power = np.where(discharging, v_c * i_c, 0.0)
        bank_power = bank_power - regen_to_cap * self._eta_r
        bank_power = bank_power - bank_charge * self._eta_r
        touched = discharging | regenerating | charging
        cap = bank.apply_power(bank_power, dt, active=touched)

        cap_energy = cap.energy_j
        # the recharge path contributes energy only (matches the scalar
        # bookkeeping, which does not fold it into ultracap_power_w)
        cap_power = np.where(discharging | regenerating, cap.power_w, 0.0)
        cap_current = np.where(
            discharging & (v_c > 1e-6),
            cap.power_w / np.maximum(v_c, 1e-30),
            0.0,
        )
        circuit_loss = (
            np.where(discharging, (cap_current**2) * r_c * dt, 0.0)
            + regen_to_cap * (1.0 - self._eta_r) * dt
            + bank_charge * (1.0 - self._eta_r) * dt
        )
        delivered_by_cap = np.where(
            discharging, cap.power_w - (cap_current**2) * r_c, 0.0
        )
        battery_extra = bank_charge

        battery_request = (
            request_w + regen_to_cap - delivered_by_cap + battery_extra
        )
        bat = pack.apply_power(battery_request, dt)

        delivered = (
            bat.terminal_power_w - battery_extra - regen_to_cap + delivered_by_cap
        )
        unmet = np.where(
            request_w > 0, np.maximum(0.0, request_w - delivered), 0.0
        )

        return HEESStepBatch(
            requested_power_w=request_w,
            delivered_power_w=delivered,
            battery_power_w=bat.terminal_power_w,
            ultracap_power_w=cap_power,
            battery_cell_current_a=bat.cell_current_a,
            battery_heat_w=bat.heat_w,
            chem_energy_j=bat.chem_energy_j,
            cap_energy_j=cap_energy,
            converter_loss_j=circuit_loss,
            loss_increment_percent=bat.loss_increment_percent,
            unmet_power_w=unmet,
        )
