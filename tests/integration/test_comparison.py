"""Paper-shape regression tests.

These pin the qualitative results of the paper's evaluation (Section IV) at
the smallest workload that still exhibits them: US06 x2, 25,000 F, default
parameters.  The full-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.core.teb import teb_preparation_score
from repro.sim.scenario import Scenario, run_scenario

REPEAT = 2


@pytest.fixture(scope="module")
def results():
    out = {}
    for m in ("parallel", "cooling", "dual", "otem"):
        out[m] = run_scenario(
            Scenario(methodology=m, cycle="us06", repeat=REPEAT, mpc_max_evals=100)
        )
    return out


class TestCapacityLossOrdering:
    """Fig. 8 / Table I: OTEM < cooling-only < parallel; dual < parallel."""

    def test_otem_beats_everything(self, results):
        otem = results["otem"].qloss_percent
        for m in ("parallel", "cooling", "dual"):
            assert otem < results[m].qloss_percent

    def test_dual_beats_parallel(self, results):
        assert results["dual"].qloss_percent < results["parallel"].qloss_percent

    def test_cooling_beats_parallel(self, results):
        assert results["cooling"].qloss_percent < results["parallel"].qloss_percent

    def test_otem_reduction_magnitude(self, results):
        # paper Table I (US06): OTEM at ~43% of parallel; accept 20-80%
        ratio = results["otem"].qloss_percent / results["parallel"].qloss_percent
        assert 0.15 < ratio < 0.8


class TestPowerOrdering:
    """Fig. 9 / Table I: parallel cheapest, cooling-only most expensive."""

    def test_parallel_cheapest(self, results):
        base = results["parallel"].metrics.average_power_w
        for m in ("cooling", "dual", "otem"):
            assert results[m].metrics.average_power_w > base

    def test_cooling_most_expensive(self, results):
        cooling = results["cooling"].metrics.average_power_w
        for m in ("parallel", "dual", "otem"):
            if m != "cooling":
                assert results[m].metrics.average_power_w < cooling

    def test_otem_saves_vs_cooling_only(self, results):
        # paper: 12.1% reduction; accept anything beyond 2%
        ratio = (
            results["otem"].metrics.average_power_w
            / results["cooling"].metrics.average_power_w
        )
        assert ratio < 0.98


class TestThermalSafety:
    """Fig. 6: managed methodologies hold the C1 limit."""

    def test_otem_never_unsafe(self, results):
        assert results["otem"].metrics.time_above_safe_s == 0.0

    def test_cooling_never_unsafe(self, results):
        assert results["cooling"].metrics.time_above_safe_s == 0.0

    def test_otem_runs_cooler_than_parallel(self, results):
        assert (
            np.mean(results["otem"].trace.battery_temp_k)
            < np.mean(results["parallel"].trace.battery_temp_k)
        )


class TestDeliveryQuality:
    def test_otem_meets_demand(self, results):
        assert results["otem"].metrics.unmet_energy_j < 1e5  # < 0.03 kWh

    def test_parallel_meets_demand(self, results):
        assert results["parallel"].metrics.unmet_energy_j < 3e5


class TestTEBPreparation:
    """Fig. 7: OTEM holds more budget ahead of demand than the baselines."""

    def test_otem_prepares_better_than_dual(self, results):
        otem_score = teb_preparation_score(results["otem"].trace)
        dual_score = teb_preparation_score(results["dual"].trace)
        assert otem_score > dual_score


class TestFig1SizeDependence:
    """Fig. 1: small banks fail thermally under the dual methodology."""

    @pytest.fixture(scope="class")
    def dual_sizes(self):
        return {
            size: run_scenario(
                Scenario(methodology="dual", cycle="us06", repeat=3, ucap_farads=size)
            )
            for size in (5_000.0, 25_000.0)
        }

    def test_small_bank_hotter(self, dual_sizes):
        assert (
            dual_sizes[5_000.0].metrics.peak_temp_k
            >= dual_sizes[25_000.0].metrics.peak_temp_k - 0.5
        )

    def test_small_bank_ages_more(self, dual_sizes):
        assert (
            dual_sizes[5_000.0].qloss_percent
            > dual_sizes[25_000.0].qloss_percent
        )
