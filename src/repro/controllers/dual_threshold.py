"""Baseline [16]: dual architecture with temperature-threshold switching.

"The dual architecture methodology reacts when the battery temperature
reaches a threshold" (paper Section IV-B.3 and Fig. 6): the load switches to
the ultracapacitor when the battery gets hot, switches back when it has
cooled (or the bank is depleted), and the battery recharges the bank when it
is back on the load - which re-heats the battery, the pathology the paper's
motivational case study (Fig. 1) demonstrates for small banks.

No active cooling exists in this architecture.
"""

from __future__ import annotations

from repro.controllers.base import Architecture, Decision, Observation
from repro.hees.dual import DualMode
from repro.utils.validation import check_positive


class DualThresholdController:
    """Threshold-switching policy for the dual architecture.

    Parameters
    ----------
    temp_switch_k:
        Battery temperature that triggers the switch to the bank [K]
        (the paper's "certain threshold", just below the safety limit C1).
    temp_resume_k:
        Battery temperature at which the load returns to the battery [K].
    soe_floor_percent:
        Bank SoE at which the switch reverts regardless of temperature
        (constraint C5 floor plus a small guard).
    soe_target_percent:
        The recharge path tops the bank back up to this SoE.
    recharge_power_w:
        Battery->bank recharge power [W].
    """

    name = "Dual [16]"
    architecture = Architecture.DUAL
    uses_cooling = False

    def __init__(
        self,
        temp_switch_k: float = 307.15,
        temp_resume_k: float = 303.15,
        soe_floor_percent: float = 22.0,
        soe_target_percent: float = 95.0,
        recharge_power_w: float = 3_000.0,
        recharge_temp_max_k: float = 306.15,
    ):
        check_positive(temp_switch_k, "temp_switch_k")
        check_positive(temp_resume_k, "temp_resume_k")
        if temp_resume_k >= temp_switch_k:
            raise ValueError("temp_resume_k must be below temp_switch_k")
        if not 0.0 <= soe_floor_percent < soe_target_percent <= 100.0:
            raise ValueError("need 0 <= soe_floor < soe_target <= 100")
        check_positive(recharge_power_w, "recharge_power_w")
        self._t_switch = temp_switch_k
        self._t_resume = temp_resume_k
        self._soe_floor = soe_floor_percent
        self._soe_target = soe_target_percent
        self._recharge_w = recharge_power_w
        self._recharge_t_max = recharge_temp_max_k
        self._on_cap = False

    @property
    def is_on_ultracap(self) -> bool:
        """Whether the load is currently switched to the bank."""
        return self._on_cap

    def control(self, obs: Observation) -> Decision:
        """Threshold switching with SoE guard and opportunistic recharge."""
        if self._on_cap:
            if (
                obs.battery_temp_k <= self._t_resume
                or obs.cap_soe_percent <= self._soe_floor
            ):
                self._on_cap = False
        elif obs.battery_temp_k >= self._t_switch:
            if obs.cap_soe_percent > self._soe_floor:
                self._on_cap = True

        if self._on_cap:
            mode = DualMode.ULTRACAP
            recharge = 0.0
        elif (
            obs.cap_soe_percent < self._soe_target
            and obs.battery_temp_k < self._recharge_t_max
        ):
            # top the bank up from the battery only while the battery is
            # reasonably cool - recharging a hot battery makes things worse
            # (the paper's Fig. 1 pathology)
            mode = DualMode.RECHARGE
            recharge = self._recharge_w
        else:
            mode = DualMode.BATTERY
            recharge = 0.0

        return Decision(
            dual_mode=mode,
            recharge_power_w=recharge,
            cooling_active=False,
            info={"mode": mode.value},
        )

    def reset(self):
        """Return the switch to the battery position."""
        self._on_cap = False
