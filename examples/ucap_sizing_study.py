#!/usr/bin/env python
"""Ultracapacitor sizing study (the paper's Table I, self-service).

Sweeps bank sizes for a chosen methodology and prints capacity loss,
average power and thermal safety per size - the analysis an engineer would
run before buying 25,000 F worth of ultracapacitors (~$15k at the paper's
price point).

The sweep is one :func:`repro.run_batch` grid: pass a worker count to fan
it out over processes, and repeated invocations are served from the
on-disk result cache in ``.repro_cache``.

Usage::

    python examples/ucap_sizing_study.py [methodology] [cycle] [workers]
"""

import sys

from repro import Scenario, run_batch, scenario_grid
from repro.sim.batch import ResultCache
from repro.utils.units import kelvin_to_celsius

SIZES_F = (5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0)

#: Paper's cost estimate: ~$12,000 per 20,000 F (Section I).
DOLLARS_PER_FARAD = 0.6


def main():
    methodology = sys.argv[1] if len(sys.argv) > 1 else "otem"
    cycle = sys.argv[2] if len(sys.argv) > 2 else "us06"
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    grid = scenario_grid(
        Scenario(methodology=methodology, cycle=cycle, repeat=2),
        ucap_farads=SIZES_F,
    )
    batch = run_batch(
        grid, workers=workers, cache=ResultCache()
    ).raise_on_failure()

    print(
        f"Sizing study: {methodology} on {cycle} x2 "
        f"({len(grid)} cells, {workers or 1} worker(s), "
        f"{batch.cache_hits} cached, {batch.wall_s:.1f} s)"
    )
    print(
        f"{'size [F]':>9} {'cost [$]':>9} {'Qloss [%]':>10} {'avg P [kW]':>11} "
        f"{'peak T [C]':>11} {'unsafe [s]':>11}"
    )
    rows = []
    for cell in batch.cells:
        size, m = cell.scenario.ucap_farads, cell.metrics
        rows.append((size, m))
        print(
            f"{size:>9.0f} {size * DOLLARS_PER_FARAD:>9,.0f} "
            f"{m.qloss_percent:>10.4f} {m.average_power_w / 1000:>11.2f} "
            f"{kelvin_to_celsius(m.peak_temp_k):>11.1f} {m.time_above_safe_s:>11.0f}"
        )

    best = min(rows, key=lambda r: r[1].qloss_percent)
    print()
    print(
        f"Best battery lifetime at {best[0]:,.0f} F "
        f"(${best[0] * DOLLARS_PER_FARAD:,.0f}): {best[1].qloss_percent:.4f}% loss"
    )
    if methodology == "otem":
        spread = max(r[1].qloss_percent for r in rows) / min(
            r[1].qloss_percent for r in rows
        )
        print(
            f"OTEM's loss varies only {spread:.2f}x across a 5x size range - "
            "the paper's point: OTEM does not depend on an expensive bank."
        )


if __name__ == "__main__":
    main()
