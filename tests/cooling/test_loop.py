"""Cooling-loop dynamics tests (Eq. 14-17)."""

import pytest

from repro.battery.pack import DEFAULT_PACK
from repro.cooling.coolant import DEFAULT_COOLANT
from repro.cooling.loop import CoolingLoop


@pytest.fixture()
def loop():
    return CoolingLoop(DEFAULT_COOLANT, DEFAULT_PACK.heat_capacity_j_per_k)


def run_loop(loop, tb, tc, inlet, heat, steps, dt=1.0, **kwargs):
    result = None
    for _ in range(steps):
        result = loop.step(tb, tc, inlet, heat, dt, **kwargs)
        tb, tc = result.battery_temp_k, result.coolant_temp_k
    return tb, tc, result


class TestInletClamp:
    def test_cooling_only_constraint_c2(self, loop):
        # commanded inlet above T_c is clamped down to T_c
        assert loop.clamp_inlet(330.0, 310.0) == 310.0

    def test_power_ceiling_constraint_c3(self, loop):
        # commanded inlet far below the power-limited drop is raised
        clamped = loop.clamp_inlet(100.0, 310.0)
        power = loop.cooler_power_w(clamped, 310.0)
        assert power <= DEFAULT_COOLANT.max_cooler_power_w * (1 + 1e-9)

    def test_min_inlet_floor(self, loop):
        clamped = loop.clamp_inlet(100.0, 290.0)
        assert clamped >= DEFAULT_COOLANT.min_inlet_temp_k

    def test_valid_command_unchanged(self, loop):
        assert loop.clamp_inlet(305.0, 310.0) == 305.0


class TestCoolerPower:
    def test_eq16(self, loop):
        p = DEFAULT_COOLANT
        power = loop.cooler_power_w(300.0, 310.0)
        assert power == pytest.approx(
            p.flow_capacity_rate_w_per_k * 10.0 / p.cooler_efficiency
        )

    def test_zero_drop_zero_power(self, loop):
        assert loop.cooler_power_w(310.0, 310.0) == 0.0

    def test_no_negative_power(self, loop):
        assert loop.cooler_power_w(320.0, 310.0) == 0.0


class TestDynamics:
    def test_heat_raises_temperature_without_cooling(self, loop):
        tb, tc, _ = run_loop(loop, 298.0, 298.0, 298.0, 2_000.0, 300, cooling_active=False)
        assert tb > 300.0
        assert tc > 298.0

    def test_adiabatic_energy_balance(self, loop):
        # sealed pack, no flow: all heat goes into the two thermal masses
        heat, steps = 2_000.0, 600
        tb, tc, _ = run_loop(loop, 298.0, 298.0, 298.0, heat, steps, cooling_active=False)
        stored = (
            DEFAULT_PACK.heat_capacity_j_per_k * (tb - 298.0)
            + DEFAULT_COOLANT.coolant_heat_capacity_j_per_k * (tc - 298.0)
        )
        assert stored == pytest.approx(heat * steps, rel=1e-6)

    def test_cooling_pulls_temperature_down(self, loop):
        tb, _, _ = run_loop(loop, 315.0, 315.0, 288.15, 0.0, 600, cooling_active=True)
        assert tb < 300.0

    def test_equilibrium_matches_formula(self, loop):
        heat = 2_000.0
        inlet = 292.0
        expected = loop.equilibrium_battery_temp_k(heat, inlet)
        tb, _, _ = run_loop(loop, 298.0, 298.0, inlet, heat, 5_000, cooling_active=True)
        assert tb == pytest.approx(expected, abs=0.1)

    def test_passive_ambient_cools_hot_pack(self, loop):
        tb_sealed, _, _ = run_loop(
            loop, 320.0, 320.0, 320.0, 0.0, 600, cooling_active=False
        )
        tb_vented, _, _ = run_loop(
            loop, 320.0, 320.0, 320.0, 0.0, 600,
            cooling_active=False, passive_ambient=True,
        )
        assert tb_vented < tb_sealed

    def test_passive_ambient_equilibrium_is_ambient(self, loop):
        tb, _, _ = run_loop(
            loop, 320.0, 320.0, 320.0, 0.0, 100_000,
            cooling_active=False, passive_ambient=True,
        )
        assert tb == pytest.approx(DEFAULT_COOLANT.ambient_temp_k, abs=0.05)

    def test_stability_at_large_dt(self, loop):
        # trapezoidal discretization must not oscillate at multi-second steps
        tb, tc = 310.0, 310.0
        temps = []
        for _ in range(100):
            r = loop.step(tb, tc, 288.15, 1_000.0, 10.0, cooling_active=True)
            tb, tc = r.battery_temp_k, r.coolant_temp_k
            temps.append(tb)
        diffs = [temps[i + 1] - temps[i] for i in range(len(temps) - 1)]
        assert all(d <= 1e-9 for d in diffs)  # monotone approach, no ringing

    def test_pump_power_reported_when_active(self, loop):
        r = loop.step(300.0, 300.0, 295.0, 0.0, 1.0, cooling_active=True)
        assert r.pump_power_w == DEFAULT_COOLANT.pump_power_w
        assert r.total_power_w == r.cooler_power_w + r.pump_power_w

    def test_no_pump_power_when_inactive(self, loop):
        r = loop.step(300.0, 300.0, 295.0, 0.0, 1.0, cooling_active=False)
        assert r.pump_power_w == 0.0
        assert r.cooler_power_w == 0.0

    def test_rejects_nonpositive_dt(self, loop):
        with pytest.raises(ValueError):
            loop.step(300.0, 300.0, 295.0, 0.0, 0.0)

    def test_rejects_nonpositive_heat_capacity(self):
        with pytest.raises(ValueError):
            CoolingLoop(DEFAULT_COOLANT, 0.0)
