"""Cell electrical model: Eq. 1 (SoC), Eq. 2 (Voc), Eq. 3 (R).

All functions are vectorized over SoC/temperature and are used both by the
plant (simulation) and by the OTEM MPC's prediction rollout, so they must be
cheap and smooth.
"""

from __future__ import annotations

import numpy as np

from repro.battery.params import CellParams, NCR18650A
from repro.utils.units import ah_to_coulomb


class BatteryElectrical:
    """Electrical model of a single cell.

    Parameters
    ----------
    params:
        Cell parameter set (defaults to the NCR18650A-class preset).
    """

    def __init__(self, params: CellParams = NCR18650A):
        self._p = params

    @property
    def params(self) -> CellParams:
        """Cell parameters in use."""
        return self._p

    # ------------------------------------------------------------------ #
    # Eq. 2: open-circuit voltage

    def open_circuit_voltage(self, soc_percent):
        """Open-circuit voltage Voc [V] at ``soc_percent`` in [0, 100] (Eq. 2)."""
        s = np.asarray(soc_percent, dtype=float)
        p = self._p
        return (
            p.voc_exp_a * np.exp(p.voc_exp_b * s)
            + p.voc_p4 * s**4
            + p.voc_p3 * s**3
            + p.voc_p2 * s**2
            + p.voc_p1 * s
            + p.voc_p0
        )

    # ------------------------------------------------------------------ #
    # Eq. 3: internal resistance, with Arrhenius temperature factor

    def internal_resistance(self, soc_percent, temp_k):
        """Internal resistance R [Ohm] at the given SoC [%] and temperature [K].

        Implements Eq. 3, ``r1 e^{r2 SoC} + r3``, with the paper's
        "temperature-sensitive r parameters" realized as a multiplicative
        Arrhenius factor: resistance grows as the cell cools, which is what
        makes pre-warming (not over-cooling) energetically relevant to OTEM.
        """
        s = np.asarray(soc_percent, dtype=float)
        t = np.asarray(temp_k, dtype=float)
        p = self._p
        base = p.res_exp_a * np.exp(p.res_exp_b * s) + p.res_base
        temp_factor = np.exp(p.res_temp_k * (1.0 / t - 1.0 / p.res_ref_temp_k))
        return base * temp_factor

    # ------------------------------------------------------------------ #
    # Eq. 1: SoC integration

    def soc_after(self, soc_percent: float, current_a: float, dt: float) -> float:
        """SoC [%] after drawing ``current_a`` for ``dt`` seconds (Eq. 1).

        Positive current discharges.  The result is not clipped; callers
        enforce constraint C4.
        """
        capacity_c = ah_to_coulomb(self._p.capacity_ah)
        return float(soc_percent - 100.0 * current_a * dt / capacity_c)

    # ------------------------------------------------------------------ #
    # terminal quantities

    def terminal_voltage(self, soc_percent, current_a, temp_k):
        """Terminal voltage V = Voc - I R [V] (positive current discharges)."""
        voc = self.open_circuit_voltage(soc_percent)
        res = self.internal_resistance(soc_percent, temp_k)
        return voc - np.asarray(current_a, dtype=float) * res

    def current_for_power(
        self, power_w: float, soc_percent: float, temp_k: float
    ) -> float:
        """Cell current [A] that delivers ``power_w`` at the terminals.

        Solves ``I (Voc - I R) = P`` for the physical (smaller-|I|) root.
        Positive power discharges, negative charges.  If the demanded power
        exceeds the cell's maximum transferable power ``Voc^2 / (4R)``, the
        current is capped at the maximum-power point ``Voc / (2R)`` - the
        plant cannot deliver more regardless of the controller's request.
        """
        voc = float(self.open_circuit_voltage(soc_percent))
        res = float(self.internal_resistance(soc_percent, temp_k))
        if abs(power_w) < 1e-12:
            return 0.0
        disc = voc * voc - 4.0 * res * power_w
        if disc < 0.0:
            # demand beyond the maximum power point: cap at Voc / 2R
            return voc / (2.0 * res)
        return (voc - np.sqrt(disc)) / (2.0 * res)

    def max_discharge_power(self, soc_percent: float, temp_k: float) -> float:
        """Largest terminal power [W] deliverable at the current-limit (C6).

        This is the power at ``I = max_current_a`` (the rating limit), not
        the theoretical maximum-power point, which would destroy the cell.
        """
        i_max = self._p.max_current_a
        voc = float(self.open_circuit_voltage(soc_percent))
        res = float(self.internal_resistance(soc_percent, temp_k))
        return i_max * (voc - i_max * res)
