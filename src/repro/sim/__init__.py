"""Discrete-time simulation of a managed HEES driving a route.

:class:`Simulator` implements the outer loop of the paper's Algorithm 1:
observe, let the controller decide, apply the decision to the HEES plant and
the cooling loop, accumulate Q_loss and Energy, carry the states to the next
step.

Public API
----------
``Simulator`` / ``SimulationResult``
    The engine and its output (trace + summary metrics).
``Trace``
    Per-step time series recorded during a run.
``SummaryMetrics`` / ``compute_metrics``
    The quantities the paper's evaluation reports.
``Scenario`` / ``run_scenario``
    One-call convenience wrapper (controller + cycle + sizing -> result).
``run_batch`` / ``scenario_grid`` / ``BatchResult`` / ``ResultCache``
    Parallel execution of scenario grids with content-addressed caching.
``run_lockstep`` / ``lockstep_supported``
    The vectorized lockstep engine: baseline ensembles advance as one
    struct-of-arrays batch (``run_batch(execution="auto")`` uses it).
"""

from repro.sim.trace import Trace, TraceRecorder
from repro.sim.metrics import SummaryMetrics, compute_metrics
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.scenario import Scenario, build_controller, run_scenario
from repro.sim.batch import (
    BatchCell,
    BatchResult,
    ResultCache,
    run_batch,
    scenario_fingerprint,
    scenario_grid,
)
from repro.sim.engine_vec import (
    lockstep_key,
    lockstep_supported,
    run_lockstep,
    run_lockstep_group,
)

__all__ = [
    "Trace",
    "TraceRecorder",
    "SummaryMetrics",
    "compute_metrics",
    "SimulationResult",
    "Simulator",
    "Scenario",
    "build_controller",
    "run_scenario",
    "BatchCell",
    "BatchResult",
    "ResultCache",
    "run_batch",
    "scenario_fingerprint",
    "scenario_grid",
    "lockstep_key",
    "lockstep_supported",
    "run_lockstep",
    "run_lockstep_group",
]
