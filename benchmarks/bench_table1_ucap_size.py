"""Table I - influence of ultracapacitor size.

Paper (US06): shrinking the bank from 25,000 F to 5,000 F
* raises the parallel architecture's capacity loss steeply (100 -> 175%),
* leaves the dual architecture's loss roughly flat but dependent (85 +/- 4%),
* barely moves OTEM (42.9 -> 49.0%) because it can fall back on the cooler,
* raises OTEM's average power moderately (20.7 -> 22.4 kW).

Expected shape: the parallel column grows steeply as the bank shrinks;
OTEM's relative growth is the smallest; OTEM's power grows as the bank
shrinks; OTEM's loss is the lowest in every row.
"""

from benchmarks.conftest import BATCH_WORKERS, REPEAT_SWEEP, run_once
from repro.analysis.report import render_table1
from repro.analysis.tables import TABLE1_SIZES_F, table1_data
from repro.sim.batch import ResultCache


def test_table1_ucap_size_sweep(benchmark):
    # the (size x method) grid fans out over worker processes and lands in
    # the shared result cache, so re-runs (and CI retries) are hits
    data = run_once(
        benchmark,
        table1_data,
        repeat=REPEAT_SWEEP,
        workers=BATCH_WORKERS,
        cache=ResultCache(),
    )
    print()
    print(render_table1(data))

    smallest = data.row(min(TABLE1_SIZES_F))
    largest = data.row(max(TABLE1_SIZES_F))

    # parallel degrades steeply with a smaller bank
    parallel_growth = (
        smallest.capacity_loss_pct["parallel"] / largest.capacity_loss_pct["parallel"]
    )
    assert parallel_growth > 1.1

    # OTEM's absolute degradation stays small: even with the smallest bank
    # it loses less capacity than the parallel architecture does with the
    # largest (paper: 49.0 < 100.0) - "OTEM is not much dependent on the
    # ultracapacitor size"
    assert smallest.capacity_loss_pct["otem"] < largest.capacity_loss_pct["parallel"]
    # and its absolute growth across the sweep is no worse than parallel's
    otem_spread = (
        smallest.capacity_loss_pct["otem"] - largest.capacity_loss_pct["otem"]
    )
    parallel_spread = (
        smallest.capacity_loss_pct["parallel"]
        - largest.capacity_loss_pct["parallel"]
    )
    assert otem_spread <= parallel_spread * 1.25

    # OTEM is the best ager in every row
    for row in data.rows:
        assert row.capacity_loss_pct["otem"] == min(row.capacity_loss_pct.values())

    # OTEM pays for cooling: its power exceeds the passive architectures
    # and grows as the bank shrinks (paper: 20.7 -> 22.4 kW)
    assert smallest.avg_power_w["otem"] > largest.avg_power_w["otem"] * 0.99
    for row in data.rows:
        assert row.avg_power_w["otem"] > row.avg_power_w["parallel"]
