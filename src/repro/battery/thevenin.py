"""Second-order Thevenin (RC) battery model - the paper's "more detailed
battery electrical model".

The paper uses the static model V = Voc - I R (Eq. 2-3) and notes that
"although more detailed battery electrical model may increase behavior
modeling accuracy, it will not contradict our methodology".  This module
provides that more detailed model - the series resistance plus two RC
polarization branches standard in BMS practice:

    V = Voc(SoC) - I R0(SoC,T) - U1 - U2
    dU_i/dt = -U_i / (R_i C_i) + I / C_i          (i = 1, 2)

with a fast branch (seconds; charge-transfer) and a slow branch (tens of
seconds; diffusion).  ``tests/battery/test_thevenin.py`` verifies the
paper's claim: on drive-cycle loads the dynamic model's energy/heat
deviate from the static model by only a few percent, so the management
conclusions carry over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.electrical import BatteryElectrical
from repro.battery.params import CellParams, NCR18650A
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RCBranch:
    """One polarization branch.

    Attributes
    ----------
    resistance_ohm:
        Branch resistance R_i [Ohm].
    capacitance_f:
        Branch capacitance C_i [F]; tau = R_i C_i.
    """

    resistance_ohm: float
    capacitance_f: float

    def __post_init__(self):
        check_positive(self.resistance_ohm, "resistance_ohm")
        check_positive(self.capacitance_f, "capacitance_f")

    @property
    def tau_s(self) -> float:
        """Branch time constant [s]."""
        return self.resistance_ohm * self.capacitance_f


#: Typical 18650 branch values: a ~2 s charge-transfer branch and a ~40 s
#: diffusion branch, each a fraction of the ohmic resistance.
DEFAULT_FAST = RCBranch(resistance_ohm=0.012, capacitance_f=180.0)
DEFAULT_SLOW = RCBranch(resistance_ohm=0.018, capacitance_f=2_200.0)


class TheveninCell:
    """Dynamic cell model with two RC polarization branches.

    Parameters
    ----------
    params:
        Static cell parameters (Voc and the ohmic R come from them; the
        ohmic part is reduced by the branch resistances so the *total*
        steady-state resistance matches the static model).
    fast / slow:
        The two polarization branches.
    initial_soc_percent:
        Starting SoC [%].
    """

    def __init__(
        self,
        params: CellParams = NCR18650A,
        fast: RCBranch = DEFAULT_FAST,
        slow: RCBranch = DEFAULT_SLOW,
        initial_soc_percent: float = 100.0,
    ):
        self._p = params
        self._static = BatteryElectrical(params)
        self._fast = fast
        self._slow = slow
        branch_total = fast.resistance_ohm + slow.resistance_ohm
        # the static R(SoC, T) is the *steady-state* total; the ohmic part
        # is what remains after the branches
        base_r = float(self._static.internal_resistance(50.0, params.res_ref_temp_k))
        if branch_total >= base_r:
            raise ValueError(
                f"branch resistances ({branch_total:.3f} Ohm) must stay below "
                f"the mid-SoC total resistance ({base_r:.3f} Ohm)"
            )
        self._soc = float(initial_soc_percent)
        self._u1 = 0.0
        self._u2 = 0.0

    # ------------------------------------------------------------------ #

    @property
    def soc_percent(self) -> float:
        """State of charge [%]."""
        return self._soc

    @property
    def polarization_v(self) -> tuple:
        """Current branch voltages (U1, U2) [V]."""
        return (self._u1, self._u2)

    def ohmic_resistance(self, temp_k: float) -> float:
        """Instantaneous (ohmic-only) resistance R0 [Ohm]."""
        total = float(self._static.internal_resistance(self._soc, temp_k))
        branch = self._fast.resistance_ohm + self._slow.resistance_ohm
        return max(total - branch, 0.2 * total)

    def terminal_voltage(self, current_a: float, temp_k: float) -> float:
        """Terminal voltage under load, including polarization [V]."""
        voc = float(self._static.open_circuit_voltage(self._soc))
        return (
            voc
            - current_a * self.ohmic_resistance(temp_k)
            - self._u1
            - self._u2
        )

    def step(self, current_a: float, temp_k: float, dt: float) -> dict:
        """Advance the dynamic states one step (positive current discharges).

        Returns a dict with ``terminal_v``, ``heat_w`` (ohmic + both branch
        dissipations + entropic) and ``chem_power_w`` (Voc x I).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        v_term = self.terminal_voltage(current_a, temp_k)

        # heat: ohmic + branch dissipation + entropic (Eq. 4 generalized)
        r0 = self.ohmic_resistance(temp_k)
        heat = current_a * current_a * r0
        heat += self._u1 * self._u1 / self._fast.resistance_ohm
        heat += self._u2 * self._u2 / self._slow.resistance_ohm
        heat += current_a * temp_k * self._p.entropy_coeff_v_per_k

        chem_power = float(self._static.open_circuit_voltage(self._soc)) * current_a

        # exact exponential update of each branch for a constant-current step
        import math

        for branch, attr in ((self._fast, "_u1"), (self._slow, "_u2")):
            u = getattr(self, attr)
            alpha = math.exp(-dt / branch.tau_s)
            setattr(
                self, attr, u * alpha + branch.resistance_ohm * current_a * (1 - alpha)
            )

        self._soc = self._static.soc_after(self._soc, current_a, dt)
        self._soc = min(100.0, max(0.0, self._soc))

        return {"terminal_v": v_term, "heat_w": heat, "chem_power_w": chem_power}

    def reset(self, soc_percent: float = 100.0):
        """Clear polarization and restore SoC."""
        self._soc = float(soc_percent)
        self._u1 = 0.0
        self._u2 = 0.0
