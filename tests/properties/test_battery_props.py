"""Property-based tests for the battery models (Eq. 1-5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.battery.aging import AgingModel
from repro.battery.electrical import BatteryElectrical
from repro.battery.pack import BatteryPack
from repro.battery.thermal import heat_generation_w

soc = st.floats(min_value=0.0, max_value=100.0)
temp = st.floats(min_value=258.15, max_value=333.15)
current = st.floats(min_value=-15.0, max_value=15.0)
power = st.floats(min_value=-40.0, max_value=40.0)

model = BatteryElectrical()


class TestElectricalInvariants:
    @given(soc)
    def test_voc_in_cell_envelope(self, s):
        v = float(model.open_circuit_voltage(s))
        assert 2.8 <= v <= 4.3

    @given(soc, temp)
    def test_resistance_positive_and_bounded(self, s, t):
        r = float(model.internal_resistance(s, t))
        assert 0.0 < r < 1.0

    @given(st.floats(min_value=0.0, max_value=99.0), temp)
    def test_voc_monotone_locally(self, s, t):
        assert model.open_circuit_voltage(s + 1.0) > model.open_circuit_voltage(s)

    @given(soc, temp, power)
    def test_current_for_power_balances(self, s, t, p):
        i = model.current_for_power(p, s, t)
        v = float(model.terminal_voltage(s, i, t))
        voc = float(model.open_circuit_voltage(s))
        r = float(model.internal_resistance(s, t))
        if p <= voc * voc / (4 * r):  # within max-power point
            assert i * v == approx_rel(p, 1e-6)

    @given(soc, current, st.floats(min_value=0.1, max_value=100.0))
    def test_soc_charge_conservation(self, s, i, dt):
        s_new = model.soc_after(s, i, dt)
        # Eq. 1: exact linear relation between charge moved and SoC
        charge_moved = i * dt
        assert (s - s_new) * model.params.capacity_ah * 36.0 == approx_rel(
            charge_moved, 1e-9, abs_tol=1e-9
        )


class TestThermalInvariants:
    @given(current, soc, temp)
    def test_joule_part_never_negative(self, i, s, t):
        q = float(heat_generation_w(i, s, t))
        entropic = i * t * model.params.entropy_coeff_v_per_k
        assert q - entropic >= -1e-12

    @given(soc, temp)
    def test_zero_current_zero_heat(self, s, t):
        assert float(heat_generation_w(0.0, s, t)) == 0.0


class TestAgingInvariants:
    @given(current, temp)
    def test_rate_nonnegative(self, i, t):
        assert float(AgingModel().loss_rate(i, t)) >= 0.0

    @given(st.floats(min_value=0.1, max_value=15.0), temp)
    def test_hotter_always_ages_faster(self, i, t):
        a = AgingModel()
        assert float(a.loss_rate(i, t + 5.0)) > float(a.loss_rate(i, t))

    @given(st.floats(min_value=0.1, max_value=14.0), temp)
    def test_more_current_always_ages_faster(self, i, t):
        a = AgingModel()
        assert float(a.loss_rate(i + 1.0, t)) > float(a.loss_rate(i, t))


class TestPackInvariants:
    @given(
        st.floats(min_value=-150_000.0, max_value=150_000.0),
        st.floats(min_value=0.1, max_value=30.0),
    )
    def test_step_never_escapes_soc_bounds(self, p, dt):
        pack = BatteryPack(initial_soc_percent=50.0)
        pack.apply_power(p, dt)
        assert 0.0 <= pack.soc_percent <= 100.0

    @given(st.floats(min_value=0.0, max_value=500_000.0))
    def test_heat_never_negative(self, p):
        pack = BatteryPack()
        assert pack.apply_power(p, 1.0).heat_w >= 0.0

    @given(st.floats(min_value=0.0, max_value=500_000.0))
    def test_delivered_never_exceeds_request_on_discharge(self, p):
        pack = BatteryPack()
        result = pack.apply_power(p, 1.0)
        assert result.terminal_power_w <= p + 1e-6


def approx_rel(value, rel, abs_tol=1e-6):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)
