"""Hybrid Electrical Energy Storage architectures (paper Section II-C).

Three architectures from the paper:

* :class:`ParallelHEES` - battery and ultracapacitor hard-wired in parallel
  (Eq. 10-13); no management possible, the circuit decides the split
  (baseline [15]).
* :class:`DualHEES` - switches select battery, ultracapacitor, or a
  battery->ultracapacitor recharge path (baseline [16]).
* :class:`HybridHEES` - each storage behind its own DC/DC converter on a
  common DC bus; fully controllable split (the architecture OTEM drives).

All architectures step with the same :class:`HEESStepResult` bookkeeping so
metrics and benchmarks treat them uniformly.
"""

from repro.hees.converter import ConverterParams, DCDCConverter
from repro.hees.state import HEESStepResult
from repro.hees.parallel import ParallelHEES
from repro.hees.dual import DualHEES, DualMode
from repro.hees.hybrid import HybridHEES

__all__ = [
    "ConverterParams",
    "DCDCConverter",
    "HEESStepResult",
    "ParallelHEES",
    "DualHEES",
    "DualMode",
    "HybridHEES",
]
