"""Backward-facing powertrain: drive cycle -> electrical power request.

This is the ADVISOR substitute (see DESIGN.md).  The chain is:

    speed trace -> road loads (Glider) -> wheel power
                -> motor/inverter map (MotorDrive) -> DC-bus power
                -> + auxiliary hotel load -> P_e(t)

``P_e(t)`` is the trace consumed by every controller in this library,
including the OTEM MPC's preview window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.drivecycle.cycle import DriveCycle
from repro.vehicle.glider import Glider
from repro.vehicle.motor import MotorDrive
from repro.vehicle.params import MODEL_S_LIKE, VehicleParams


@dataclass(frozen=True)
class PowerRequest:
    """An electrical power-request trace at the DC bus.

    Attributes
    ----------
    cycle_name:
        Name of the originating drive cycle.
    dt:
        Sample period [s].
    power_w:
        Bus power [W]; positive = discharge demand, negative = regen.
    """

    cycle_name: str
    dt: float
    power_w: np.ndarray

    def __post_init__(self):
        power = np.asarray(self.power_w, dtype=float)
        if power.ndim != 1 or power.size < 2:
            raise ValueError("power_w must be a 1-D trace with at least 2 samples")
        object.__setattr__(self, "power_w", power)

    def __len__(self) -> int:
        return self.power_w.size

    @property
    def time_s(self) -> np.ndarray:
        """Sample times [s]."""
        return np.arange(len(self)) * self.dt

    @property
    def duration_s(self) -> float:
        """Trace duration [s]."""
        return (len(self) - 1) * self.dt

    def mean_power_w(self) -> float:
        """Time-averaged bus power [W] (net of regen)."""
        return float(np.mean(self.power_w))

    def mean_discharge_power_w(self) -> float:
        """Time-averaged discharge-only power [W] (regen samples count zero)."""
        return float(np.mean(np.clip(self.power_w, 0.0, None)))

    def peak_power_w(self) -> float:
        """Peak discharge power [W]."""
        return float(np.max(self.power_w))

    def energy_j(self) -> float:
        """Net electrical energy drawn over the trace [J]."""
        return float(np.trapezoid(self.power_w, dx=self.dt))

    def window(self, start: int, length: int) -> np.ndarray:
        """Power samples ``[start, start+length)``, zero-padded past the end.

        This is the preview the MPC uses near the end of a route, where the
        remaining trace is shorter than the control window.
        """
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        end = min(start + length, len(self))
        head = self.power_w[start:end] if start < len(self) else np.zeros(0)
        if head.size < length:
            head = np.concatenate([head, np.zeros(length - head.size)])
        return head


class Powertrain:
    """End-to-end drive-cycle-to-power-request model.

    Parameters
    ----------
    params:
        Vehicle parameters; defaults to the Model-S-class preset.
    motor:
        Optional pre-built :class:`MotorDrive` (defaults to one built from
        ``params``).
    """

    def __init__(self, params: VehicleParams = MODEL_S_LIKE, motor: MotorDrive | None = None):
        self._params = params
        self._glider = Glider(params)
        self._motor = motor if motor is not None else MotorDrive(params)

    @property
    def params(self) -> VehicleParams:
        """Vehicle parameters in use."""
        return self._params

    @property
    def glider(self) -> Glider:
        """Road-load model."""
        return self._glider

    @property
    def motor(self) -> MotorDrive:
        """Motor/inverter model."""
        return self._motor

    def power_request(
        self,
        cycle: DriveCycle,
        grade_rad: float = 0.0,
        hvac_load_w=None,
    ) -> PowerRequest:
        """Compute the DC-bus power-request trace for ``cycle``.

        Parameters
        ----------
        cycle:
            The drive cycle to follow.
        grade_rad:
            Constant road grade [rad] applied along the whole route.
        hvac_load_w:
            Optional per-sample climate-control load [W] (see
            :func:`repro.vehicle.hvac.hvac_load_profile`); added on top of
            the constant auxiliary power, truncated/zero-padded to the
            cycle length.
        """
        speed = cycle.speed_mps
        accel = cycle.acceleration_ms2()
        wheel = self._glider.wheel_power(speed, accel, grade_rad)
        bus = self._motor.electrical_power(wheel) + self._params.auxiliary_power_w
        if hvac_load_w is not None:
            hvac = np.asarray(hvac_load_w, dtype=float)
            if hvac.size < bus.size:
                hvac = np.concatenate([hvac, np.zeros(bus.size - hvac.size)])
            bus = bus + hvac[: bus.size]
        return PowerRequest(cycle_name=cycle.name, dt=cycle.dt, power_w=bus)
