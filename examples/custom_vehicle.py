#!/usr/bin/env python
"""Custom vehicle + custom route: using the library beyond the paper's setup.

Builds a heavier delivery-van-class EV, synthesizes a custom suburban
delivery route with the segment DSL, and compares OTEM against the dual
baseline on it - the workflow a downstream user would follow for their own
vehicle program.
"""


from repro import Scenario, run_scenario
from repro.drivecycle.library import _CACHE, _BUILDERS  # registered below
from repro.drivecycle.synth import accel, cruise, decel, idle, synthesize
from repro.vehicle.params import VehicleParams
from repro.utils.units import kelvin_to_celsius


def delivery_route():
    """A 20-stop suburban delivery loop: short hops, long idles."""
    program = [idle(30)]
    for stop in range(20):
        peak = 45 + 10 * (stop % 3)  # 45-65 km/h hops
        program += [
            accel(peak, 1.1),
            cruise(40 + 5 * (stop % 4), ripple_kmh=4, ripple_period_s=20),
            decel(0, 1.3),
            idle(45),  # parcel drop
        ]
    return synthesize("DELIVERY", program)


def main():
    # a 3.2 t delivery van: blunt aerodynamics, strong hotel loads
    van = VehicleParams(
        mass_kg=3_200.0,
        drag_coefficient=0.38,
        frontal_area_m2=4.5,
        rolling_coefficient=0.011,
        auxiliary_power_w=1_500.0,
        max_motor_power_w=150_000.0,
        max_regen_power_w=50_000.0,
        regen_fraction=0.55,
    )

    # register the custom route under a name the Scenario API can find
    route = delivery_route()
    _BUILDERS["delivery"] = delivery_route
    _CACHE["delivery"] = route
    stats = route.stats()
    print(
        f"Route: {stats.distance_km:.1f} km in {stats.duration_s / 60:.0f} min, "
        f"{stats.stop_count} stops, max {stats.max_speed_kmh:.0f} km/h"
    )

    for m in ("dual", "otem"):
        result = run_scenario(
            Scenario(methodology=m, cycle="delivery", repeat=2, vehicle=van)
        )
        metrics = result.metrics
        print(
            f"{m:>6}: Qloss {metrics.qloss_percent:.4f}%  "
            f"avg {metrics.average_power_w / 1000:.2f} kW  "
            f"peak T {kelvin_to_celsius(metrics.peak_temp_k):.1f} C  "
            f"energy {metrics.hees_energy_j / 3.6e6:.2f} kWh"
        )


if __name__ == "__main__":
    main()
