"""Parallel architecture tests (Eq. 10-13)."""

import pytest

from repro.battery.pack import BatteryPack
from repro.hees.parallel import ParallelHEES, restrung_resistance_ohm
from repro.ultracap.bank import UltracapBank
from repro.ultracap.params import UltracapParams, bank_of_farads


@pytest.fixture()
def plant():
    return ParallelHEES(BatteryPack(), UltracapBank(UltracapParams()))


class TestRestrungBank:
    def test_rated_voltage_equals_full_pack_voc(self, plant):
        assert plant.effective_rated_voltage_v == pytest.approx(
            plant.pack.config.series
            * float(plant.pack.electrical.open_circuit_voltage(100.0))
        )

    def test_sync_puts_cap_at_battery_voltage(self, plant):
        assert plant.cap_voltage() == pytest.approx(
            plant.pack.open_circuit_voltage(), rel=1e-6
        )

    def test_restrung_resistance_scales_with_square_of_ratio(self):
        pack = BatteryPack()
        bank = UltracapBank(UltracapParams())
        r = restrung_resistance_ohm(pack, bank)
        k = 402.93 / 16.2
        assert r == pytest.approx(2.2e-3 * k * k, rel=0.01)

    def test_smaller_bank_has_higher_restrung_resistance(self):
        pack = BatteryPack()
        r_small = restrung_resistance_ohm(pack, UltracapBank(bank_of_farads(5_000)))
        r_large = restrung_resistance_ohm(pack, UltracapBank(bank_of_farads(25_000)))
        assert r_small == pytest.approx(5 * r_large, rel=1e-6)


class TestCircuitSplit:
    def test_zero_request_near_zero_flows(self, plant):
        result = plant.step(0.0, 1.0)
        # cap sits at battery OCV: no circulating current at equilibrium
        assert abs(result.battery_power_w) < 200.0
        assert abs(result.ultracap_power_w) < 200.0

    def test_load_split_between_storages(self, plant):
        result = plant.step(50_000.0, 1.0)
        assert result.battery_power_w > 0
        assert result.ultracap_power_w > 0

    def test_battery_takes_most_of_steady_load(self, plant):
        # with the physically-derived R_c the cap only buffers transients
        result = plant.step(50_000.0, 1.0)
        assert result.battery_power_w > result.ultracap_power_w

    def test_delivery_matches_request(self, plant):
        result = plant.step(50_000.0, 1.0)
        assert result.delivered_power_w == pytest.approx(50_000.0, rel=0.02)
        assert result.unmet_power_w < 1_000.0

    def test_load_voltage_recorded(self, plant):
        result = plant.step(20_000.0, 1.0)
        v_l = result.notes["load_voltage_v"]
        assert 300.0 < v_l < plant.effective_rated_voltage_v

    def test_regen_charges_both(self, plant):
        plant.pack.state.soc_percent = 70.0
        plant.sync_soe_to_battery()
        result = plant.step(-30_000.0, 1.0)
        assert result.battery_power_w < 0
        assert result.ultracap_power_w < 0

    def test_sustained_load_depletes_cap_alongside_battery(self, plant):
        soe0 = plant.bank.soe_percent
        for _ in range(120):
            plant.step(40_000.0, 1.0)
        assert plant.bank.soe_percent < soe0
        assert plant.pack.soc_percent < 100.0

    def test_heat_generated(self, plant):
        assert plant.step(50_000.0, 1.0).battery_heat_w > 0

    def test_aging_accumulates(self, plant):
        result = plant.step(50_000.0, 1.0)
        assert result.loss_increment_percent > 0

    def test_rejects_nonpositive_dt(self, plant):
        with pytest.raises(ValueError):
            plant.step(1_000.0, 0.0)

    def test_overload_beyond_combined_limit_reports_unmet(self, plant):
        result = plant.step(5e6, 1.0)
        assert result.unmet_power_w > 0

    def test_cap_buffers_more_with_lower_resistance(self):
        low_r = ParallelHEES(
            BatteryPack(), UltracapBank(UltracapParams()), cap_resistance_ohm=0.1
        )
        high_r = ParallelHEES(
            BatteryPack(), UltracapBank(UltracapParams()), cap_resistance_ohm=2.0
        )
        share_low = low_r.step(80_000.0, 1.0).ultracap_power_w
        share_high = high_r.step(80_000.0, 1.0).ultracap_power_w
        assert share_low > share_high
