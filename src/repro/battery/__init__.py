"""Li-ion battery models (paper Section II-A).

Implements the cell electrical model (Eq. 1-3), heat generation (Eq. 4),
capacity-loss / aging model (Eq. 5) and the series/parallel pack aggregation
with a lumped thermal mass used by the cooling loop (Eq. 14).

Public API
----------
``CellParams`` / ``NCR18650A``
    Cell parameter set; the default is a Panasonic-NCR18650A-class cell.
``BatteryElectrical``
    Voc(SoC), R(SoC, T), SoC integration, terminal-power current solve.
``heat_generation_w``
    Joule + entropic heat (Eq. 4).
``AgingModel``
    Arrhenius capacity-loss accumulator (Eq. 5) and BLT estimation.
``BatteryPack``
    Full pack: electrical + thermal + aging state, stepped by the simulator.
``PackConfig`` / ``DEFAULT_PACK``
    Series/parallel layout; default 96s30p (~32 kWh).
``project_lifetime`` / ``LifetimeProjection``
    Routes-to-end-of-life with aging feedback (the paper's BLT metric).
"""

from repro.battery.params import NCR18650A, CellParams
from repro.battery.electrical import BatteryElectrical
from repro.battery.thermal import heat_generation_w
from repro.battery.aging import AgingModel
from repro.battery.pack import DEFAULT_PACK, BatteryPack, PackConfig, PackState
from repro.battery.lifetime import (
    LifetimeProjection,
    blt_improvement_percent,
    project_lifetime,
)

__all__ = [
    "NCR18650A",
    "CellParams",
    "BatteryElectrical",
    "heat_generation_w",
    "AgingModel",
    "BatteryPack",
    "PackConfig",
    "PackState",
    "DEFAULT_PACK",
    "LifetimeProjection",
    "blt_improvement_percent",
    "project_lifetime",
]
