"""Simulation-engine tests (Algorithm 1 outer loop)."""

import numpy as np
import pytest

from repro.controllers.cooling_only import CoolingOnlyController
from repro.controllers.dual_threshold import DualThresholdController
from repro.controllers.parallel_passive import ParallelPassiveController
from repro.sim.engine import Simulator


class TestRunShapes:
    def test_trace_length_matches_request(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert len(result.trace) == len(short_request)

    def test_result_identification(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert result.controller_name == "Parallel [15]"
        assert result.cycle_name == "us06-short"

    def test_outputs_of_algorithm1(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert result.qloss_percent > 0
        assert result.hees_energy_j > 0

    def test_metrics_attached(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert result.metrics.duration_s == pytest.approx(121.0)


class TestStateEvolution:
    def test_soc_decreases_over_route(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        soc = result.trace.battery_soc_percent
        assert soc[-1] < soc[0]

    def test_temperature_rises_under_load(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert result.trace.battery_temp_k[-1] > 298.0

    def test_initial_conditions_honored(self, short_request):
        sim = Simulator(
            ParallelPassiveController(),
            initial_soc_percent=70.0,
            initial_temp_k=305.0,
        )
        result = sim.run(short_request)
        assert result.trace.battery_soc_percent[0] <= 70.0
        assert abs(result.trace.battery_temp_k[0] - 305.0) < 1.0


class TestCoolingIntegration:
    def test_cooling_power_drawn_from_hees(self, short_request):
        hot = Simulator(CoolingOnlyController(), initial_temp_k=310.0)
        result = hot.run(short_request)
        # the thermostat engages immediately at 310 K; cooling power must
        # appear both in the trace and in the HEES energy
        assert np.max(result.trace.cooling_power_w) > 0
        cooling_j = np.sum(result.trace.cooling_power_w) * result.trace.dt
        assert result.hees_energy_j > cooling_j

    def test_no_cooling_for_passive_architectures(self, short_request):
        result = Simulator(ParallelPassiveController()).run(short_request)
        assert np.all(result.trace.cooling_power_w == 0.0)

    def test_cooling_reduces_temperature_vs_uncooled(self, short_request):
        cooled = Simulator(CoolingOnlyController(), initial_temp_k=310.0).run(
            short_request
        )
        uncooled = Simulator(ParallelPassiveController(), initial_temp_k=310.0).run(
            short_request
        )
        assert (
            cooled.trace.battery_temp_k[-1] < uncooled.trace.battery_temp_k[-1]
        )


class TestDualIntegration:
    def test_dual_switches_when_hot(self, short_request):
        sim = Simulator(DualThresholdController(), initial_temp_k=312.0)
        result = sim.run(short_request)
        # hot start -> the controller must route load to the bank at least once
        assert np.max(result.trace.cap_power_w) > 0

    def test_passive_ambient_cools_dual(self, short_request):
        # a hot dual pack under light load drifts toward ambient
        light = type(short_request)(
            cycle_name="light", dt=1.0, power_w=np.full(300, 500.0)
        )
        sim = Simulator(DualThresholdController(), initial_temp_k=315.0)
        result = sim.run(light)
        assert result.trace.battery_temp_k[-1] < 315.0


class TestValidation:
    def test_rejects_bad_initial_soc(self):
        with pytest.raises(ValueError):
            Simulator(ParallelPassiveController(), initial_soc_percent=120.0)

    def test_rejects_bad_preview(self):
        with pytest.raises(ValueError):
            Simulator(ParallelPassiveController(), preview_steps=0)

    def test_controller_reset_called(self, short_request):
        controller = DualThresholdController()
        controller._on_cap = True  # dirty state
        Simulator(controller).run(short_request)
        # run() resets before the loop; the flag reflects route dynamics only
        assert controller.architecture.value == "dual"
