"""The OTEM MPC optimizer (paper Eq. 18-19, Algorithm 1 line 14).

Single-shooting formulation: the decision vector is the horizon's
ultracapacitor bus-power commands and coolant inlet temperatures
(2N variables, normalized to [0, 1] for conditioning); states are
eliminated by :class:`repro.core.rollout.PredictionModel`.  Input bounds
realize constraints C2/C3/C7; the rollout's hinge penalties realize
C1/C4/C5/C6.  ``scipy.optimize.minimize(L-BFGS-B)`` solves the NLP,
warm-started from the previous plan shifted by one step.

Two rollout backends drive the penalty solver:

* ``"scalar"`` (default) - the reference pure-Python rollout; scipy
  differentiates it with serial forward differences (2N+1 rollouts per
  gradient).
* ``"vectorized"`` - :class:`repro.core.rollout_vec.BatchPredictionModel`
  evaluates every multi-start candidate's central-difference stencil as
  one batched kernel call per L-BFGS-B ``fun+jac`` round, and the
  multi-start race is a single joint solve over the stacked candidates
  (the objective is block-separable, so minimizing the sum solves each
  start).  Several times faster per solve at the same budget; the scalar
  model stays the semantic reference (see benchmarks/bench_mpc_solver.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.rollout import PredictionModel, RolloutResult
from repro.core.rollout_vec import BatchPredictionModel


@dataclass(frozen=True)
class SolverStats:
    """Accumulated optimizer effort over one route (diagnostics).

    Attributes
    ----------
    solves:
        Number of horizon problems solved (one per replan).
    total_iterations:
        Sum of :attr:`MPCPlan.solver_iterations` over all solves.
    last_cost:
        Objective value achieved by the most recent solve (NaN before the
        first solve; serialize via :attr:`last_cost_or_none`).
    backend:
        Rollout backend the planner used (``"scalar"`` or ``"vectorized"``).
    """

    solves: int
    total_iterations: int
    last_cost: float
    backend: str = "scalar"

    @property
    def mean_iterations(self) -> float:
        """Average iterations per solve (0 when nothing was solved)."""
        return self.total_iterations / self.solves if self.solves else 0.0

    @property
    def last_cost_or_none(self) -> float | None:
        """``last_cost`` with the before-first-solve NaN mapped to ``None``
        (JSON consumers must see ``null``, not the invalid token ``NaN``)."""
        return None if math.isnan(self.last_cost) else self.last_cost


@dataclass(frozen=True)
class MPCPlan:
    """One solved horizon.

    Attributes
    ----------
    cap_bus_w:
        Planned ultracap bus power per horizon step [W].
    inlet_temp_k:
        Planned coolant inlet temperature per horizon step [K].
    predicted:
        Detailed rollout of the optimal plan.
    solver_iterations:
        L-BFGS-B iteration count (diagnostics / ablation benches).
    solver_cost:
        Achieved objective value.
    """

    cap_bus_w: np.ndarray
    inlet_temp_k: np.ndarray
    predicted: RolloutResult
    solver_iterations: int
    solver_cost: float

    @property
    def horizon(self) -> int:
        """Number of steps in the plan."""
        return self.cap_bus_w.size


class MPCPlanner:
    """Solves the OTEM horizon problem.

    Parameters
    ----------
    model:
        The prediction model (physics + objective).
    horizon:
        Control-window length N (steps).
    step_s:
        Horizon step duration [s] (the paper's sampling period, Eq. 17).
    cap_power_bound_w:
        Symmetric bound on the ultracap bus command [W]; defaults to the
        bank/converter rating from the model.
    inlet_span_k:
        (min, max) commanded inlet temperature [K]; the rollout further
        clamps by the dynamic C2/C3 limits.
    max_function_evals:
        Budget per solve (speed/quality knob, used by the ablation bench).
    method:
        ``"penalty"`` (default): multi-start L-BFGS-B with the state
        constraints as quadratic hinges inside the objective - fast and
        robust.  ``"slsqp"``: SLSQP with C1/C4/C5 as *explicit* inequality
        constraints, the literal form of the paper's Eq. 18 - slower, and
        useful for validating the penalty formulation against it
        (benchmarks/bench_ablation_solver.py).
    rollout_backend:
        ``"scalar"`` (default) keeps the reference pure-Python rollout;
        ``"vectorized"`` switches the penalty solver onto the batched
        NumPy kernel with a batched central-difference gradient (see
        module docstring).  The SLSQP method always uses the scalar model.
    """

    #: Supported solver formulations.
    METHODS = ("penalty", "slsqp")

    #: Supported rollout backends.
    BACKENDS = ("scalar", "vectorized")

    #: Finite-difference step of the batched central-difference gradient
    #: (normalized coordinates; matches the scalar path's L-BFGS-B eps).
    FD_EPS = 3e-3

    def __init__(
        self,
        model: PredictionModel,
        horizon: int = 12,
        step_s: float = 5.0,
        cap_power_bound_w: float | None = None,
        inlet_span_k: tuple = (288.15, 312.0),
        max_function_evals: int = 150,
        method: str = "penalty",
        rollout_backend: str = "scalar",
    ):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}, got {method!r}")
        if rollout_backend not in self.BACKENDS:
            raise ValueError(
                f"rollout_backend must be one of {self.BACKENDS}, "
                f"got {rollout_backend!r}"
            )
        self._method = method
        self._backend = rollout_backend
        self._model = model
        self._vec_model = (
            BatchPredictionModel.from_scalar(model)
            if rollout_backend == "vectorized"
            else None
        )
        self._n = horizon
        self._dt = step_s
        bound = cap_power_bound_w if cap_power_bound_w is not None else model.cap_pmax
        self._cap_lo, self._cap_hi = -bound, bound
        self._inlet_lo, self._inlet_hi = inlet_span_k
        if self._inlet_lo >= self._inlet_hi:
            raise ValueError("inlet_span_k must be increasing")
        # denormalization scale factors, hoisted out of the solve closures
        self._cap_scale = self._cap_hi - self._cap_lo
        self._inlet_scale = self._inlet_hi - self._inlet_lo
        self._maxfun = max_function_evals
        self._last_z: np.ndarray | None = None
        self._solves = 0
        self._total_iterations = 0
        self._last_cost = float("nan")

    @property
    def horizon(self) -> int:
        """Control-window length N."""
        return self._n

    @property
    def step_s(self) -> float:
        """Horizon step duration [s]."""
        return self._dt

    @property
    def rollout_backend(self) -> str:
        """The configured rollout backend (``"scalar"``/``"vectorized"``)."""
        return self._backend

    @property
    def stats(self) -> SolverStats:
        """Optimizer effort accumulated since the last :meth:`reset`."""
        return SolverStats(
            solves=self._solves,
            total_iterations=self._total_iterations,
            last_cost=self._last_cost,
            backend=self._backend,
        )

    # ------------------------------------------------------------------ #

    def _denormalize(self, z: np.ndarray) -> tuple:
        n = self._n
        cap = self._cap_lo + z[:n] * self._cap_scale
        inlet = self._inlet_lo + z[n:] * self._inlet_scale
        return cap, inlet

    def _initial_guess(self, coolant_temp_k: float) -> np.ndarray:
        """Neutral plan: no ultracap use, no cooling (inlet at T_c)."""
        n = self._n
        z = np.empty(2 * n)
        z[:n] = (0.0 - self._cap_lo) / (self._cap_hi - self._cap_lo)
        inlet_neutral = min(max(coolant_temp_k, self._inlet_lo), self._inlet_hi)
        z[n:] = (inlet_neutral - self._inlet_lo) / (self._inlet_hi - self._inlet_lo)
        return z

    def _full_cool_guess(self) -> np.ndarray:
        """Aggressive plan: no ultracap use, coldest inlet every step."""
        n = self._n
        z = np.empty(2 * n)
        z[:n] = (0.0 - self._cap_lo) / (self._cap_hi - self._cap_lo)
        z[n:] = 0.0
        return z

    def _warm_start(self, coolant_temp_k: float) -> np.ndarray:
        if self._last_z is None:
            return self._initial_guess(coolant_temp_k)
        n = self._n
        z = self._last_z.copy()
        # shift both input blocks one step left, repeating the tail
        z[: n - 1] = z[1:n]
        z[n : 2 * n - 1] = z[n + 1 :]
        return np.clip(z, 0.0, 1.0)

    def reset(self):
        """Forget the warm start and the effort counters (fresh route)."""
        self._last_z = None
        self._solves = 0
        self._total_iterations = 0
        self._last_cost = float("nan")

    def _starts(self, coolant_temp_k: float) -> list:
        """Multi-start candidate plans for the penalty solver.

        The clamp/hinge kinks can stall a single L-BFGS-B run, so every
        solve races two structured plans (see
        tests/core/test_mpc.py::test_multistart_escapes_stall).  A cold
        solve races the neutral plan against the full-cool plan; a warm
        solve races the shifted previous plan against the neutral plan -
        the previous plan already carries the cooling schedule the
        full-cool seed exists to provide.  Warm solves used to race all
        three at full budget, which made them ~1.4x *slower* than cold
        ones (the warm/cold anomaly BENCH_mpc.json once recorded).
        """
        if self._last_z is None:
            return [self._initial_guess(coolant_temp_k), self._full_cool_guess()]
        return [
            self._warm_start(coolant_temp_k),
            self._initial_guess(coolant_temp_k),
        ]

    # ------------------------------------------------------------------ #
    # solver backends

    def _solve_penalty(self, objective, state, n):
        """Multi-start L-BFGS-B on the hinge-penalty objective (scalar)."""
        starts = self._starts(state[1])
        # cold solves give both structured seeds the full budget; on warm
        # solves the diversifier seed (the neutral plan) races at half
        # budget - it only has to beat the warm start's basin, not polish
        # within its own.  Together with the two-candidate warm race in
        # _starts this removes the warm/cold anomaly BENCH_mpc.json used
        # to record (warm solves 1.4x slower than cold ones)
        budgets = [self._maxfun] * len(starts)
        if self._last_z is not None:
            budgets[1:] = [self._maxfun // 2] * (len(starts) - 1)
        best = None
        iterations = 0
        for z0, budget in zip(starts, budgets):
            result = optimize.minimize(
                objective,
                z0,
                method="L-BFGS-B",
                bounds=[(0.0, 1.0)] * (2 * n),
                options={
                    "maxfun": budget,
                    "maxiter": 60,
                    "eps": 3e-3,
                    "ftol": 1e-12,
                },
            )
            iterations += int(result.nit)
            if best is None or result.fun < best.fun:
                best = result
        best.nit = iterations
        return best

    def _solve_penalty_batched(self, state, preview, step):
        """One joint L-BFGS-B race over the stacked multi-start candidates.

        The hinge-penalty objective is evaluated by the batched kernel: a
        ``fun+jac`` round costs a *single* rollout-kernel invocation over
        the stacked central-difference stencil of every candidate
        (``S * (4N+1)`` rows), instead of ``2N+1`` serial Python rollouts
        per candidate.  The stacked objective is the sum of the per-block
        costs; blocks share no variables, so minimizing the sum optimizes
        each start, and the best block wins the race.
        """
        n = self._n
        dim = 2 * n
        eps = self.FD_EPS
        vec = self._vec_model
        starts = self._starts(state[1])
        s = len(starts)
        z0 = np.concatenate(starts)
        rows = 2 * dim + 1  # base + forward + backward stencil per block
        offsets = np.zeros((rows, dim))
        idx = np.arange(dim)
        offsets[1 + idx, idx] = eps
        offsets[1 + dim + idx, idx] = -eps

        def block_costs(blocks: np.ndarray) -> np.ndarray:
            cap = self._cap_lo + blocks[:, :n] * self._cap_scale
            inlet = self._inlet_lo + blocks[:, n:] * self._inlet_scale
            return vec.rollout_costs(state, cap, inlet, preview, step)

        seen = {"first": None, "z": None, "base": None}

        def fun_and_grad(z: np.ndarray) -> tuple:
            stencil = z.reshape(s, 1, dim) + offsets
            costs = block_costs(stencil.reshape(s * rows, dim)).reshape(s, rows)
            base = costs[:, 0].copy()
            if seen["first"] is None:
                seen["first"] = base  # the start points' own costs (x0 round)
            seen["z"], seen["base"] = z.copy(), base
            grad = (costs[:, 1 : 1 + dim] - costs[:, 1 + dim :]) / (2.0 * eps)
            return float(base.sum()), grad.reshape(s * dim)

        # budget parity with the scalar path: there one scipy fun
        # evaluation is one rollout and a gradient burns 2N+1 of the
        # maxfun budget, so the equivalent number of fun+jac rounds is
        # maxfun/(2N+1) - each of which is now a single kernel call.  The
        # per-round kernel batch grows with the number of starts, so the
        # round count shrinks in proportion (2/s), pinning the total work
        # to the cold-solve (two-start) level exactly as the scalar path
        # does - a warm solve must not cost more than a cold one
        rounds = max(4, int(math.ceil(2.0 / s * self._maxfun / (dim + 1))))
        result = optimize.minimize(
            fun_and_grad,
            z0,
            method="L-BFGS-B",
            jac=True,
            bounds=[(0.0, 1.0)] * (s * dim),
            options={"maxfun": rounds, "maxiter": 60, "ftol": 1e-12},
        )
        blocks = np.clip(result.x.reshape(s, dim), 0.0, 1.0)
        # L-BFGS-B guarantees descent of the *sum*, not of every block -
        # race the solved blocks against their own starting points.  Both
        # cost vectors usually come from cached fun rounds (the x0 round
        # evaluated the starts; the final round usually evaluated result.x).
        if seen["z"] is not None and np.array_equal(seen["z"], result.x):
            final_costs = seen["base"]
        else:
            final_costs = block_costs(blocks)
        candidates = np.concatenate([blocks, np.asarray(starts)])
        costs = np.concatenate([final_costs, seen["first"]])
        winner = int(np.argmin(costs))
        result.x = candidates[winner]
        result.fun = float(costs[winner])
        return result

    def _solve_slsqp(self, state, preview, step):
        """SLSQP with C1/C4/C5 as explicit inequality constraints (Eq. 18).

        Objective and constraints share one cached rollout per decision
        vector (SLSQP evaluates them separately, the rollout dominates).
        """
        from repro.core.rollout import TEMP_MAX_K

        model = self._model
        n = self._n
        cache = {"key": None, "value": None}

        def evaluate(z):
            key = z.tobytes()
            if cache["key"] != key:
                cap, inlet = self._denormalize(z)
                cache["value"] = model.rollout(state, cap, inlet, preview, step)
                cache["key"] = key
            return cache["value"]

        def objective(z):
            r = evaluate(z)
            return r.objective + r.terminal

        def constraints(z):
            r = evaluate(z)
            temps = np.asarray(r.temps_k[1:])
            socs = np.asarray(r.socs[1:])
            soes = np.asarray(r.soes[1:])
            return np.concatenate(
                [
                    TEMP_MAX_K - temps,          # C1
                    socs - 20.0,                 # C4
                    soes - model.soe_min,        # C5 lower
                    model.soe_max - soes,        # C5 upper
                ]
            )

        result = optimize.minimize(
            objective,
            self._warm_start(state[1]),
            method="SLSQP",
            bounds=[(0.0, 1.0)] * (2 * n),
            constraints=[{"type": "ineq", "fun": constraints}],
            options={"maxiter": max(20, self._maxfun // 10), "ftol": 1e-9},
        )
        return result

    def plan(self, state: tuple, preview_w: np.ndarray, dt: float | None = None) -> MPCPlan:
        """Solve one horizon.

        Parameters
        ----------
        state:
            (T_b, T_c, SoC, SoE) at the start of the horizon.
        preview_w:
            Predicted EV power per horizon step [W], length >= N (extra
            entries are ignored).
        dt:
            Optional override of the horizon step duration [s].
        """
        n = self._n
        step = self._dt if dt is None else dt
        # pad the preview once, as an ndarray - the rollouts index it
        # directly, no per-evaluation list copies
        src = np.asarray(preview_w, dtype=float)[:n]
        if src.size < n:
            preview = np.zeros(n)
            preview[: src.size] = src
        else:
            preview = src

        model = self._model

        if self._method == "slsqp":
            result = self._solve_slsqp(state, preview, step)
        elif self._backend == "vectorized":
            result = self._solve_penalty_batched(state, preview, step)
        else:

            def objective(z: np.ndarray) -> float:
                cap, inlet = self._denormalize(z)
                return model.rollout_cost(state, cap, inlet, preview, step)

            result = self._solve_penalty(objective, state, n)
        z_opt = np.clip(result.x, 0.0, 1.0)
        self._last_z = z_opt
        self._solves += 1
        self._total_iterations += int(result.nit)
        self._last_cost = float(result.fun)
        cap, inlet = self._denormalize(z_opt)
        predicted = model.rollout(state, cap, inlet, preview, step)
        return MPCPlan(
            cap_bus_w=cap,
            inlet_temp_k=inlet,
            predicted=predicted,
            solver_iterations=int(result.nit),
            solver_cost=float(result.fun),
        )
