"""Sweep specifications: the service's JSON wire format for scenario grids.

A :class:`SweepSpec` is what ``POST /sweeps`` accepts: a base scenario
(partial dict - unnamed fields keep their defaults), cross-product axes
over scenario fields, an optional traffic-perturbation ensemble size, and
execution knobs.  :meth:`SweepSpec.scenarios` compiles it with exactly the
same semantics as the ``repro batch`` CLI: :func:`~repro.sim.batch.
scenario_grid` cross product (last axis fastest) plus a ``perturb_seed``
axis ``0..seeds-1`` reusing :attr:`Scenario.perturb_seed`.

Example document::

    {
      "base": {"cycle": "nycc", "repeat": 1},
      "axes": {"methodology": ["parallel", "dual"],
               "ucap_farads": [5000.0, 25000.0]},
      "seeds": 4,
      "execution": "auto"
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.sim.batch import EXECUTION_MODES, scenario_grid
from repro.sim.scenario import Scenario

#: Fields of :class:`Scenario` that a spec may sweep over.
SWEEPABLE_FIELDS = tuple(f.name for f in dataclasses.fields(Scenario))


@dataclass(frozen=True)
class SweepSpec:
    """One sweep request: base scenario + axes + execution knobs.

    Attributes
    ----------
    base:
        The scenario every grid cell starts from.
    axes:
        Mapping of scenario field name to the values to sweep (cross
        product, last axis varying fastest).  Empty means a single cell.
    seeds:
        When > 0, appends a ``perturb_seed`` axis with members
        ``0..seeds-1`` (deterministic traffic-perturbation ensemble).
    workers:
        Worker processes for scalar-assigned cells (0 = in-process).
    execution:
        Engine selection forwarded to :func:`~repro.sim.batch.run_batch`.
    timeout_s:
        Optional whole-job wall-clock budget enforced by the job manager
        (cells still pending at the deadline are cancelled, the job is
        marked failed).
    tag:
        Free-form label echoed back in status records.
    """

    base: Scenario = field(default_factory=Scenario)
    axes: dict = field(default_factory=dict)
    seeds: int = 0
    workers: int = 0
    execution: str = "auto"
    timeout_s: float | None = None
    tag: str = ""

    def __post_init__(self):
        if self.seeds < 0:
            raise ValueError("seeds must be >= 0")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution!r}; "
                f"choose from {EXECUTION_MODES}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        unknown = sorted(set(self.axes) - set(SWEEPABLE_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown axis field(s) {', '.join(unknown)}; "
                f"sweepable: {', '.join(SWEEPABLE_FIELDS)}"
            )
        if "perturb_seed" in self.axes and self.seeds:
            raise ValueError("pass a perturb_seed axis or seeds, not both")
        for name, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not list(values):
                raise ValueError(f"axis {name!r} must be a non-empty list")

    # ------------------------------------------------------------------ #
    # compilation

    def scenarios(self) -> list:
        """Compile the spec to its scenario grid (CLI-identical semantics)."""
        axes = dict(self.axes)
        if self.seeds:
            axes["perturb_seed"] = list(range(self.seeds))
        if not axes:
            return [self.base]
        return scenario_grid(self.base, **axes)

    def cell_count(self) -> int:
        """Grid size without materializing the scenarios."""
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n * (self.seeds if self.seeds else 1)

    # ------------------------------------------------------------------ #
    # wire format

    def to_dict(self) -> dict:
        """JSON-safe plain-dict view (see :meth:`from_dict`)."""
        return {
            "base": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "seeds": self.seeds,
            "workers": self.workers,
            "execution": self.execution,
            "timeout_s": self.timeout_s,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Parse a request document (every field optional)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"sweep spec must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep-spec field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        base = kwargs.pop("base", None)
        if base is not None:
            kwargs["base"] = Scenario.from_dict(base)
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON encoding (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Content hash of the canonical spec (identical sweeps collide)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()
