"""Segment-synthesis tests."""

import numpy as np
import pytest

from repro.drivecycle.synth import SegmentSpec, accel, cruise, decel, idle, synthesize
from repro.utils.units import kmh_to_mps


class TestSegmentSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SegmentSpec("warp", duration_s=10)

    def test_idle_needs_duration(self):
        with pytest.raises(ValueError):
            SegmentSpec("idle", duration_s=0)

    def test_ramp_needs_rate(self):
        with pytest.raises(ValueError):
            SegmentSpec("accel", target_kmh=50, rate_ms2=0)

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            SegmentSpec("accel", target_kmh=-5, rate_ms2=1)

    def test_builders(self):
        assert idle(5).kind == "idle"
        assert accel(50, 1.0).kind == "accel"
        assert decel(0, 1.0).kind == "decel"
        assert cruise(10).kind == "cruise"


class TestSynthesize:
    def test_starts_at_zero(self):
        cycle = synthesize("t", [idle(5)])
        assert cycle.speed_mps[0] == 0.0

    def test_idle_duration(self):
        cycle = synthesize("t", [idle(10)])
        assert cycle.duration_s == pytest.approx(10.0)
        assert np.all(cycle.speed_mps == 0.0)

    def test_accel_reaches_target(self):
        cycle = synthesize("t", [accel(36, 1.0)])
        assert cycle.speed_mps[-1] == pytest.approx(10.0)

    def test_accel_respects_rate(self):
        cycle = synthesize("t", [accel(36, 1.0)])
        # 10 m/s at 1 m/s^2 -> 10 seconds of ramp
        assert cycle.duration_s == pytest.approx(10.0)

    def test_decel_to_zero(self):
        cycle = synthesize("t", [accel(36, 2.0), decel(0, 2.0)])
        assert cycle.speed_mps[-1] == pytest.approx(0.0)

    def test_cruise_holds_speed(self):
        cycle = synthesize("t", [accel(36, 2.0), cruise(10)])
        assert np.allclose(cycle.speed_mps[-5:], 10.0)

    def test_cruise_ripple_bounded(self):
        cycle = synthesize("t", [accel(36, 2.0), cruise(60, ripple_kmh=3.6)])
        hold = cycle.speed_mps[6:]
        assert hold.max() <= 11.0 + 1e-9
        assert hold.min() >= 9.0 - 1e-9

    def test_cruise_ends_on_base_speed(self):
        cycle = synthesize(
            "t", [accel(36, 2.0), cruise(30, ripple_kmh=5), decel(0, 2.0)]
        )
        assert cycle.speed_mps[-1] == pytest.approx(0.0)

    def test_accel_below_current_rejected(self):
        with pytest.raises(ValueError):
            synthesize("t", [accel(50, 1.0), accel(20, 1.0)])

    def test_decel_above_current_rejected(self):
        with pytest.raises(ValueError):
            synthesize("t", [decel(20, 1.0)])

    def test_idle_at_speed_rejected(self):
        with pytest.raises(ValueError):
            synthesize("t", [accel(50, 1.0), idle(5)])

    def test_deterministic(self):
        prog = [accel(60, 1.5), cruise(30, ripple_kmh=4), decel(0, 1.5), idle(5)]
        a = synthesize("a", prog)
        b = synthesize("b", prog)
        assert np.array_equal(a.speed_mps, b.speed_mps)

    def test_distance_of_triangle_profile(self):
        # accel to 10 m/s at 1 m/s^2 then back down: distance = v^2/a = 100 m
        cycle = synthesize("t", [accel(36, 1.0), decel(0, 1.0)])
        assert cycle.distance_m() == pytest.approx(100.0, rel=0.06)

    def test_finer_dt(self):
        cycle = synthesize("t", [accel(36, 1.0)], dt=0.5)
        assert cycle.dt == 0.5
        assert cycle.speed_mps[-1] == pytest.approx(kmh_to_mps(36))
